"""Post-join solution modifiers: FILTER, ORDER BY, LIMIT/OFFSET.

Engines execute dictionary-encoded joins; the remaining SPARQL semantics
live here and are applied uniformly by the engine layer
(:meth:`repro.engines.base.Engine.execute`), so every engine agrees on
filtered, ordered, and sliced results by construction.

Comparison semantics
--------------------
Equality (``=`` / ``!=``) against a *quoted* IRI/literal constant is
decided on dictionary keys — the dictionary is injective, so key
identity is lexical identity. Equality involving a *bare number* or
between two variables is decided on decoded terms: two numeric literals
compare by value (``"42"`` equals ``"42.0"``, matching the
variable-vs-``42`` rule), two non-numeric terms by full lexical
identity, an IRI and a number are definitively unequal (``!=`` keeps
the row), and a non-numeric *literal* against a number is a SPARQL type
error that excludes the row under both operators.

Ordering operators (``< <= > >=``) compare decoded values: numeric
content numerically, other terms as strings, mixed-kind rows excluded
as type errors. Numbers sort before strings under ``ORDER BY``,
mirroring SPARQL's ordering of numerics before other RDF terms.

The term functions ``str(?x)`` and ``lang(?x)`` may wrap a comparison
operand: ``str`` yields an IRI's string or a literal's content (tags
and datatypes stripped), ``lang`` a literal's lowercased language tag
(``""`` when untagged) and errors on IRIs. Either result then compares
exactly like a literal with that content.

Three-valued evaluation
-----------------------
SPARQL filters are three-valued: an expression over a row is *true*,
*false*, or an *error* (type error / unbound operand). This module
tracks truth and error as two parallel boolean masks
(:func:`filter_masks`): under ``&&`` an erroring arm drops the row
unless another arm is definitively false either way, under ``||`` a row
survives when any arm is definitively true, and ``!`` swaps true and
false while *preserving* error — which is why negation cannot be mask
complement. A kept row is one whose expression is definitively true.

Unbound variables (``OPTIONAL`` rows padded with
:data:`~repro.storage.relation.NULL_KEY`) follow SPARQL's evaluation
rules: any comparison touching an unbound operand is a type error that
excludes the row (under *every* operator, including ``!=``), while
``ORDER BY`` sorts unbound before every bound term.

Each variable column is decoded once per distinct key, so filtering and
ordering cost O(distinct) dictionary decodes plus vectorized compares.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass

import numpy as np

from repro.core.query import (
    BoundTest,
    Comparison,
    Conjunction,
    Constant,
    Disjunction,
    Negation,
    OrderKey,
    Parameter,
    RegexTest,
    TermFunc,
    Variable,
)
from repro.errors import ExecutionError
from repro.storage.relation import NULL_KEY, Relation

_OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_LITERAL_RE = re.compile(
    r'^"(?P<content>(?:[^"\\]|\\.)*)"(?:@[A-Za-z0-9\-]+|\^\^.*)?$'
)

_LANG_RE = re.compile(
    r'^"(?:[^"\\]|\\.)*"@(?P<tag>[A-Za-z0-9\-]+)$'
)

_NUM, _STR = 0, 1


def term_value(lexical: str) -> tuple[int, float | str]:
    """The comparable value of a stored lexical term.

    Literals compare by content (numeric when the content parses as a
    number); IRIs and any other term compare by their full lexical form.
    The returned ``(kind, value)`` tuples are totally ordered with
    numbers first, so they double as ORDER BY sort keys.
    """
    match = _LITERAL_RE.match(lexical)
    if match:
        content = match.group("content")
        try:
            return (_NUM, float(content))
        except ValueError:
            return (_STR, content)
    return (_STR, lexical)


def _constant_value(constant: Constant) -> tuple[int, float | str]:
    if isinstance(constant.value, str):
        return term_value(constant.value)
    return (_NUM, float(constant.value))


def apply_term_func(function: str, lexical: str) -> str | None:
    """The simple-literal lexical form ``str()``/``lang()`` maps a bound
    term to, or ``None`` for a SPARQL type error (``lang`` of an IRI).
    """
    if function == "str":
        if lexical.startswith("<") and lexical.endswith(">"):
            return f'"{lexical[1:-1]}"'
        match = _LITERAL_RE.match(lexical)
        if match is not None:
            return f'"{match.group("content")}"'
        return f'"{lexical}"'
    if function == "lang":
        if not lexical.startswith('"'):
            return None  # lang() of an IRI (or other non-literal) errors
        match = _LANG_RE.match(lexical)
        tag = match.group("tag").lower() if match else ""
        return f'"{tag}"'
    raise ExecutionError(f"unsupported term function {function!r}")


@dataclass
class _OperandData:
    """Per-row decoded views of one comparison operand."""

    is_num: np.ndarray  # bool: content parses as a number
    numbers: np.ndarray  # float64: numeric value (0.0 where not numeric)
    content: np.ndarray  # str: comparable content (quotes/tags stripped)
    raw: np.ndarray  # str: full lexical form (identity comparisons)
    is_iri: np.ndarray  # bool: the term is an IRI
    is_null: np.ndarray  # bool: the variable is unbound (OPTIONAL pad)
    is_error: np.ndarray  # bool: a term function erred on this row


def _decoded_operand(
    decoded: list[str | None],
) -> tuple[np.ndarray, ...]:
    """Columnar operand data from per-distinct decoded lexical forms.

    ``None`` entries mark unbound rows; the empty string marks a
    term-function error (no stored lexical form is ever empty — IRIs
    are angle-bracketed and literals quoted).
    """
    size = len(decoded)
    is_num = np.zeros(size, dtype=bool)
    numbers = np.zeros(size, dtype=np.float64)
    content: list[str] = []
    raw: list[str] = []
    is_iri = np.zeros(size, dtype=bool)
    is_null = np.zeros(size, dtype=bool)
    is_error = np.zeros(size, dtype=bool)
    for i, lexical in enumerate(decoded):
        if lexical is None:
            is_null[i] = True
            content.append("")
            raw.append("")
            continue
        if lexical == "":
            is_error[i] = True
            content.append("")
            raw.append("")
            continue
        kind, value = term_value(lexical)
        if kind == _NUM:
            is_num[i] = True
            numbers[i] = value
            content.append("")
        else:
            content.append(value)
        raw.append(lexical)
        is_iri[i] = lexical.startswith("<")
    return (
        is_num,
        numbers,
        np.asarray(content, dtype=str),
        np.asarray(raw, dtype=str),
        is_iri,
        is_null,
        is_error,
    )


def _operand_data(term, relation: Relation, dictionary, n: int) -> _OperandData:
    if isinstance(term, (Variable, TermFunc)):
        function = term.function if isinstance(term, TermFunc) else None
        variable = term.var if isinstance(term, TermFunc) else term
        column = relation.column(variable.name)
        uniq, inverse = np.unique(column, return_inverse=True)
        decoded: list[str | None] = []
        for key in uniq:
            if int(key) == NULL_KEY:
                decoded.append(None)
                continue
            lexical = dictionary.decode(int(key))
            if function is not None:
                mapped = apply_term_func(function, lexical)
                # "" encodes a term-function error for _decoded_operand
                # (no stored lexical form is ever the empty string).
                decoded.append("" if mapped is None else mapped)
            else:
                decoded.append(lexical)
        parts = _decoded_operand(decoded)
        return _OperandData(*(part[inverse] for part in parts))
    assert isinstance(term, Constant)
    if isinstance(term.value, str):
        lexical = term.value
        kind, value = term_value(lexical)
        numeric = kind == _NUM
        return _OperandData(
            np.full(n, numeric, dtype=bool),
            np.full(n, value if numeric else 0.0, dtype=np.float64),
            np.full(n, "" if numeric else value),
            np.full(n, lexical),
            np.full(n, lexical.startswith("<"), dtype=bool),
            np.full(n, False, dtype=bool),
            np.full(n, False, dtype=bool),
        )
    return _OperandData(
        np.full(n, True, dtype=bool),
        np.full(n, float(term.value), dtype=np.float64),
        np.full(n, "", dtype=str),
        np.full(n, "", dtype=str),
        np.full(n, False, dtype=bool),
        np.full(n, False, dtype=bool),
        np.full(n, False, dtype=bool),
    )


def comparison_masks(
    relation: Relation, comparison: Comparison, dictionary
) -> tuple[np.ndarray, np.ndarray]:
    """``(true, error)`` masks of one comparison over a relation's rows.

    ``true`` marks rows where the comparison definitively holds;
    ``error`` marks SPARQL type errors (unbound operands, mixed-kind
    ordering, numeric-vs-literal equality, ``lang()`` of an IRI).
    Remaining rows are definitively false.
    """
    n = relation.num_rows
    lhs, op, rhs = comparison.lhs, comparison.op, comparison.rhs
    if isinstance(lhs, Parameter) or isinstance(rhs, Parameter):
        raise ExecutionError(
            "filter references an unsubstituted parameter; call "
            "substitute_parameters() before execution"
        )
    compare = _OPS.get(op)
    if compare is None:
        raise ExecutionError(f"unsupported filter operator {op!r}")

    no_error = np.zeros(n, dtype=bool)

    # Constant-only predicates evaluate statically.
    if isinstance(lhs, Constant) and isinstance(rhs, Constant):
        verdict = compare(_constant_value(lhs), _constant_value(rhs))
        return np.full(n, bool(verdict), dtype=bool), no_error

    # Variable vs quoted IRI/literal constant (in)equality: lexical
    # identity, i.e. one dictionary lookup.
    if op in ("=", "!=") and (
        isinstance(lhs, Variable)
        and isinstance(rhs, Constant)
        or isinstance(rhs, Variable)
        and isinstance(lhs, Constant)
    ):
        variable, constant = (
            (lhs, rhs) if isinstance(lhs, Variable) else (rhs, lhs)
        )
        assert isinstance(constant, Constant)
        if isinstance(constant.value, str):
            column = relation.column(variable.name)
            bound = column != np.uint32(NULL_KEY)
            key = dictionary.lookup(constant.value)
            if key is None:
                # Comparing an unbound variable is a type error even
                # against a never-seen term: only bound rows survive !=.
                true = bound if op == "!=" else np.zeros(n, dtype=bool)
                return true, ~bound
            return compare(column, np.uint32(key)) & bound, ~bound
        # Bare-number (in)equality falls through to value comparison so
        # that 42 matches "42" by value, whatever its lexical form.

    left = _operand_data(lhs, relation, dictionary, n)
    right = _operand_data(rhs, relation, dictionary, n)
    operand_error = (
        left.is_null | right.is_null | left.is_error | right.is_error
    )

    if op in ("=", "!="):
        # Value equality: numbers by value, non-numbers by full lexical
        # identity. An IRI and a number are definitively unequal; a
        # non-numeric *literal* against a number is a SPARQL type error
        # (row excluded under both operators).
        numeric_eq = left.is_num & right.is_num & (
            left.numbers == right.numbers
        )
        lexical_eq = (
            ~left.is_num & ~right.is_num & (left.raw == right.raw)
        )
        equal = numeric_eq | lexical_eq
        type_error = (
            left.is_num & ~right.is_num & ~right.is_iri & ~right.is_null
        ) | (
            right.is_num & ~left.is_num & ~left.is_iri & ~left.is_null
        )
        error = operand_error | type_error
        if op == "=":
            return equal & ~error, error
        return ~equal & ~error, error

    numeric = left.is_num & right.is_num
    textual = (
        ~left.is_num
        & ~right.is_num
        & ~operand_error
    )
    mask = np.zeros(n, dtype=bool)
    if numeric.any():
        mask |= numeric & compare(left.numbers, right.numbers)
    if textual.any():
        mask |= textual & compare(left.content, right.content)
    # Mixed-kind and unbound rows are SPARQL type errors under ordering
    # operators.
    return mask, ~numeric & ~textual


def comparison_mask(
    relation: Relation, comparison: Comparison, dictionary
) -> np.ndarray:
    """Boolean keep-mask of one comparison (errors fold to ``False``)."""
    return comparison_masks(relation, comparison, dictionary)[0]


def bound_mask(relation: Relation, test: BoundTest, dictionary) -> np.ndarray:
    """Keep-mask of ``bound(?x)``: rows whose column is not NULL-padded."""
    return relation.column(test.var.name) != np.uint32(NULL_KEY)


def regex_masks(
    relation: Relation, test: RegexTest, dictionary
) -> tuple[np.ndarray, np.ndarray]:
    """``(true, error)`` masks of ``regex(?x, "pat" [, "i"])``.

    The pattern partial-matches (``re.search``) the *content* of any
    literal the row binds — language tags and datatype suffixes are
    stripped, like the comparison operators above. IRIs and unbound
    operands are SPARQL type errors. Each distinct key is decoded and
    matched once.
    """
    compiled = re.compile(
        test.pattern, re.IGNORECASE if "i" in test.flags else 0
    )
    column = relation.column(test.operand.name)
    uniq, inverse = np.unique(column, return_inverse=True)
    hits = np.zeros(uniq.shape[0], dtype=bool)
    errors = np.zeros(uniq.shape[0], dtype=bool)
    for i, key in enumerate(uniq):
        if int(key) == NULL_KEY:
            errors[i] = True
            continue
        lexical = dictionary.decode(int(key))
        match = _LITERAL_RE.match(lexical)
        if match is None:
            errors[i] = True  # an IRI (or other non-literal): type error
            continue
        hits[i] = compiled.search(match.group("content")) is not None
    return hits[inverse], errors[inverse]


def regex_mask(relation: Relation, test: RegexTest, dictionary) -> np.ndarray:
    """Keep-mask of ``regex()`` (errors fold to ``False``)."""
    return regex_masks(relation, test, dictionary)[0]


def evaluate_leaf_masks(
    relation: Relation, expression, dictionary
) -> tuple[np.ndarray, np.ndarray]:
    """``(true, error)`` masks of one FILTER leaf."""
    if isinstance(expression, BoundTest):
        # bound() observes unbound state instead of erroring on it.
        true = bound_mask(relation, expression, dictionary)
        return true, np.zeros(relation.num_rows, dtype=bool)
    if isinstance(expression, RegexTest):
        return regex_masks(relation, expression, dictionary)
    return comparison_masks(relation, expression, dictionary)


def evaluate_leaf(relation: Relation, expression, dictionary) -> np.ndarray:
    """Keep-mask of one FILTER leaf (errors fold to ``False``)."""
    return evaluate_leaf_masks(relation, expression, dictionary)[0]


def filter_masks(
    relation: Relation, expression, dictionary, leaf=None
) -> tuple[np.ndarray, np.ndarray]:
    """``(true, error)`` masks of one FILTER expression tree.

    Implements SPARQL's three-valued logic exactly: ``&&`` is false when
    any arm is false (even if another errors), true when all arms are
    true, and an error otherwise; ``||`` dually; ``!`` swaps true and
    false and preserves error. A row is *kept* by a filter exactly when
    its ``true`` mask is set.

    ``leaf`` evaluates one leaf — a :class:`Comparison`,
    :class:`BoundTest`, or :class:`RegexTest` — to its ``(true, error)``
    pair (default :func:`evaluate_leaf_masks`); block-wise execution
    passes a variant that treats *absent* variables as per-leaf type
    errors (and ``bound()`` of an absent variable as plain false).
    """
    if leaf is None:
        leaf = evaluate_leaf_masks
    if isinstance(expression, Conjunction):
        true = np.ones(relation.num_rows, dtype=bool)
        false = np.zeros(relation.num_rows, dtype=bool)
        for part in expression.parts:
            part_true, part_error = filter_masks(
                relation, part, dictionary, leaf
            )
            true &= part_true
            false |= ~part_true & ~part_error
            if false.all():
                # Every row already has a definitively-false arm, so
                # the conjunction is false everywhere — remaining arms
                # cannot change truth *or* error state.
                break
        return true, ~true & ~false
    if isinstance(expression, Disjunction):
        true = np.zeros(relation.num_rows, dtype=bool)
        false = np.ones(relation.num_rows, dtype=bool)
        for part in expression.parts:
            part_true, part_error = filter_masks(
                relation, part, dictionary, leaf
            )
            true |= part_true
            false &= ~part_true & ~part_error
            if true.all():
                # Dually: every row already has a definitively-true
                # arm; the disjunction is true (and error-free)
                # everywhere regardless of the remaining arms.
                break
        return true, ~true & ~false
    if isinstance(expression, Negation):
        part_true, part_error = filter_masks(
            relation, expression.part, dictionary, leaf
        )
        return ~part_true & ~part_error, part_error
    return leaf(relation, expression, dictionary)


def filter_mask(
    relation: Relation, expression, dictionary, leaf=None
) -> np.ndarray:
    """Boolean keep-mask of one FILTER expression tree (rows whose
    expression is definitively true; false and error rows drop)."""
    return filter_masks(relation, expression, dictionary, leaf)[0]


def apply_filters(
    relation: Relation, expressions, dictionary
) -> Relation:
    """Keep rows satisfying every filter expression."""
    if not expressions or relation.num_rows == 0:
        return relation
    mask = np.ones(relation.num_rows, dtype=bool)
    for expression in expressions:
        mask &= filter_mask(relation, expression, dictionary)
        if not mask.any():
            break
    return relation.filter(mask)


def apply_order(relation: Relation, order_by, dictionary) -> Relation:
    """Sort rows by decoded term values (stable, multi-key)."""
    if not order_by or relation.num_rows <= 1:
        return relation
    indices = list(range(relation.num_rows))
    for key in reversed(list(order_by)):
        assert isinstance(key, OrderKey)
        column = relation.column(key.variable.name)
        uniq, inverse = np.unique(column, return_inverse=True)
        # Unbound sorts before every bound term (SPARQL ordering).
        values = [
            (-1, "") if int(k) == NULL_KEY
            else term_value(dictionary.decode(int(k)))
            for k in uniq
        ]
        indices.sort(
            key=lambda i: values[inverse[i]], reverse=key.descending
        )
    return relation.take(np.asarray(indices, dtype=np.int64))


def apply_slice(
    relation: Relation, offset: int, limit: int | None
) -> Relation:
    """OFFSET/LIMIT row slicing (row order is preserved)."""
    if offset == 0 and limit is None:
        return relation
    stop = None if limit is None else offset + limit
    return relation.slice_rows(offset, stop)


def finalize_result(relation: Relation, query) -> Relation:
    """Project, deduplicate, pre-truncate, and rename an engine result.

    The shared tail of every engine's ``_execute_bound``. ``distinct()``
    sorts, so when a LIMIT is present the first ``offset + limit`` rows
    are canonical: every engine truncates identically and the engine
    layer's final :func:`apply_slice` agrees with the pre-truncation.
    ``query`` is any object with ``projection``/``limit``/``offset``/
    ``name`` (a :class:`~repro.core.query.NormalizedQuery`).
    """
    names = [v.name for v in query.projection]
    relation = relation.project(names).distinct()
    if query.limit is not None:
        relation = relation.head(query.offset + query.limit)
    return relation.rename(name=query.name)


__all__ = [
    "apply_filters",
    "apply_order",
    "apply_slice",
    "apply_term_func",
    "bound_mask",
    "comparison_mask",
    "comparison_masks",
    "evaluate_leaf",
    "evaluate_leaf_masks",
    "filter_mask",
    "filter_masks",
    "finalize_result",
    "regex_mask",
    "regex_masks",
    "term_value",
]
