"""Feature flags for the three classic optimizations (Section III).

Each flag corresponds to one column of Table I in the paper:

* ``mixed_layouts``   — "+Layout": let the set optimizer pick bitsets;
  off forces the unsigned-integer-array layout everywhere.
* ``reorder_selections`` — "+Attribute": move selection attributes to the
  front of the global attribute order (pushing selections down *within*
  GHD nodes).
* ``ghd_selection_pushdown`` — "+GHD": choose the GHD with maximal
  selection depth (pushing selections down *across* GHD nodes).
* ``pipelining``      — "+Pipelining": fuse the root with one
  pipelineable child instead of materializing the child's result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sets.base import SetLayout


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of the paper's classic optimizations are enabled."""

    mixed_layouts: bool = True
    reorder_selections: bool = True
    ghd_selection_pushdown: bool = True
    pipelining: bool = True
    use_ghd: bool = True
    """Decompose queries into GHDs at all. LogicBlox-style engines run the
    generic join over a single node containing every atom."""

    bound_orders: bool = True
    """Skew-aware attach orders: when the store's frequency sketches are
    available, score candidate orders by pessimistic frontier bounds and
    pick the minimum instead of the small-cardinality promotion. Only
    active together with ``reorder_selections`` (it is that
    optimization's cost model)."""

    reoptimize: bool = True
    """Per-value re-optimization of cached plans: when a bound
    parameter's sketched selectivity diverges from the cached plan's
    assumption by more than ``reoptimize_factor``, re-plan for that
    value class instead of reusing the structural plan."""

    reoptimize_factor: float = 8.0
    """Divergence factor (and selectivity-class bucket base) for
    ``reoptimize``."""

    @property
    def force_layout(self) -> SetLayout | None:
        """Trie set layout override implied by ``mixed_layouts``."""
        return None if self.mixed_layouts else SetLayout.UINT_ARRAY

    @classmethod
    def all_on(cls) -> "OptimizationConfig":
        """EmptyHeaded with every optimization enabled (the paper's EH)."""
        return cls()

    @classmethod
    def all_off(cls) -> "OptimizationConfig":
        """Generic WCOJ baseline: single-node plan, uint arrays only."""
        return cls(
            mixed_layouts=False,
            reorder_selections=False,
            ghd_selection_pushdown=False,
            pipelining=False,
            use_ghd=False,
            bound_orders=False,
            reoptimize=False,
        )

    @classmethod
    def baseline_with_ghd(cls) -> "OptimizationConfig":
        """GHD plans but none of the three classic optimizations."""
        return cls(
            mixed_layouts=False,
            reorder_selections=False,
            ghd_selection_pushdown=False,
            pipelining=False,
            use_ghd=True,
            bound_orders=False,
            reoptimize=False,
        )

    def but(self, **changes) -> "OptimizationConfig":
        """A copy with some flags changed (ablation helper)."""
        return replace(self, **changes)
