"""Generalized hypertree decompositions (Definition 1 of the paper).

A GHD of a query hypergraph is a tree whose nodes each carry a set of
vertices ``chi(t)`` and a set of hyperedges ``lambda(t)`` such that

1. every hyperedge is contained in some node's ``chi``,
2. the nodes containing any given vertex form a connected subtree
   (the *running intersection property*),
3. every node's ``chi(t)`` is covered by its ``lambda(t)``.

We represent GHDs as rooted trees because the paper's execution model is
rooted: Algorithm 1 runs bottom-up over nodes, then a top-down pass
materializes the final result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.agm import cover_number
from repro.core.hypergraph import Hypergraph
from repro.core.query import Variable
from repro.errors import PlanningError


@dataclass
class GHDNode:
    """One GHD node: ``chi`` vertices, ``lambda`` atoms, tree links."""

    node_id: int
    chi: frozenset[Variable]
    atom_indices: tuple[int, ...]
    parent: int | None = None
    children: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        names = ",".join(sorted(v.name for v in self.chi))
        return f"GHDNode#{self.node_id}(chi={{{names}}}, atoms={self.atom_indices})"


@dataclass
class GHD:
    """A rooted GHD over a query hypergraph."""

    nodes: list[GHDNode]
    root: int

    def node(self, node_id: int) -> GHDNode:
        return self.nodes[node_id]

    @property
    def root_node(self) -> GHDNode:
        return self.nodes[self.root]

    def depth(self, node_id: int) -> int:
        """Distance from ``node_id`` to the root."""
        depth = 0
        current = self.nodes[node_id]
        while current.parent is not None:
            current = self.nodes[current.parent]
            depth += 1
        return depth

    @property
    def height(self) -> int:
        """Longest root-to-leaf distance."""
        return max(self.depth(n.node_id) for n in self.nodes)

    def preorder(self) -> list[GHDNode]:
        """Root-first traversal (children in insertion order)."""
        result: list[GHDNode] = []
        stack = [self.root]
        while stack:
            node = self.nodes[stack.pop()]
            result.append(node)
            stack.extend(reversed(node.children))
        return result

    def postorder(self) -> list[GHDNode]:
        """Children-before-parents traversal (bottom-up execution order)."""
        return list(reversed(self.bfs_order()))

    def bfs_order(self) -> list[GHDNode]:
        """Breadth-first traversal, used for the global attribute order."""
        result: list[GHDNode] = []
        queue = [self.root]
        while queue:
            node = self.nodes[queue.pop(0)]
            result.append(node)
            queue.extend(node.children)
        return result

    # ------------------------------------------------------------------
    # Validity (Definition 1) and width
    # ------------------------------------------------------------------
    def check_valid(self, hypergraph: Hypergraph) -> None:
        """Raise :class:`PlanningError` on any Definition 1 violation."""
        # Tree shape: exactly one root, parents consistent with children.
        roots = [n for n in self.nodes if n.parent is None]
        if len(roots) != 1 or roots[0].node_id != self.root:
            raise PlanningError("GHD is not a tree rooted at its root node")
        for node in self.nodes:
            for child_id in node.children:
                if self.nodes[child_id].parent != node.node_id:
                    raise PlanningError("GHD child/parent links inconsistent")
        if len(self.preorder()) != len(self.nodes):
            raise PlanningError("GHD tree does not reach all nodes")

        # Property 1: every edge is covered by some node's chi.
        for edge in hypergraph.edges:
            if not any(edge.vertices <= node.chi for node in self.nodes):
                raise PlanningError(f"edge {edge!r} not covered by any node")

        # Property 2: running intersection.
        for vertex in hypergraph.vertices:
            holders = [n.node_id for n in self.nodes if vertex in n.chi]
            if not holders:
                raise PlanningError(f"vertex {vertex!r} missing from GHD")
            if not self._connected_in_tree(holders):
                raise PlanningError(
                    f"nodes containing {vertex!r} are not connected"
                )

        # Properties 3/4: chi covered by lambda's vertices.
        for node in self.nodes:
            covered: set[Variable] = set()
            for atom_index in node.atom_indices:
                covered.update(hypergraph.edges[atom_index].vertices)
            if not node.chi <= covered:
                raise PlanningError(
                    f"node {node!r}: chi not covered by lambda"
                )

    def _connected_in_tree(self, node_ids: list[int]) -> bool:
        targets = set(node_ids)
        # The minimal subtree containing `targets` is connected iff walking
        # up from every target to the root, the first *target* ancestor
        # reached forms a single connected cluster. Simpler check: count
        # connected components among targets via tree adjacency.
        seen: set[int] = set()
        stack = [node_ids[0]]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = self.nodes[current]
            neighbors = list(node.children)
            if node.parent is not None:
                neighbors.append(node.parent)
            for neighbor in neighbors:
                if neighbor in targets and neighbor not in seen:
                    stack.append(neighbor)
        return targets <= seen

    def node_width(
        self,
        node: GHDNode,
        hypergraph: Hypergraph,
        cover_vertices: frozenset[Variable] | None = None,
    ) -> float:
        """Fractional width of one node: rho* of its chi via its lambda.

        ``cover_vertices`` restricts which vertices must be covered — the
        +GHD optimization computes widths over unselected attributes only
        (step 1 in Section III-B2).
        """
        vertices = node.chi if cover_vertices is None else node.chi & cover_vertices
        if not vertices:
            return 0.0
        edges = [hypergraph.edges[i] for i in node.atom_indices]
        return cover_number(vertices, edges)

    def width(
        self,
        hypergraph: Hypergraph,
        cover_vertices: frozenset[Variable] | None = None,
    ) -> float:
        """The GHD's fractional width: max node width."""
        return max(
            self.node_width(node, hypergraph, cover_vertices)
            for node in self.nodes
        )

    def selection_depth(self, selection_vars: set[Variable]) -> int:
        """Sum of distances from selection-carrying nodes to the root.

        Each selection variable is counted once, at the deepest node whose
        ``chi`` contains it (the node where the selection is applied).
        """
        total = 0
        for var in selection_vars:
            depths = [
                self.depth(n.node_id) for n in self.nodes if var in n.chi
            ]
            if depths:
                total += max(depths)
        return total

    def __repr__(self) -> str:
        lines: list[str] = []

        def render(node_id: int, indent: int) -> None:
            node = self.nodes[node_id]
            names = ",".join(sorted(v.name for v in node.chi))
            lines.append(
                "  " * indent
                + f"[{{{names}}} atoms={list(node.atom_indices)}]"
            )
            for child in node.children:
                render(child, indent + 1)

        render(self.root, 0)
        return "GHD\n" + "\n".join(lines)
