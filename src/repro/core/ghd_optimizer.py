"""GHD enumeration and selection (Sections II-C and III-B2).

The baseline optimizer enumerates all GHDs and keeps the one with the
lowest fractional width, breaking ties by smallest height — exactly the
criteria the paper states for EmptyHeaded.

Enumeration strategy: every GHD we consider assigns each atom to exactly
one node (a set partition of the atoms), with ``chi(t)`` equal to the
variables of ``lambda(t)``; trees over the blocks are enumerated via
Prüfer sequences and kept when they satisfy the running intersection
property. Widths depend only on the partition, so partitions are scored
first and only minimum-width partitions have their trees expanded.

The +GHD optimization ("pushing down selections across nodes") follows
the paper's three steps:

1. enumerate GHDs over the *unselected* relations only, with node widths
   computed over unselected attributes;
2. attach each selected relation below the deepest node whose ``chi``
   covers its unselected attributes (selected relations may stack below
   one another, reproducing Figure 3's chain);
3. among the minimum-width candidates, choose the GHD with maximal
   *selection depth* — the sum of distances from selections to the root.
"""

from __future__ import annotations

import heapq
from itertools import product

from repro.core.agm import cover_number
from repro.core.config import OptimizationConfig
from repro.core.ghd import GHD, GHDNode
from repro.core.hypergraph import Hypergraph
from repro.core.query import NormalizedQuery, Variable
from repro.errors import PlanningError

MAX_ENUMERATED_BLOCKS = 7
"""Prüfer enumeration is k^(k-2) trees; above this we fall back to a
single-node decomposition (never reached by LUBM's <= 6-atom queries)."""


def set_partitions(items: list[int]) -> list[list[list[int]]]:
    """All set partitions of ``items`` (Bell-number many)."""
    if not items:
        return [[]]
    first, rest = items[0], items[1:]
    partitions: list[list[list[int]]] = []
    for sub in set_partitions(rest):
        # Put `first` into each existing block, or into a new block.
        for i in range(len(sub)):
            partitions.append(sub[:i] + [[first] + sub[i]] + sub[i + 1 :])
        partitions.append([[first]] + sub)
    return partitions


def prufer_trees(k: int) -> list[list[tuple[int, int]]]:
    """All labeled trees on ``k`` nodes as edge lists (Prüfer decoding)."""
    if k == 1:
        return [[]]
    if k == 2:
        return [[(0, 1)]]
    trees: list[list[tuple[int, int]]] = []
    for sequence in product(range(k), repeat=k - 2):
        degrees = [1] * k
        for node in sequence:
            degrees[node] += 1
        heap = [i for i in range(k) if degrees[i] == 1]
        heapq.heapify(heap)
        edges: list[tuple[int, int]] = []
        for node in sequence:
            leaf = heapq.heappop(heap)
            edges.append((leaf, node))
            degrees[node] -= 1
            if degrees[node] == 1:
                heapq.heappush(heap, node)
        first = heapq.heappop(heap)
        second = heapq.heappop(heap)
        edges.append((first, second))
        trees.append(edges)
    return trees


class GHDOptimizer:
    """Enumerates GHDs and picks the paper's preferred decomposition."""

    def __init__(self, config: OptimizationConfig | None = None) -> None:
        self.config = config if config is not None else OptimizationConfig()
        self._width_cache: dict[
            tuple[frozenset[Variable], tuple[int, ...]], float
        ] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def decompose(
        self, query: NormalizedQuery, hypergraph: Hypergraph | None = None
    ) -> GHD:
        """The chosen GHD for ``query`` under this optimizer's config."""
        hypergraph = hypergraph or Hypergraph.from_query(query)
        if not self.config.use_ghd:
            ghd = self._single_node(query)
        elif self.config.ghd_selection_pushdown:
            ghd = self._decompose_with_pushdown(query, hypergraph)
        else:
            ghd = self._best_over(
                query, list(range(len(query.atoms))), cover_restriction=None
            )
        ghd.check_valid(hypergraph)
        return ghd

    def fhw(self, query: NormalizedQuery) -> float:
        """The fractional hypertree width of the query's hypergraph."""
        ghd = self._best_over(
            query, list(range(len(query.atoms))), cover_restriction=None
        )
        return ghd.width(Hypergraph.from_query(query))

    # ------------------------------------------------------------------
    # Baseline enumeration: min width, then min height
    # ------------------------------------------------------------------
    def _single_node(self, query: NormalizedQuery) -> GHD:
        chi = frozenset(query.variables())
        node = GHDNode(
            node_id=0, chi=chi, atom_indices=tuple(range(len(query.atoms)))
        )
        return GHD(nodes=[node], root=0)

    def _node_width(
        self,
        query: NormalizedQuery,
        atom_indices: tuple[int, ...],
        cover_restriction: frozenset[Variable] | None,
    ) -> float:
        chi: set[Variable] = set()
        for i in atom_indices:
            chi.update(query.atoms[i].variables)
        targets = (
            frozenset(chi)
            if cover_restriction is None
            else frozenset(chi) & cover_restriction
        )
        if not targets:
            return 0.0
        key = (targets, atom_indices)
        cached = self._width_cache.get(key)
        if cached is not None:
            return cached
        # Fast path: one atom (or any atom covering all targets) = width 1.
        width: float
        if any(
            targets <= frozenset(query.atoms[i].variables)
            for i in atom_indices
        ):
            width = 1.0
        else:
            hypergraph = Hypergraph.from_query(query)
            edges = [hypergraph.edges[i] for i in atom_indices]
            width = cover_number(targets, edges)
        self._width_cache[key] = width
        return width

    def _candidates_over(
        self,
        query: NormalizedQuery,
        atom_indices: list[int],
        cover_restriction: frozenset[Variable] | None,
        must_cover: tuple[frozenset[Variable], ...] = (),
    ) -> tuple[float, list[GHD]]:
        """All min-width rooted GHDs whose nodes partition ``atom_indices``.

        ``must_cover`` constrains the admissible partitions: each group
        must be a subset of some block's variables (the pushdown retry
        uses this to force a single node to cover every unselected
        variable of a selected atom that otherwise breaks the running
        intersection property). The all-atoms-in-one-block partition
        covers any group drawn from the atoms' variables, so the
        constraint never empties the candidate set.
        """
        if not atom_indices:
            raise PlanningError("cannot decompose zero atoms")
        if len(atom_indices) > MAX_ENUMERATED_BLOCKS:
            ghd = self._restricted_single_node(query, atom_indices)
            return (
                self._node_width(
                    query, tuple(atom_indices), cover_restriction
                ),
                [ghd],
            )

        by_width: dict[float, list[list[tuple[int, ...]]]] = {}
        for partition in set_partitions(atom_indices):
            blocks = [tuple(sorted(block)) for block in partition]
            if must_cover:
                block_vars = [
                    frozenset(
                        v for i in block for v in query.atoms[i].variables
                    )
                    for block in blocks
                ]
                if not all(
                    any(group <= vars_ for vars_ in block_vars)
                    for group in must_cover
                ):
                    continue
            width = round(
                max(
                    self._node_width(query, block, cover_restriction)
                    for block in blocks
                ),
                6,
            )
            by_width.setdefault(width, []).append(blocks)

        # A minimum-width partition may admit no valid tree (the per-atom
        # partition of a triangle has width 1 but fails the running
        # intersection property), so walk widths upward until some
        # partition yields candidates.
        for width in sorted(by_width):
            candidates: list[GHD] = []
            for blocks in by_width[width]:
                candidates.extend(self._rooted_trees(query, blocks))
            if candidates:
                return width, candidates
        raise PlanningError("no valid GHD found")  # pragma: no cover

    def _restricted_single_node(
        self, query: NormalizedQuery, atom_indices: list[int]
    ) -> GHD:
        chi: set[Variable] = set()
        for i in atom_indices:
            chi.update(query.atoms[i].variables)
        node = GHDNode(
            node_id=0, chi=frozenset(chi), atom_indices=tuple(atom_indices)
        )
        return GHD(nodes=[node], root=0)

    def _rooted_trees(
        self, query: NormalizedQuery, blocks: list[tuple[int, ...]]
    ) -> list[GHD]:
        """All rooted GHDs over ``blocks`` satisfying running intersection."""
        k = len(blocks)
        block_vars = [
            frozenset(
                v for i in block for v in query.atoms[i].variables
            )
            for block in blocks
        ]
        result: list[GHD] = []
        for edges in prufer_trees(k):
            if not self._satisfies_rip(block_vars, edges, k):
                continue
            adjacency: list[list[int]] = [[] for _ in range(k)]
            for a, b in edges:
                adjacency[a].append(b)
                adjacency[b].append(a)
            for root in range(k):
                result.append(
                    self._root_tree(blocks, block_vars, adjacency, root)
                )
        return result

    @staticmethod
    def _satisfies_rip(
        block_vars: list[frozenset[Variable]],
        edges: list[tuple[int, int]],
        k: int,
    ) -> bool:
        """Running intersection: per variable, holders form a subtree."""
        if k <= 2:
            return True
        adjacency: list[list[int]] = [[] for _ in range(k)]
        for a, b in edges:
            adjacency[a].append(b)
            adjacency[b].append(a)
        all_vars: set[Variable] = set()
        for vars_ in block_vars:
            all_vars |= vars_
        for var in all_vars:
            holders = {i for i in range(k) if var in block_vars[i]}
            if len(holders) <= 1:
                continue
            start = next(iter(holders))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbor in adjacency[current]:
                    if neighbor in holders and neighbor not in seen:
                        seen.add(neighbor)
                        stack.append(neighbor)
            if seen != holders:
                return False
        return True

    @staticmethod
    def _root_tree(
        blocks: list[tuple[int, ...]],
        block_vars: list[frozenset[Variable]],
        adjacency: list[list[int]],
        root: int,
    ) -> GHD:
        nodes = [
            GHDNode(node_id=i, chi=block_vars[i], atom_indices=blocks[i])
            for i in range(len(blocks))
        ]
        seen = {root}
        queue = [root]
        while queue:
            current = queue.pop(0)
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    nodes[neighbor].parent = current
                    nodes[current].children.append(neighbor)
                    queue.append(neighbor)
        return GHD(nodes=nodes, root=root)

    def _best_over(
        self,
        query: NormalizedQuery,
        atom_indices: list[int],
        cover_restriction: frozenset[Variable] | None,
    ) -> GHD:
        """Min width, then min height, then canonical tie-break."""
        _, candidates = self._candidates_over(
            query, atom_indices, cover_restriction
        )
        return min(
            candidates,
            key=lambda g: (g.height, len(g.nodes), _canonical_key(g)),
        )

    # ------------------------------------------------------------------
    # +GHD: selection pushdown across nodes
    # ------------------------------------------------------------------
    def _decompose_with_pushdown(
        self, query: NormalizedQuery, hypergraph: Hypergraph
    ) -> GHD:
        selected = [
            i for i, atom in enumerate(query.atoms)
            if any(v in query.selections for v in atom.variables)
        ]
        unselected = [
            i for i in range(len(query.atoms)) if i not in selected
        ]
        if not selected or not unselected:
            # Nothing to push (or nothing to push below); fall back to
            # the baseline criteria.
            return self._best_over(
                query, list(range(len(query.atoms))), cover_restriction=None
            )
        cover_restriction = frozenset(query.unselected_variables())
        _, bases = self._candidates_over(
            query, unselected, cover_restriction
        )
        augmented = [
            self._attach_selected(query, base, selected) for base in bases
        ]
        # Attaching can break the running-intersection property when a
        # selected atom's unselected variables (two of them for ternary
        # __triples__ atoms) are covered only across *different* nodes.
        augmented = [
            ghd for ghd in augmented if self._is_valid(ghd, hypergraph)
        ]
        if not augmented:
            # Retry with merged variables: re-decompose the unselected
            # atoms under a must-cover constraint so some single node
            # covers each such atom's unselected variables, then attach
            # below it. This keeps the pushdown (and its selections-
            # first execution) at the cost of a possibly wider base
            # node, instead of abandoning it outright.
            augmented = self._pushdown_with_merging(
                query, hypergraph, selected, unselected, cover_restriction
            )
        if not augmented:
            return self._best_over(
                query, list(range(len(query.atoms))), cover_restriction=None
            )
        return min(
            augmented,
            key=lambda g: (
                -g.selection_depth(set(query.selections)),
                g.height,
                len(g.nodes),
                _canonical_key(g),
            ),
        )

    def _pushdown_with_merging(
        self,
        query: NormalizedQuery,
        hypergraph: Hypergraph,
        selected: list[int],
        unselected: list[int],
        cover_restriction: frozenset[Variable] | None,
    ) -> list[GHD]:
        """Valid pushdown GHDs over bases forced to cover each selected
        atom's unselected variables inside one node (empty if even the
        merged bases fail validation, e.g. selected atoms sharing a
        variable held by no unselected atom)."""
        base_vars = frozenset(
            v for i in unselected for v in query.atoms[i].variables
        )
        must_cover = []
        for atom_index in selected:
            atom = query.atoms[atom_index]
            group = frozenset(
                v for v in atom.variables if v not in query.selections
            ) & base_vars
            if len(group) >= 2:
                must_cover.append(group)
        if not must_cover:
            return []
        _, bases = self._candidates_over(
            query,
            unselected,
            cover_restriction,
            must_cover=tuple(must_cover),
        )
        augmented = [
            self._attach_selected(query, base, selected) for base in bases
        ]
        return [ghd for ghd in augmented if self._is_valid(ghd, hypergraph)]

    @staticmethod
    def _is_valid(ghd: GHD, hypergraph: Hypergraph) -> bool:
        try:
            ghd.check_valid(hypergraph)
        except PlanningError:
            return False
        return True

    def _attach_selected(
        self, query: NormalizedQuery, base: GHD, selected: list[int]
    ) -> GHD:
        """Attach each selected atom below the deepest covering node."""
        nodes = [
            GHDNode(
                node_id=n.node_id,
                chi=n.chi,
                atom_indices=n.atom_indices,
                parent=n.parent,
                children=list(n.children),
            )
            for n in base.nodes
        ]
        ghd = GHD(nodes=nodes, root=base.root)
        for atom_index in selected:
            atom = query.atoms[atom_index]
            unselected_vars = frozenset(
                v for v in atom.variables if v not in query.selections
            )
            eligible = [
                n for n in ghd.nodes if unselected_vars <= n.chi
            ]
            if not eligible:
                # Variable never shared with the rest of the query
                # (cross-product shaped); hang the node off the root.
                host = ghd.root_node
            else:
                host = max(
                    eligible,
                    key=lambda n: (ghd.depth(n.node_id), n.node_id),
                )
            new_node = GHDNode(
                node_id=len(ghd.nodes),
                chi=frozenset(atom.variables),
                atom_indices=(atom_index,),
                parent=host.node_id,
            )
            ghd.nodes.append(new_node)
            host.children.append(new_node.node_id)
        return ghd


def _canonical_key(ghd: GHD) -> tuple:
    """A deterministic serialization for stable tie-breaking."""
    entries = []
    for node in ghd.preorder():
        entries.append(
            (
                ghd.depth(node.node_id),
                tuple(sorted(v.name for v in node.chi)),
                node.atom_indices,
            )
        )
    return tuple(entries)
