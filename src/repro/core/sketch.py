"""Per-column value-frequency sketches (the skew statistics layer).

Distinct counts alone are wrong under skew (a celebrity value binds
100k rows, the median value 5), so the store maintains a
:class:`FrequencySketch` per stored column: the exact value→count
histogram, exposed as the usual "top-k hot values + residual
distinct/total" summary. Keeping the histogram exact (it is two sorted
arrays no larger than the column it summarizes) is what lets delta
batches *merge* into it — add counts for inserted rows, subtract for
tombstoned ones — with the invariant that incremental maintenance is
byte-identical to a from-scratch rebuild, which the cluster tier relies
on so replicated workers plan identically after replay catch-up.

This module is deliberately dependency-free (numpy only): it sits below
the storage layer, which feeds sketches upward to planners and ships
them across the shared-memory segment.
"""

from __future__ import annotations

import struct

import numpy as np

#: Hot values reported by :meth:`FrequencySketch.top` by default.
DEFAULT_TOP_K = 8

_SKETCH_MAGIC = b"FSK1"


class FrequencySketch:
    """Exact per-column value-frequency histogram.

    Immutable: ``merge`` returns a new sketch. ``values`` is sorted
    ascending and unique; ``counts`` is aligned and strictly positive,
    so two sketches over the same logical column are equal element-wise
    and serialize to identical bytes regardless of the insert/delete
    history that produced them.
    """

    __slots__ = ("values", "counts", "_total")

    def __init__(self, values: np.ndarray, counts: np.ndarray) -> None:
        self.values = np.ascontiguousarray(values, dtype=np.uint32)
        self.counts = np.ascontiguousarray(counts, dtype=np.int64)
        self._total = int(self.counts.sum()) if self.counts.size else 0

    # -- construction ---------------------------------------------------
    @classmethod
    def from_column(cls, column: np.ndarray) -> "FrequencySketch":
        """Build from a raw (unsorted, duplicated) encoded column."""
        if column.size == 0:
            return cls(np.empty(0, np.uint32), np.empty(0, np.int64))
        values, counts = np.unique(
            np.asarray(column, dtype=np.uint32), return_counts=True
        )
        return cls(values, counts.astype(np.int64))

    @classmethod
    def empty(cls) -> "FrequencySketch":
        return cls(np.empty(0, np.uint32), np.empty(0, np.int64))

    # -- summary --------------------------------------------------------
    @property
    def distinct(self) -> int:
        return int(self.values.size)

    @property
    def total(self) -> int:
        return self._total

    @property
    def max_count(self) -> int:
        """Largest per-value frequency (the skew ceiling a single bound
        co-value can fan out to)."""
        return int(self.counts.max()) if self.counts.size else 0

    def count(self, value: int) -> int:
        """Exact frequency of ``value`` (0 when absent)."""
        index = int(np.searchsorted(self.values, np.uint32(value)))
        if index < self.values.size and int(self.values[index]) == int(
            value
        ):
            return int(self.counts[index])
        return 0

    def top(self, k: int = DEFAULT_TOP_K) -> list[tuple[int, int]]:
        """The ``k`` hottest ``(value, count)`` pairs, hottest first;
        ties break toward the smaller value so the report is stable."""
        if not self.counts.size or k <= 0:
            return []
        k = min(k, self.counts.size)
        # lexsort keys: last key is primary → (-count, value).
        order = np.lexsort((self.values, -self.counts))[:k]
        return [
            (int(self.values[i]), int(self.counts[i])) for i in order
        ]

    def residual(self, k: int = DEFAULT_TOP_K) -> tuple[int, int]:
        """``(distinct, total)`` of everything *outside* the top ``k``."""
        hot = self.top(k)
        return self.distinct - len(hot), self.total - sum(
            count for _, count in hot
        )

    # -- maintenance ----------------------------------------------------
    def merge(
        self,
        added: np.ndarray | None,
        removed: np.ndarray | None,
    ) -> "FrequencySketch":
        """This sketch plus one delta batch's column slices.

        ``added``/``removed`` are the raw (duplicated) column values of
        the batch's inserted and tombstoned rows. The store keeps the
        two disjoint per batch and never removes a row that is not
        present, so counts stay non-negative; zero-count values drop
        out entirely, preserving the canonical form.
        """
        if (added is None or added.size == 0) and (
            removed is None or removed.size == 0
        ):
            return self
        pieces = [self.values]
        if added is not None and added.size:
            pieces.append(np.asarray(added, dtype=np.uint32))
        if removed is not None and removed.size:
            pieces.append(np.asarray(removed, dtype=np.uint32))
        universe = np.unique(np.concatenate(pieces))
        deltas = np.zeros(universe.size, dtype=np.int64)
        here = np.searchsorted(universe, self.values)
        deltas[here] += self.counts
        if added is not None and added.size:
            values, counts = np.unique(
                np.asarray(added, dtype=np.uint32), return_counts=True
            )
            deltas[np.searchsorted(universe, values)] += counts
        if removed is not None and removed.size:
            values, counts = np.unique(
                np.asarray(removed, dtype=np.uint32), return_counts=True
            )
            deltas[np.searchsorted(universe, values)] -= counts
        keep = deltas > 0
        return FrequencySketch(universe[keep], deltas[keep])

    # -- serialization --------------------------------------------------
    def to_bytes(self) -> bytes:
        """Deterministic wire form (canonical histogram → canonical
        bytes; used to assert cluster workers hold identical stats)."""
        return (
            _SKETCH_MAGIC
            + struct.pack("<Q", self.values.size)
            + self.values.astype("<u4").tobytes()
            + self.counts.astype("<i8").tobytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "FrequencySketch":
        if data[: len(_SKETCH_MAGIC)] != _SKETCH_MAGIC:
            raise ValueError("not a serialized FrequencySketch")
        offset = len(_SKETCH_MAGIC)
        (size,) = struct.unpack_from("<Q", data, offset)
        offset += 8
        values = np.frombuffer(data, dtype="<u4", count=size, offset=offset)
        offset += 4 * size
        counts = np.frombuffer(data, dtype="<i8", count=size, offset=offset)
        return cls(values, counts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencySketch):
            return NotImplemented
        return bool(
            np.array_equal(self.values, other.values)
            and np.array_equal(self.counts, other.counts)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrequencySketch(distinct={self.distinct}, "
            f"total={self.total}, max={self.max_count})"
        )


#: Per-table, per-column sketches: ``{table: {attribute: sketch}}``.
TableSketches = dict[str, dict[str, FrequencySketch]]


def build_table_sketches(
    attributes: list[str], columns: list[np.ndarray]
) -> dict[str, FrequencySketch]:
    """Sketches for one table's columns, keyed by attribute name."""
    return {
        attribute: FrequencySketch.from_column(column)
        for attribute, column in zip(attributes, columns)
    }


def merge_table_sketches(
    sketches: dict[str, FrequencySketch],
    attributes: list[str],
    added: list[np.ndarray] | None,
    removed: list[np.ndarray] | None,
) -> dict[str, FrequencySketch]:
    """One table's sketches after a delta batch (column-aligned)."""
    merged: dict[str, FrequencySketch] = {}
    for index, attribute in enumerate(attributes):
        sketch = sketches.get(attribute, FrequencySketch.empty())
        merged[attribute] = sketch.merge(
            added[index] if added is not None else None,
            removed[index] if removed is not None else None,
        )
    return merged


def combine_sketches(
    sketches: list[FrequencySketch],
) -> FrequencySketch:
    """The histogram of the disjoint union of the sketched columns
    (e.g. the ``__triples__`` view's subject column is the union of
    every predicate table's subject column)."""
    result = FrequencySketch.empty()
    for sketch in sketches:
        if sketch.values.size:
            result = _add(result, sketch)
    return result


def _add(
    left: FrequencySketch, right: FrequencySketch
) -> FrequencySketch:
    universe = np.unique(np.concatenate([left.values, right.values]))
    counts = np.zeros(universe.size, dtype=np.int64)
    counts[np.searchsorted(universe, left.values)] += left.counts
    counts[np.searchsorted(universe, right.values)] += right.counts
    return FrequencySketch(universe, counts)
