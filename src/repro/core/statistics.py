"""Plan-time statistics: frequency sketches and cardinality estimates.

Section III-B1 of the paper orders "attributes with selections or small
initial cardinalities" first. The *initial cardinality* of a variable is
the smallest number of distinct values any single atom can bind it to,
taking that atom's own equality selections into account — e.g. in LUBM
query 7 the variable ``y`` is bound by ``teacherOf(<AssociateProfessor0>,
y)`` to only a couple of courses, so it should be enumerated before ``x``
(all undergraduates).

Distinct counts alone are wrong under skew (a celebrity value binds
100k rows, the median value 5), so the store additionally maintains a
:class:`FrequencySketch` per stored column: the exact value→count
histogram, exposed as the usual "top-k hot values + residual
distinct/total" summary. Keeping the histogram exact (it is two sorted
arrays no larger than the column it summarizes) is what lets delta
batches *merge* into it — add counts for inserted rows, subtract for
tombstoned ones — with the invariant that incremental maintenance is
byte-identical to a from-scratch rebuild, which the cluster tier relies
on so replicated workers plan identically after replay catch-up.
"""

from __future__ import annotations

import numpy as np

from repro.core.query import Atom, NormalizedQuery, Variable
from repro.core.sketch import (  # noqa: F401  (re-exported: the sketch
    DEFAULT_TOP_K,  # layer lives below storage; planners import it from
    FrequencySketch,  # here alongside the estimators)
    TableSketches,
    build_table_sketches,
    combine_sketches,
    merge_table_sketches,
)
from repro.errors import ArityMismatchError
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation


def atom_relation(catalog: Catalog, atom: Atom) -> Relation:
    """The base relation of ``atom`` with columns renamed to its variables.

    Atoms with a repeated variable (e.g. ``R(x, x)``) are rewritten to a
    filtered relation over distinct variables, registered in the catalog
    under a derived name so downstream trie caching still applies.
    """
    relation = catalog.check_arity(atom.relation, len(atom.terms))
    names = [v.name for v in atom.variables]
    if len(set(names)) == len(atom.terms):
        return relation.rename(attributes=names)

    # Repeated variables: keep rows where all repeated positions agree,
    # then drop the duplicate columns.
    derived_name = f"{atom.relation}[{','.join(names)}]"
    if derived_name in catalog:
        return catalog.get(derived_name)
    positions: dict[str, list[int]] = {}
    for i, var in enumerate(atom.variables):
        positions.setdefault(var.name, []).append(i)
    mask = np.ones(relation.num_rows, dtype=bool)
    keep_attrs: list[str] = []
    keep_cols = []
    for name, idxs in positions.items():
        first = relation.columns[idxs[0]]
        for other in idxs[1:]:
            mask &= first == relation.columns[other]
        keep_attrs.append(name)
        keep_cols.append(first)
    derived = Relation(derived_name, keep_attrs, keep_cols).filter(mask)
    # get_or_register: another thread may have derived it concurrently.
    return catalog.get_or_register(derived)


def estimate_variable_cardinalities(
    query: NormalizedQuery, catalog: Catalog
) -> dict[Variable, int]:
    """Per-variable distinct-count estimates (min across covering atoms).

    Selection variables estimate to 1. For atoms carrying selections the
    other variables' counts are computed on the *filtered* rows — this is
    exact (our stats are whole-column scans) and cheap at LUBM scale; a
    disk-based engine would read it off aggregate indexes the way RDF-3X
    does.
    """
    estimates: dict[Variable, int] = {
        var: 1 for var in query.selections
    }
    for atom in query.atoms:
        relation = atom_relation(catalog, atom)
        # The relation's columns are named by the atom's variables (and
        # deduplicated for repeated variables), so index by name.
        column_for = {
            name: column
            for name, column in zip(relation.attributes, relation.columns)
        }
        mask: np.ndarray | None = None
        for var, value in (
            (v, query.selections[v])
            for v in atom.variables
            if v in query.selections
        ):
            condition = column_for[var.name] == np.uint32(value)
            mask = condition if mask is None else (mask & condition)
        for var in dict.fromkeys(atom.variables):
            if var in query.selections:
                continue
            column = column_for[var.name]
            if mask is not None:
                column = column[mask]
            count = int(np.unique(column).size) if column.size else 0
            current = estimates.get(var)
            if current is None or count < current:
                estimates[var] = count
    return estimates


def post_selection_rows(
    query: NormalizedQuery, catalog: Catalog, atom: Atom
) -> int:
    """Row count of ``atom``'s relation after applying its selections."""
    relation = atom_relation(catalog, atom)
    column_for = {
        name: column
        for name, column in zip(relation.attributes, relation.columns)
    }
    mask = np.ones(relation.num_rows, dtype=bool)
    for var in atom.variables:
        value = query.selections.get(var)
        if value is not None:
            mask &= column_for[var.name] == np.uint32(value)
    return int(mask.sum())
