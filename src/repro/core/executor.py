"""GHD plan execution (Section II-C, plus the Section III optimizations).

Execution runs in two passes over the GHD, exactly as the paper
describes:

1. **Bottom-up**: Algorithm 1 (the generic worst-case optimal join) runs
   inside each node; a node's participants are its own atoms *plus the
   materialized results of its children* projected onto shared
   attributes, so child selections semijoin-reduce their parents.
2. **Top-down**: when the projection spans several nodes, a Yannakakis-
   style pass joins node results downward from the root to materialize
   the final answer.

The +Pipelining optimization (Definition 2) fuses the root with one
pipelineable child at execution time: the child's atoms and child-results
join directly in the root's generic join, so the child's intermediate
result is never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.generic_join import (
    Participant,
    generic_join,
    generic_join_stream,
)
from repro.core.modifiers import finalize_result
from repro.core.planner import Plan
from repro.core.query import Variable
from repro.core.statistics import atom_relation
from repro.errors import ExecutionError
from repro.relalg.kernels import cross_product, natural_join
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.trie.trie import Trie


@dataclass
class ExecutorStats:
    """Cumulative work counters for one executor.

    ``enumerated_tuples`` counts partial join tuples carried through the
    frontier at join-attribute bindings (both execution paths charge the
    same way, so materialized and streamed runs are comparable). The
    top-k bench gate asserts that under streaming it grows with
    ``offset + limit``, not with store size.

    ``last_order``/``last_bounds`` record the attach order (and, when
    the bound-driven search ran, its per-variable frontier bounds) of
    the most recently executed plan, so serving-layer introspection can
    report what the cost model actually chose.
    """

    enumerated_tuples: int = 0
    last_order: tuple[str, ...] = ()
    last_bounds: dict[str, int] | None = None

    def record_plan(self, plan: Plan) -> None:
        self.last_order = tuple(v.name for v in plan.global_order)
        self.last_bounds = (
            {v.name: bound for v, bound in plan.bounds.items()}
            if plan.bounds
            else None
        )


class GHDExecutor:
    """Executes :class:`~repro.core.planner.Plan`s against a catalog."""

    def __init__(
        self, catalog: Catalog, stats: ExecutorStats | None = None
    ) -> None:
        self.catalog = catalog
        self.stats = stats if stats is not None else ExecutorStats()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def execute(self, plan: Plan) -> Relation:
        """Run the plan; returns the projected, distinct result."""
        self.stats.record_plan(plan)
        ghd = plan.ghd
        results: dict[int, Relation] = {}
        fused_child = plan.pipelined_child

        names = [v.name for v in plan.query.projection]
        for node in ghd.postorder():
            node_id = node.node_id
            if node_id == fused_child:
                continue  # executed fused with the root
            if node_id == ghd.root and fused_child is not None:
                results[node_id] = self._execute_node(
                    plan, node_id, results, fused=fused_child
                )
            else:
                results[node_id] = self._execute_node(
                    plan, node_id, results, fused=None
                )
            if results[node_id].num_rows == 0:
                # Any empty node result empties the whole (inner) join.
                return Relation.empty(plan.query.name, names)

        return finalize_result(self._materialize(plan, results), plan.query)

    # ------------------------------------------------------------------
    # Streaming entry point
    # ------------------------------------------------------------------
    def execute_iter(
        self, plan: Plan, *, chunk_rows: int = 1024
    ) -> Iterator[Relation] | None:
        """Run the plan lazily, or return ``None`` when it cannot stream.

        Yields chunks of *distinct* projected rows in exactly the order
        :meth:`execute` would return them (``finalize_result``'s
        canonical sort-by-projection order), without the final
        offset/limit slice — the consumer stops pulling once it has
        enough rows, which is the whole point.

        Streaming requires the projection to be answerable from the
        (fused) root node alone with a reordered binding sequence
        ``[selections..., projection..., rest...]``; plans that need the
        top-down Yannakakis pass, project nothing, select a projected
        variable, or repeat one, fall back (``None``) to the
        materializing path. Child nodes below the root still materialize
        bottom-up — they are semijoin reducers, typically far smaller
        than the root's output.
        """
        query = plan.query
        projection = list(query.projection)
        if not projection or len(set(projection)) != len(projection):
            return None
        ghd = plan.ghd
        fused = plan.pipelined_child
        attrs, atom_indices, child_ids = self._node_members(
            plan, ghd.root, fused
        )
        chi = set(attrs)
        if any(v not in chi for v in projection):
            return None  # needs the top-down pass: materialize
        selections = {
            v: query.selections[v] for v in attrs if v in query.selections
        }
        if any(v in selections for v in projection):
            return None
        projected = set(projection)
        stream_attrs = (
            [v for v in attrs if v in selections]
            + projection
            + [v for v in attrs if v not in selections and v not in projected]
        )

        self.stats.record_plan(plan)

        def run() -> Iterator[Relation]:
            results: dict[int, Relation] = {}
            for node in ghd.postorder():
                node_id = node.node_id
                if node_id == ghd.root or node_id == fused:
                    continue
                # Child nodes are semijoin reducers: like Phase B of the
                # root's streamed join, their construction is index
                # preparation, not result enumeration — uncounted so the
                # stat reflects only the work the LIMIT can bound.
                results[node_id] = self._execute_node(
                    plan, node_id, results, fused=None, count_stats=False
                )
                if results[node_id].num_rows == 0:
                    return
            participants = [
                self._atom_participant(plan, i, stream_attrs)
                for i in atom_indices
            ]
            for child_id in child_ids:
                participant = self._child_participant(
                    plan, child_id, stream_attrs, results[child_id]
                )
                if participant is not None:
                    participants.append(participant)
            last_row: tuple[int, ...] | None = None
            for chunk in generic_join_stream(
                stream_attrs,
                participants,
                selections,
                projection,
                name=query.name,
                chunk_rows=chunk_rows,
                stats=self.stats,
            ):
                chunk, last_row = _drop_adjacent_duplicates(chunk, last_row)
                if chunk.num_rows:
                    yield chunk

        return run()

    # ------------------------------------------------------------------
    # Index warming
    # ------------------------------------------------------------------
    def warm(self, plan: Plan) -> int:
        """Build (and cache) every trie the plan will probe, without
        executing it. Returns the number of atom participants warmed.

        This is the serving-layer warm-up path: a
        :class:`~repro.service.QueryService` can warm the catalog's trie
        cache for its hot queries before traffic arrives, so the first
        real execution pays for joins only.
        """
        ghd = plan.ghd
        fused_child = plan.pipelined_child
        warmed = 0
        for node in ghd.postorder():
            node_id = node.node_id
            if node_id == fused_child:
                continue
            fused = fused_child if node_id == ghd.root else None
            attrs, atom_indices, _ = self._node_members(plan, node_id, fused)
            for atom_index in atom_indices:
                self._atom_participant(plan, atom_index, attrs)
                warmed += 1
        return warmed

    # ------------------------------------------------------------------
    # Bottom-up: one node = one generic worst-case optimal join
    # ------------------------------------------------------------------
    def _execute_node(
        self,
        plan: Plan,
        node_id: int,
        results: dict[int, Relation],
        fused: int | None,
        count_stats: bool = True,
    ) -> Relation:
        attrs, atom_indices, child_ids = self._node_members(
            plan, node_id, fused
        )

        participants: list[Participant] = []
        for atom_index in atom_indices:
            participants.append(
                self._atom_participant(plan, atom_index, attrs)
            )
        for child_id in child_ids:
            participant = self._child_participant(
                plan, child_id, attrs, results[child_id]
            )
            if participant is not None:
                participants.append(participant)

        selections = {
            v: plan.query.selections[v]
            for v in attrs
            if v in plan.query.selections
        }
        output_attrs = [v for v in attrs if v not in selections]
        return generic_join(
            attrs,
            participants,
            selections,
            output_attrs,
            name=f"node{node_id}",
            stats=self.stats if count_stats else None,
        )

    def _node_members(
        self, plan: Plan, node_id: int, fused: int | None
    ) -> tuple[list[Variable], list[int], list[int]]:
        """A node's attribute order, atoms, and children (fused-aware)."""
        ghd = plan.ghd
        member_nodes = [ghd.node(node_id)]
        if fused is not None:
            member_nodes.append(ghd.node(fused))

        # Attribute order: global order restricted to the (fused) chi.
        chi: set[Variable] = set()
        atom_indices: list[int] = []
        child_ids: list[int] = []
        for member in member_nodes:
            chi.update(member.chi)
            atom_indices.extend(member.atom_indices)
            child_ids.extend(
                c for c in member.children if c not in (fused,)
            )
        attrs = [v for v in plan.global_order if v in chi]
        return attrs, atom_indices, child_ids

    def _atom_participant(
        self, plan: Plan, atom_index: int, attrs: list[Variable]
    ) -> Participant:
        atom = plan.query.atoms[atom_index]
        relation = atom_relation(self.catalog, atom)
        var_order = [v for v in attrs if v in set(atom.variables)]
        # Map the variable order back to the *stored* relation's column
        # names so the catalog's trie cache is shared across queries
        # (the view returned by atom_relation renames columns to the
        # query's variable names; the catalog keeps the original names).
        stored = self.catalog.get(relation.name)
        name_for = {
            var_name: stored.attributes[i]
            for i, var_name in enumerate(relation.attributes)
        }
        original_order = [name_for[v.name] for v in var_order]
        trie = self.catalog.trie(
            relation.name,
            original_order,
            force_layout=plan.config.force_layout,
        )
        return Participant(
            trie=trie, attrs=tuple(var_order), label=repr(atom)
        )

    def _child_participant(
        self,
        plan: Plan,
        child_id: int,
        attrs: list[Variable],
        child_result: Relation,
    ) -> Participant | None:
        """The child's result projected onto shared attributes, as a trie."""
        shared = [v for v in attrs if v.name in child_result.attributes]
        if not shared:
            return None
        names = [v.name for v in shared]
        projected = child_result.project(names).distinct()
        trie = Trie.from_relation(
            projected, names, force_layout=plan.config.force_layout
        )
        return Participant(
            trie=trie, attrs=tuple(shared), label=f"child{child_id}"
        )

    # ------------------------------------------------------------------
    # Top-down: Yannakakis materialization across nodes
    # ------------------------------------------------------------------
    def _materialize(self, plan: Plan, results: dict[int, Relation]) -> Relation:
        ghd = plan.ghd
        root_result = results[ghd.root]
        projection_names = {v.name for v in plan.query.projection}

        # Which projection attributes live in each subtree?
        needed_below: dict[int, set[str]] = {}

        def collect(node_id: int) -> set[str]:
            node = ghd.node(node_id)
            if node_id in results:
                own = set(results[node_id].attributes) & projection_names
            else:  # the fused child: its attrs are already in the root
                own = set()
            for child in node.children:
                own |= collect(child)
            needed_below[node_id] = own
            return own

        collect(ghd.root)

        acc = root_result
        fused = plan.pipelined_child

        def descend(node_id: int) -> None:
            nonlocal acc
            node = ghd.node(node_id)
            for child_id in node.children:
                if child_id == fused:
                    # Fused child: its result is part of the root's; its
                    # own children may still add projection attributes.
                    descend(child_id)
                    continue
                missing = needed_below[child_id] - set(acc.attributes)
                if not missing:
                    continue
                child_result = results[child_id]
                if any(a in acc.attributes for a in child_result.attributes):
                    acc = natural_join(acc, child_result)
                else:
                    acc = cross_product(acc, child_result)
                descend(child_id)

        descend(ghd.root)

        missing = projection_names - set(acc.attributes)
        if missing:  # pragma: no cover - defended against by the planner
            raise ExecutionError(
                f"projection attributes {sorted(missing)} were not "
                "materialized by the plan"
            )
        return acc


def _drop_adjacent_duplicates(
    chunk: Relation, last_row: tuple[int, ...] | None
) -> tuple[Relation, tuple[int, ...] | None]:
    """Deduplicate a chunk of a stream sorted by all its columns.

    Equal rows are adjacent in such a stream, so dedup is dropping rows
    equal to their predecessor — including the first row when it equals
    the previous chunk's last row (threaded through ``last_row``).
    """
    n = chunk.num_rows
    if n == 0:
        return chunk, last_row
    keep = np.zeros(n, dtype=bool)
    keep[0] = True
    for column in chunk.columns:
        keep[1:] |= column[1:] != column[:-1]
    if last_row is not None and all(
        int(column[0]) == prev
        for column, prev in zip(chunk.columns, last_row)
    ):
        keep[0] = False
    new_last = tuple(int(column[-1]) for column in chunk.columns)
    if keep.all():
        return chunk, new_last
    return chunk.filter(keep), new_last
