"""Block-wise execution of multi-block queries (UNION / OPTIONAL).

Engines only ever execute *conjunctive* queries; this module assembles
their results into the semantics of a :class:`~repro.core.query.BoundUnion`:

* each :class:`~repro.core.query.BoundBlock`'s required pattern runs as
  one conjunctive query, projected onto exactly the variables later
  stages observe (projection, optional join keys, filter operands);
* each :class:`~repro.core.query.BoundOptional` extension runs as a
  conjunctive query per bound variant, the variants are unioned, and the
  block rows are *left-outer extended*: rows with a (filter-surviving)
  match gain the optional bindings, rows without keep
  :data:`~repro.storage.relation.NULL_KEY` in the optional-only columns;
* block filters then run NULL-aware, branch rows are aligned onto the
  query projection (padding variables the branch never binds), and the
  branches merge under sort-dedup semantics before ORDER BY and
  OFFSET/LIMIT apply to the union.

Because this layer is shared by every engine, the five physical designs
agree on UNION/OPTIONAL results by construction — exactly the guarantee
the engine layer already gives for filters and solution modifiers.

:func:`block_queries` enumerates the conjunctive queries a bound union
will execute; plan-caching engines use it to warm plans and tries
without executing (the ``QueryService.warm`` path), and its output is
deterministic so warmed plans are the ones execution later looks up.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Iterator

import numpy as np

from repro.core.modifiers import (
    apply_order,
    apply_slice,
    evaluate_leaf_masks,
    filter_mask,
)
from repro.core.query import (
    BoundBlock,
    BoundOptional,
    BoundTest,
    BoundUnion,
    ConjunctiveQuery,
    FilterExpr,
    Variable,
)
from repro.relalg.kernels import join_indices
from repro.storage.relation import NULL_KEY, Relation

ExecuteFn = Callable[[ConjunctiveQuery], Relation]


# ---------------------------------------------------------------------------
# Per-block conjunctive queries (shared by execution and warming)
# ---------------------------------------------------------------------------
def _ordered_subset(
    wanted: set[Variable], appearance: Iterable[Variable]
) -> tuple[Variable, ...]:
    """``wanted`` in first-appearance order (deterministic projections
    keep engine plan caches hitting across warm-up and execution)."""
    out: list[Variable] = []
    seen: set[Variable] = set()
    for var in appearance:
        if var in wanted and var not in seen:
            seen.add(var)
            out.append(var)
    return tuple(out)


def _filter_variables(filters: Iterable[FilterExpr]) -> set[Variable]:
    return {v for f in filters for v in f.variables()}


def branch_row_cap(bound: BoundUnion) -> int | None:
    """Rows each branch must contribute before the sort-dedup merge.

    With a LIMIT and no ORDER BY the merged result is the first
    ``offset + limit`` rows in canonical (lexicographic key) order, and
    a row in that prefix is necessarily within the first
    ``offset + limit`` canonical rows *of its own branch* (deduping
    other branches only removes rows ahead of it). So each branch needs
    at most that many rows. ORDER BY sorts by decoded term values —
    a different order — so no cap applies.
    """
    if bound.limit is None or bound.order_by:
        return None
    return bound.offset + bound.limit


def required_query(
    bound: BoundUnion, block: BoundBlock, index: int
) -> ConjunctiveQuery:
    """The conjunctive query evaluating a block's required pattern."""
    req_vars = block.required_variables()
    needed = set(bound.projection) & req_vars
    needed |= req_vars & _filter_variables(block.filters)
    for optional in block.optionals:
        needed |= req_vars & optional.variables()
        needed |= req_vars & _filter_variables(optional.filters)
    if not needed:
        # The block binds nothing downstream observes; project one
        # witness variable so row existence survives (a zero-attribute
        # relation cannot carry a row count).
        needed = {min(req_vars)}
    appearance = list(bound.projection) + [
        v for atom in block.atoms for v in atom.variables
    ]
    # Per-branch LIMIT pushdown: when nothing downstream can drop or
    # reorder this block's rows (no filters, no optionals) the engine
    # itself may stop at the cap. The engine's canonical sort is by its
    # projection — a subsequence of the union projection here (padded
    # columns are constant within a branch), so its first-k prefix
    # agrees with the merge's.
    limit = None
    cap = branch_row_cap(bound)
    if cap is not None and not block.filters and not block.optionals:
        limit = cap
    return ConjunctiveQuery(
        atoms=block.atoms,
        projection=_ordered_subset(needed, appearance),
        name=f"{bound.name}#b{index}",
        limit=limit,
    )


def optional_queries(
    bound: BoundUnion,
    block: BoundBlock,
    optional: BoundOptional,
    block_index: int,
    optional_index: int,
) -> list[ConjunctiveQuery]:
    """The conjunctive queries (one per variant) of one extension."""
    opt_vars = optional.variables()
    req_vars = block.required_variables()
    needed = set(bound.projection) & opt_vars
    needed |= opt_vars & req_vars  # left-outer join keys
    needed |= opt_vars & _filter_variables(optional.filters)
    needed |= opt_vars & _filter_variables(block.filters)
    for other in block.optionals:
        # Compatibility-join keys: a variable two OPTIONALs share must
        # be materialized even when nothing downstream projects it.
        if other is not optional:
            needed |= opt_vars & other.variables()
    if not needed:
        needed = {min(opt_vars)}
    queries: list[ConjunctiveQuery] = []
    for k, atoms in enumerate(optional.variants):
        appearance = list(bound.projection) + [
            v for atom in atoms for v in atom.variables
        ]
        queries.append(
            ConjunctiveQuery(
                atoms=atoms,
                projection=_ordered_subset(needed, appearance),
                name=f"{bound.name}#b{block_index}o{optional_index}v{k}",
            )
        )
    return queries


def block_queries(bound: BoundUnion) -> list[ConjunctiveQuery]:
    """Every conjunctive query :func:`execute_union` will run."""
    queries: list[ConjunctiveQuery] = []
    for i, block in enumerate(bound.blocks):
        queries.append(required_query(bound, block, i))
        for j, optional in enumerate(block.optionals):
            queries.extend(optional_queries(bound, block, optional, i, j))
    return queries


# ---------------------------------------------------------------------------
# Left-outer extension
# ---------------------------------------------------------------------------
def _pad_columns(n: int, count: int) -> list[np.ndarray]:
    return [
        np.full(n, NULL_KEY, dtype=np.uint32) for _ in range(count)
    ]


def _absence_aware_leaf(
    relation: Relation, leaf_expr, dictionary
) -> tuple[np.ndarray, np.ndarray]:
    """``(true, error)`` masks for a leaf that may reference a variable
    the relation never binds (a sibling UNION branch's variable, or an
    OPTIONAL dropped at bind time): a SPARQL type error for comparisons
    and ``regex`` (so ``!`` keeps the row excluded), and plain falsity
    for ``bound`` (the variable is, indeed, unbound — and
    ``!bound(?absent)`` is definitively true) — while under ``||``
    another arm can still keep the row."""
    if any(
        var.name not in relation.attributes
        for var in leaf_expr.variables()
    ):
        false = np.zeros(relation.num_rows, dtype=bool)
        if isinstance(leaf_expr, BoundTest):
            return false, np.zeros(relation.num_rows, dtype=bool)
        return false, np.ones(relation.num_rows, dtype=bool)
    return evaluate_leaf_masks(relation, leaf_expr, dictionary)


def _filter_mask(
    relation: Relation, filters: tuple[FilterExpr, ...], dictionary
) -> np.ndarray:
    """Conjunction of the filters' absence-aware keep-masks."""
    mask = np.ones(relation.num_rows, dtype=bool)
    for expression in filters:
        mask &= filter_mask(
            relation, expression, dictionary, _absence_aware_leaf
        )
        if not mask.any():
            break
    return mask


def left_outer_extend(
    left: Relation,
    parts: list[Relation],
    filters: tuple[FilterExpr, ...],
    dictionary,
) -> Relation:
    """Left-outer join ``left`` with the union of ``parts``.

    Implements SPARQL's *compatibility* join: two solutions are
    compatible when every variable bound in both agrees, and a shared
    variable the left row leaves *unbound* (NULL padding from an earlier
    OPTIONAL that did not match) is compatible with anything — the
    merged row adopts the right side's binding. Left rows are therefore
    grouped by which shared keys they leave NULL, and each group joins
    on its actually-bound keys only. (The right side never carries NULL:
    extension parts are conjunctive results. A genuine data key can
    never collide with :data:`NULL_KEY` — the dictionary allocates keys
    densely from zero.)

    ``filters`` are the OPTIONAL group's own FILTERs: evaluated on the
    *extended* rows (they may reference left variables, per SPARQL);
    rows whose every extension fails them fall back to NULL padding.
    """
    right = parts[0]
    for part in parts[1:]:
        right = right.concat(part)
    if len(parts) > 1:
        right = right.distinct()
    shared = [a for a in left.attributes if a in right.attributes]
    nullable = (
        [a for a in shared if bool((left.column(a) == NULL_KEY).any())]
        if left.num_rows
        else []
    )
    right_only = [
        a for a in right.attributes if a not in left.attributes
    ]
    if not right_only and not nullable:
        # The extension binds nothing new for any row: it can never
        # remove rows (left joins only extend), so the block rows are
        # unchanged.
        return left
    out_attrs = list(left.attributes) + right_only
    if left.num_rows == 0 or right.num_rows == 0:
        return Relation(
            left.name,
            out_attrs,
            list(left.columns) + _pad_columns(left.num_rows, len(right_only)),
        )
    if not nullable:
        return _extend_group(
            left, right, shared, right_only, frozenset(), filters, dictionary
        )
    # Group rows by their NULL pattern over the nullable shared keys.
    null_bits = np.zeros(left.num_rows, dtype=np.int64)
    for bit, attr in enumerate(nullable):
        null_bits |= (left.column(attr) == NULL_KEY).astype(np.int64) << bit
    pieces: list[Relation] = []
    for pattern in np.unique(null_bits):
        group = left.filter(null_bits == pattern)
        unbound = frozenset(
            attr
            for bit, attr in enumerate(nullable)
            if (int(pattern) >> bit) & 1
        )
        keys = [a for a in shared if a not in unbound]
        pieces.append(
            _extend_group(
                group, right, keys, right_only, unbound, filters, dictionary
            )
        )
    result = pieces[0]
    for piece in pieces[1:]:
        result = result.concat(piece)
    return result


def _extend_group(
    left: Relation,
    right: Relation,
    keys: list[str],
    right_only: list[str],
    unbound: frozenset[str],
    filters: tuple[FilterExpr, ...],
    dictionary,
) -> Relation:
    """Left-outer extend one NULL-pattern group of rows.

    ``keys`` are the shared attributes this group actually binds;
    ``unbound`` are the shared attributes it leaves NULL, whose merged
    values come from the right side (every right match extends the row
    once, per compatibility semantics). Unmatched rows keep their NULL.
    """
    out_attrs = list(left.attributes) + right_only
    if keys:
        left_idx, right_idx = join_indices(left, right, keys)
    else:
        left_idx = np.repeat(
            np.arange(left.num_rows, dtype=np.int64), right.num_rows
        )
        right_idx = np.tile(
            np.arange(right.num_rows, dtype=np.int64), left.num_rows
        )
    joined = Relation(
        left.name,
        out_attrs,
        [
            right.column(a)[right_idx]
            if a in unbound
            else left.column(a)[left_idx]
            for a in left.attributes
        ]
        + [right.column(a)[right_idx] for a in right_only],
    )
    if filters:
        mask = _filter_mask(joined, filters, dictionary)
        joined = joined.filter(mask)
        left_idx = left_idx[mask]
    matched = np.zeros(left.num_rows, dtype=bool)
    matched[left_idx] = True
    unmatched = left.filter(~matched)
    padded = Relation(
        left.name,
        out_attrs,
        list(unmatched.columns)
        + _pad_columns(unmatched.num_rows, len(right_only)),
    )
    return joined.concat(padded)


# ---------------------------------------------------------------------------
# Union assembly
# ---------------------------------------------------------------------------
def _align(relation: Relation, names: list[str], name: str) -> Relation:
    """Project onto ``names``, padding never-bound columns with NULL."""
    columns = [
        relation.column(n)
        if n in relation.attributes
        else np.full(relation.num_rows, NULL_KEY, dtype=np.uint32)
        for n in names
    ]
    return Relation(name, names, columns)


def execute_block(
    bound: BoundUnion,
    block: BoundBlock,
    index: int,
    execute: ExecuteFn,
    dictionary,
) -> Relation:
    """One branch's rows, aligned onto the union's projection."""
    names = [v.name for v in bound.projection]
    result = execute(required_query(bound, block, index))
    for j, optional in enumerate(block.optionals):
        parts = [
            execute(query)
            for query in optional_queries(bound, block, optional, index, j)
        ]
        result = left_outer_extend(
            result, parts, optional.filters, dictionary
        )
    if block.filters:
        mask = _filter_mask(result, block.filters, dictionary)
        result = result.filter(mask)
    return _align(result, names, bound.name)


def execute_union(
    bound: BoundUnion, execute: ExecuteFn, dictionary
) -> Relation:
    """Evaluate a bound multi-block query through a conjunctive executor.

    ``execute`` is an engine's ``_execute_bound``: it receives
    filter-free, modifier-free conjunctive queries with encoded
    constants and returns deduplicated projected rows.
    """
    cap = branch_row_cap(bound)
    result: Relation | None = None
    for index, block in enumerate(bound.blocks):
        branch = execute_block(bound, block, index, execute, dictionary)
        if cap is not None and branch.num_rows > cap:
            # Per-branch LIMIT pushdown: only a branch's first `cap`
            # canonical rows can survive the merge's final slice.
            branch = branch.distinct().head(cap)
        result = branch if result is None else result.concat(branch)
    assert result is not None  # BoundUnion guarantees >= 1 block
    result = result.distinct()
    result = apply_order(result, bound.order_by, dictionary)
    result = apply_slice(result, bound.offset, bound.limit)
    return result.rename(name=bound.name)


# ---------------------------------------------------------------------------
# Streaming union assembly
# ---------------------------------------------------------------------------
def _branch_chunk_stream(
    stream: Iterator[Relation], names: list[str], name: str, cap: int
) -> Iterator[Relation]:
    """Align a branch's streamed chunks onto the union projection and
    stop the producer after ``cap`` rows (closing it on early exit)."""

    def run() -> Iterator[Relation]:
        taken = 0
        try:
            for chunk in stream:
                if chunk.num_rows == 0:
                    continue
                aligned = _align(chunk, names, name)
                if taken + aligned.num_rows > cap:
                    aligned = aligned.head(cap - taken)
                taken += aligned.num_rows
                yield aligned
                if taken >= cap:
                    break
        finally:
            close = getattr(stream, "close", None)
            if close is not None:
                close()

    return run()


def _chunk_rows(chunks: Iterator[Relation]) -> Iterator[tuple[int, ...]]:
    """Flatten aligned chunks into int row tuples for the heap merge."""
    for chunk in chunks:
        columns = chunk.columns
        for i in range(chunk.num_rows):
            yield tuple(int(column[i]) for column in columns)


def execute_union_iter(
    bound: BoundUnion,
    execute: ExecuteFn,
    execute_iter: Callable[[ConjunctiveQuery], Iterator[Relation] | None],
    dictionary,
    page_rows: int = 1024,
) -> Iterator[Relation] | None:
    """Stream a bound multi-block query as sliced result pages, or
    return ``None`` when only the materializing path applies.

    Streaming requires a LIMIT and no ORDER BY — then the merged result
    is a prefix in canonical lexicographic order (:func:`branch_row_cap`)
    and a k-way heap merge over canonically-sorted branch streams can
    deduplicate across branches and stop at ``offset + limit`` distinct
    rows. Branches whose rows nothing can drop or reorder (no filters,
    no optionals) are consumed through the engine's streaming hook
    (``execute_iter``, which may decline with ``None``); other branches
    materialize eagerly at call time, which both preserves the
    materialized path's snapshot semantics and costs no more than it.
    """
    if bound.limit is None or bound.order_by:
        return None
    names = [v.name for v in bound.projection]
    cap = bound.offset + bound.limit
    sources: list[Iterator[Relation]] = []
    for index, block in enumerate(bound.blocks):
        stream = None
        if not block.filters and not block.optionals:
            stream = execute_iter(required_query(bound, block, index))
        if stream is not None:
            sources.append(_branch_chunk_stream(stream, names, bound.name, cap))
        else:
            branch = execute_block(bound, block, index, execute, dictionary)
            branch = branch.distinct().head(cap)
            sources.append(iter([branch]))

    def run() -> Iterator[Relation]:
        merged = heapq.merge(*(_chunk_rows(source) for source in sources))
        rows: list[tuple[int, ...]] = []
        previous: tuple[int, ...] | None = None
        seen = 0
        emitted = 0
        yielded = False
        try:
            for row in merged:
                if row == previous:
                    continue  # cross-branch duplicate
                previous = row
                seen += 1
                if seen <= bound.offset:
                    continue
                rows.append(row)
                emitted += 1
                if len(rows) >= page_rows:
                    yield Relation.from_rows(bound.name, names, rows)
                    yielded = True
                    rows = []
                if emitted >= bound.limit:
                    break
        finally:
            for source in sources:
                close = getattr(source, "close", None)
                if close is not None:
                    close()
        if rows or not yielded:
            yield Relation.from_rows(bound.name, names, rows)

    return run()


__all__ = [
    "block_queries",
    "branch_row_cap",
    "execute_block",
    "execute_union",
    "execute_union_iter",
    "left_outer_extend",
    "optional_queries",
    "required_query",
]
