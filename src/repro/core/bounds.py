"""Pessimistic cardinality bounds driving the attach-order search.

The paper's +Attribute heuristic promotes "attributes with selections or
small initial cardinalities"; under skew a distinct count is the wrong
signal (a celebrity value binds 100k rows, the median value 5). This
module replaces the single small-cardinality threshold with an
upper-bound-driven search in the UES style: every candidate attach
order is scored by the sum over its prefixes of a *product of frequency
bounds* on the intermediate frontier, and the minimum-bound order wins.

For a variable ``v`` extended after the set ``B`` of already-bound
variables, each atom covering ``v`` yields an upper bound on how many
``v`` values one bound prefix tuple can fan out to:

* a selection on ``v`` binds it outright → 1;
* a co-occurring *selected* variable ``u = val`` caps the atom's
  contribution at the sketched frequency ``count(val)`` of that value —
  this is where skew awareness pays: a cold value caps the frontier at
  a handful of rows, a hot value honestly reports its 100k;
* a co-occurring already-bound variable ``u`` caps it at the atom's
  ``max_count`` over ``u`` (no single ``u`` value fans out further);
* otherwise the atom caps ``v`` at its column's distinct count.

The extension bound is the minimum over covering atoms; products of
extension bounds along a prefix bound the frontier after that prefix
(each is a per-tuple fan-out ceiling), so the scores are true upper
bounds, never underestimates — the pessimistic half of the design.

Ties break toward the GHD's appearance order, which keeps the paper's
BFS order (and the pipelining prefix property it tends to satisfy)
whenever the statistics see no difference.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.attribute_order import appearance_order
from repro.core.ghd import GHD
from repro.core.query import NormalizedQuery, Variable
from repro.core.sketch import FrequencySketch, TableSketches

#: Permutations are scored exhaustively up to this many unselected
#: variables (7! = 5040 candidate orders, scored once per cached plan);
#: beyond it a greedy min-extension-bound construction takes over.
MAX_EXHAUSTIVE_VARS = 7

#: Extension bound used when no sketch covers a variable at all.
_UNKNOWN = 1 << 62


def atom_sketch(
    sketches: TableSketches, relation: str, position: int
) -> FrequencySketch | None:
    """The sketch backing column ``position`` of ``relation``.

    Per-table sketch dicts preserve the stored column order, so the
    positional lookup needs no catalog. Derived relations (repeated
    variables) have no sketches and resolve to ``None``.
    """
    table = sketches.get(relation)
    if table is None:
        return None
    columns = list(table.values())
    if position >= len(columns):
        return None
    return columns[position]


def selection_counts(
    query: NormalizedQuery, sketches: TableSketches
) -> dict[Variable, int]:
    """Sketched row frequency of each selection's bound value.

    The minimum across covering atoms (any one atom's rows cap the
    matches). Variables no sketch covers are omitted — callers treat
    them as unknown rather than guessing.
    """
    counts: dict[Variable, int] = {}
    for atom in query.atoms:
        for position, var in enumerate(atom.variables):
            value = query.selections.get(var)
            if value is None:
                continue
            sketch = atom_sketch(sketches, atom.relation, position)
            if sketch is None:
                continue
            count = sketch.count(value)
            current = counts.get(var)
            if current is None or count < current:
                counts[var] = count
    return counts


def value_class(
    counts: dict[Variable, int], factor: float
) -> tuple[tuple[str, int], ...]:
    """A hashable selectivity class for a set of bound values.

    Each sketched count maps to its logarithmic bucket in base
    ``factor``, so all values within one ``factor`` of each other share
    a class (and therefore a cached plan).
    """
    buckets = []
    for var in sorted(counts, key=lambda v: v.name):
        count = counts[var]
        bucket = 0
        while count >= factor**(bucket + 1):
            bucket += 1
        buckets.append((var.name, bucket))
    return tuple(buckets)


def counts_diverge(
    assumed: dict[Variable, int],
    current: dict[Variable, int],
    factor: float,
) -> bool:
    """Whether any bound value's frequency left the cached plan's
    assumption by more than ``factor`` (in either direction).

    Add-one smoothing keeps zero counts comparable: 0 vs 5 diverges at
    factor 8 only once the hot side reaches 7, matching the bucketing.
    """
    for var, count in current.items():
        anchor = assumed.get(var)
        if anchor is None:
            return True
        low, high = sorted((anchor + 1, count + 1))
        if high >= low * factor:
            return True
    return False


class _BoundModel:
    """Extension-bound oracle for one query over one sketch registry."""

    def __init__(
        self, query: NormalizedQuery, sketches: TableSketches
    ) -> None:
        self.query = query
        self.sketches = sketches
        #: (atom index, position) pairs covering each variable.
        self.occurrences: dict[Variable, list[tuple[int, int]]] = {}
        for index, atom in enumerate(query.atoms):
            for position, var in enumerate(atom.variables):
                self.occurrences.setdefault(var, []).append(
                    (index, position)
                )
        self._cache: dict[tuple[Variable, frozenset[Variable]], int] = {}

    def extension_bound(
        self, var: Variable, bound: frozenset[Variable]
    ) -> int:
        """Max values of ``var`` one tuple over ``bound`` extends to."""
        if var in self.query.selections:
            return 1
        relevant = bound & self._covars(var)
        key = (var, relevant)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        best = _UNKNOWN
        for atom_index, position in self.occurrences[var]:
            atom = self.query.atoms[atom_index]
            own = atom_sketch(self.sketches, atom.relation, position)
            candidate = own.distinct if own is not None else _UNKNOWN
            for other_position, other in enumerate(atom.variables):
                if other is var or other == var:
                    continue
                sketch = atom_sketch(
                    self.sketches, atom.relation, other_position
                )
                if sketch is None:
                    continue
                value = self.query.selections.get(other)
                if value is not None:
                    candidate = min(candidate, sketch.count(value))
                elif other in relevant:
                    candidate = min(candidate, sketch.max_count)
            best = min(best, candidate)
        self._cache[key] = best
        return best

    def _covars(self, var: Variable) -> frozenset[Variable]:
        out: set[Variable] = set()
        for atom_index, _ in self.occurrences[var]:
            out.update(self.query.atoms[atom_index].variables)
        out.discard(var)
        return frozenset(out)

    def score(self, order: list[Variable]) -> int:
        """Sum of frontier bounds over the order's prefixes."""
        bound: set[Variable] = set(self.query.selections)
        frontier = 1
        total = 0
        for var in order:
            extension = self.extension_bound(var, frozenset(bound))
            frontier = min(frontier * extension, _UNKNOWN)
            total += frontier
            bound.add(var)
        return total


def bound_attribute_order(
    query: NormalizedQuery,
    ghd: GHD,
    sketches: TableSketches,
) -> tuple[list[Variable], dict[Variable, int]]:
    """The minimum-bound attach order plus its per-variable bounds.

    Selections stay in front (in appearance order — probing a trie for
    a constant before enumerating anything is always right); the
    unselected variables are ordered by exhaustive scoring up to
    :data:`MAX_EXHAUSTIVE_VARS`, greedily beyond.
    """
    base = appearance_order(query, ghd)
    selected = [v for v in base if v in query.selections]
    unselected = [v for v in base if v not in query.selections]
    model = _BoundModel(query, sketches)
    if len(unselected) <= 1:
        chosen = unselected
    elif len(unselected) <= MAX_EXHAUSTIVE_VARS:
        best_score: int | None = None
        chosen = unselected
        # permutations() of the appearance-ordered list emits candidates
        # in appearance-lexicographic order, so strict `<` makes ties
        # resolve toward the paper's BFS order.
        for candidate in permutations(unselected):
            score = model.score(list(candidate))
            if best_score is None or score < best_score:
                best_score = score
                chosen = list(candidate)
    else:
        remaining = list(unselected)
        bound: set[Variable] = set(selected)
        chosen = []
        while remaining:
            next_var = min(
                remaining,
                key=lambda v: (
                    model.extension_bound(v, frozenset(bound)),
                    base.index(v),
                ),
            )
            remaining.remove(next_var)
            chosen.append(next_var)
            bound.add(next_var)

    order = selected + chosen
    bounds: dict[Variable, int] = {}
    running: set[Variable] = set()
    for var in order:
        bounds[var] = min(
            model.extension_bound(var, frozenset(running)), _UNKNOWN
        )
        running.add(var)
    return order, bounds
