"""Query planner: query -> (GHD, global attribute order, pipelining).

Ties together the GHD optimizer, the attribute-order heuristics, and the
pipelineability rule (Definition 2) under one :class:`OptimizationConfig`.
The resulting :class:`Plan` is interpreted by
:class:`~repro.core.executor.GHDExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.attribute_order import (
    global_attribute_order,
    node_attribute_order,
)
from repro.core.bounds import bound_attribute_order, selection_counts
from repro.core.config import OptimizationConfig
from repro.core.ghd import GHD
from repro.core.ghd_optimizer import GHDOptimizer
from repro.core.hypergraph import Hypergraph
from repro.core.query import (
    ConjunctiveQuery,
    NormalizedQuery,
    Variable,
    normalize,
)
from repro.core.statistics import (
    TableSketches,
    estimate_variable_cardinalities,
)
from repro.storage.catalog import Catalog


@dataclass
class Plan:
    """An executable GHD plan."""

    query: NormalizedQuery
    ghd: GHD
    global_order: list[Variable]
    node_orders: dict[int, list[Variable]] = field(default_factory=dict)
    pipelined_child: int | None = None
    width: float = 0.0
    cardinalities: dict[Variable, int] = field(default_factory=dict)
    config: OptimizationConfig = field(default_factory=OptimizationConfig)
    #: Per-variable pessimistic extension bounds under ``global_order``
    #: (empty when the bound-driven order search did not run).
    bounds: dict[Variable, int] = field(default_factory=dict)
    #: Sketched frequency of each selection value at plan time — the
    #: selectivity assumption per-value re-optimization checks against.
    assumed_counts: dict[Variable, int] = field(default_factory=dict)

    def unselected_node_order(self, node_id: int) -> list[Variable]:
        """A node's attribute order without its selection variables."""
        return [
            v
            for v in self.node_orders[node_id]
            if v not in self.query.selections
        ]

    def explain(self) -> str:
        """Human-readable plan description (for docs and debugging)."""
        lines = [f"plan for {self.query.name}"]
        lines.append(
            "global order: ["
            + ", ".join(v.name for v in self.global_order)
            + "]"
        )
        lines.append(f"width: {self.width:.2f}")
        if self.bounds:
            lines.append(
                "bounds: "
                + "  ".join(
                    f"{v.name}<={'?' if bound >= 1 << 62 else bound}"
                    for v, bound in (
                        (v, self.bounds[v])
                        for v in self.global_order
                        if v in self.bounds
                    )
                )
            )
        if self.query.limit is not None or self.query.offset:
            limit = "-" if self.query.limit is None else self.query.limit
            lines.append(f"limit: {limit} offset: {self.query.offset}")
        if self.pipelined_child is not None:
            lines.append(f"pipelined child: node {self.pipelined_child}")

        def render(node_id: int, indent: int) -> None:
            node = self.ghd.node(node_id)
            order = ", ".join(v.name for v in self.node_orders[node_id])
            atoms = ", ".join(
                repr(self.query.atoms[i]) for i in node.atom_indices
            )
            lines.append("  " * indent + f"node {node_id} [{order}]: {atoms}")
            for child in node.children:
                render(child, indent + 1)

        render(self.ghd.root, 0)
        return "\n".join(lines)


class Planner:
    """Produces :class:`Plan`s according to an optimization config."""

    def __init__(
        self,
        catalog: Catalog,
        config: OptimizationConfig | None = None,
        sketches: TableSketches | None = None,
    ) -> None:
        self.catalog = catalog
        self.config = config if config is not None else OptimizationConfig()
        self.sketches = sketches
        self._ghd_optimizer = GHDOptimizer(self.config)

    def plan(self, query: ConjunctiveQuery | NormalizedQuery) -> Plan:
        """Plan a query whose constants are already dictionary-encoded."""
        if isinstance(query, ConjunctiveQuery):
            normalized = normalize(query)
        else:
            normalized = query
        hypergraph = Hypergraph.from_query(normalized)
        ghd = self._ghd_optimizer.decompose(normalized, hypergraph)
        cardinalities: dict[Variable, int] = {}
        if self.config.reorder_selections:
            cardinalities = estimate_variable_cardinalities(
                normalized, self.catalog
            )
        bounds: dict[Variable, int] = {}
        assumed: dict[Variable, int] = {}
        if (
            self.config.reorder_selections
            and self.config.bound_orders
            and self.sketches
        ):
            order, bounds = bound_attribute_order(
                normalized, ghd, self.sketches
            )
            assumed = selection_counts(normalized, self.sketches)
        else:
            order = global_attribute_order(
                normalized,
                ghd,
                reorder_selections=self.config.reorder_selections,
                cardinalities=cardinalities or None,
            )
        node_orders = {
            node.node_id: node_attribute_order(node.chi, order)
            for node in ghd.nodes
        }
        plan = Plan(
            query=normalized,
            ghd=ghd,
            global_order=order,
            node_orders=node_orders,
            width=ghd.width(hypergraph),
            cardinalities=cardinalities,
            config=self.config,
            bounds=bounds,
            assumed_counts=assumed,
        )
        if self.config.pipelining:
            plan.pipelined_child = self._choose_pipelined_child(plan)
        return plan

    def _choose_pipelined_child(self, plan: Plan) -> int | None:
        """Definition 2: the root can fuse with one child when their
        shared attributes are a prefix of both nodes' trie orders."""
        root = plan.ghd.root_node
        if not root.children:
            return None
        root_order = plan.unselected_node_order(root.node_id)
        best: tuple[int, int] | None = None
        for child_id in root.children:
            child_order = plan.unselected_node_order(child_id)
            shared = [v for v in root_order if v in set(child_order)]
            if not shared:
                continue
            k = len(shared)
            if root_order[:k] != shared or child_order[:k] != shared:
                continue
            # Prefer the child with the largest subtree: fusing it avoids
            # the biggest materialization.
            subtree = self._subtree_size(plan.ghd, child_id)
            if best is None or subtree > best[0]:
                best = (subtree, child_id)
        return best[1] if best else None

    @staticmethod
    def _subtree_size(ghd: GHD, node_id: int) -> int:
        total = 0
        stack = [node_id]
        while stack:
            node = ghd.node(stack.pop())
            total += len(node.atom_indices)
            stack.extend(node.children)
        return total
