"""The AGM bound and fractional edge covers (Section II-B).

The AGM bound upper-bounds a join's output size by
``prod_e |R_e| ** x_e`` where ``x`` is a fractional edge cover of the
query's vertices. The tightest bound minimizes the product — a linear
program after taking logs. With unit edge costs the same LP computes the
*fractional edge cover number* rho*, which gives GHD widths: the width of
a node t is the cover number of chi(t) using the node's own edges lambda(t),
and the fractional hypertree width (fhw) is the minimum over GHDs of the
maximum node width. The paper reports fhw = 1.5 for LUBM query 2 — the
triangle's classic bound.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np
from scipy.optimize import linprog

from repro.core.hypergraph import Hyperedge
from repro.core.query import Variable
from repro.errors import PlanningError


def fractional_edge_cover(
    vertices: Iterable[Variable],
    edges: Sequence[Hyperedge],
    costs: Sequence[float] | None = None,
) -> tuple[dict[int, float], float]:
    """Solve ``min sum_e cost_e * x_e`` s.t. every vertex is covered.

    ``costs`` defaults to all ones (the rho* LP). Returns the weight per
    edge (keyed by position in ``edges``) and the objective value. Raises
    :class:`PlanningError` when some vertex is not covered by any edge.
    """
    targets = [v for v in vertices]
    if not targets:
        return {}, 0.0
    if not edges:
        raise PlanningError("no edges available to cover vertices")
    if costs is None:
        costs = [1.0] * len(edges)
    if len(costs) != len(edges):
        raise PlanningError("one cost per edge required")

    # linprog solves min c.x with A_ub x <= b_ub; coverage is
    # sum_{e contains v} x_e >= 1, i.e. -sum x_e <= -1.
    n_edges = len(edges)
    rows = []
    for vertex in targets:
        row = np.zeros(n_edges)
        covered = False
        for j, edge in enumerate(edges):
            if vertex in edge.vertices:
                row[j] = -1.0
                covered = True
        if not covered:
            raise PlanningError(
                f"vertex {vertex!r} is not covered by any available edge"
            )
        rows.append(row)
    result = linprog(
        c=np.asarray(costs, dtype=float),
        A_ub=np.asarray(rows),
        b_ub=np.full(len(rows), -1.0),
        bounds=[(0.0, None)] * n_edges,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible here
        raise PlanningError(f"edge-cover LP failed: {result.message}")
    weights = {j: float(w) for j, w in enumerate(result.x)}
    return weights, float(result.fun)


def cover_number(
    vertices: Iterable[Variable], edges: Sequence[Hyperedge]
) -> float:
    """The fractional edge cover number rho* of ``vertices`` via ``edges``."""
    _, value = fractional_edge_cover(vertices, edges)
    return value


def agm_bound(
    edges: Sequence[Hyperedge],
    edge_sizes: Mapping[int, int],
    vertices: Iterable[Variable] | None = None,
) -> float:
    """The tightest AGM output-size bound ``prod |R_e| ** x_e``.

    ``edge_sizes`` maps edge *positions* to relation cardinalities.
    ``vertices`` defaults to the union of all edge vertices.
    """
    if vertices is None:
        all_vertices: set[Variable] = set()
        for edge in edges:
            all_vertices.update(edge.vertices)
        vertices = all_vertices
    log_sizes = []
    for j in range(len(edges)):
        size = edge_sizes[j]
        # An empty relation makes the join empty; the bound is 0.
        if size == 0:
            return 0.0
        log_sizes.append(math.log(size))
    weights, objective = fractional_edge_cover(vertices, edges, log_sizes)
    del weights
    return math.exp(objective)
