"""The global attribute order (Sections II-C and III-B1).

"We choose the global attribute order by doing a breadth-first traversal
of the GHD: attributes seen earlier in the traversal are earlier in the
order." The order determines both the level order of every trie and the
order in which Algorithm 1 binds attributes.

The +Attribute optimization ("pushing down selections within a node")
additionally forces selection attributes to the front — Example 1 in the
paper shows why: with order ``[x, a]`` the engine probes the second trie
level for *every* x, while ``[a, x]`` is one probe followed by returning
the second level wholesale.
"""

from __future__ import annotations

from repro.core.ghd import GHD
from repro.core.query import NormalizedQuery, Variable


def appearance_order(query: NormalizedQuery, ghd: GHD) -> list[Variable]:
    """BFS-of-GHD attribute order without any selection heuristic.

    Within a node, variables appear in the order they occur scanning the
    node's atoms as written in the query.
    """
    order: list[Variable] = []
    seen: set[Variable] = set()
    for node in ghd.bfs_order():
        for atom_index in node.atom_indices:
            for var in query.atoms[atom_index].variables:
                if var in node.chi and var not in seen:
                    seen.add(var)
                    order.append(var)
    # Defensive: include any chi-only variables (cannot happen for GHDs
    # built by our optimizer, where chi = union of lambda's vertices).
    for node in ghd.bfs_order():
        for var in sorted(node.chi):
            if var not in seen:
                seen.add(var)
                order.append(var)
    return order


SMALL_CARDINALITY_THRESHOLD = 8
"""Unselected attributes whose post-selection cardinality estimate is at
most this are promoted ahead of the BFS order ("small initial
cardinalities", Section III-B1). The constant is deliberately small: it
should catch attributes pinned down by a neighbouring selection (LUBM
query 7's ``y`` — the couple of courses one professor teaches) without
reshuffling moderately sized attributes, which would break pipelining's
shared-prefix condition on queries like LUBM 8."""


def global_attribute_order(
    query: NormalizedQuery,
    ghd: GHD,
    *,
    reorder_selections: bool,
    cardinalities: dict[Variable, int] | None = None,
    small_threshold: int = SMALL_CARDINALITY_THRESHOLD,
) -> list[Variable]:
    """The global attribute order, optionally with selections first.

    With ``reorder_selections`` (the paper's +Attribute optimization):

    * selection variables move, stably, to the front of the order;
    * unselected variables with a cardinality estimate at most
      ``small_threshold`` are promoted next, smallest first.

    For LUBM query 2 this yields ``[a, b, c, x, y, z]`` as reported in
    Section III-B1.
    """
    base = appearance_order(query, ghd)
    if not reorder_selections:
        return base
    selected = [v for v in base if v in query.selections]
    unselected = [v for v in base if v not in query.selections]
    if cardinalities:
        small = [
            v
            for v in unselected
            if cardinalities.get(v, 1 << 62) <= small_threshold
        ]
        small.sort(key=lambda v: cardinalities[v])
        rest = [v for v in unselected if v not in set(small)]
        unselected = small + rest
    return selected + unselected


def node_attribute_order(
    node_chi: frozenset[Variable], global_order: list[Variable]
) -> list[Variable]:
    """The global order restricted to one node's chi."""
    return [v for v in global_order if v in node_chi]
