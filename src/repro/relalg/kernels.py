"""Vectorized join kernels over :class:`~repro.storage.relation.Relation`.

The many-to-many natural join is fully vectorized: composite keys are
reduced to dense group ids, both sides are sorted by group, and matching
groups emit their cross products through ``np.repeat`` index arithmetic —
no Python-level loop over rows or groups.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ExecutionError
from repro.nputil import grouped_ranges as _grouped_ranges_impl
from repro.storage.relation import Relation


def _composite_group_ids(
    left_keys: list[np.ndarray], right_keys: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Dense ids such that rows agree on all keys iff ids are equal."""
    n_left = left_keys[0].shape[0]
    ids_left = np.zeros(n_left, dtype=np.int64)
    ids_right = np.zeros(right_keys[0].shape[0], dtype=np.int64)
    for left_col, right_col in zip(left_keys, right_keys):
        combined = np.concatenate([left_col, right_col])
        _, inverse = np.unique(combined, return_inverse=True)
        col_ids_left = inverse[:n_left]
        col_ids_right = inverse[n_left:]
        # Fold this column into the running composite id.
        width = int(inverse.max()) + 1 if inverse.size else 1
        ids_left = ids_left * width + col_ids_left
        ids_right = ids_right * width + col_ids_right
        # Re-densify to avoid overflow across many key columns.
        combined_ids = np.concatenate([ids_left, ids_right])
        _, inverse2 = np.unique(combined_ids, return_inverse=True)
        ids_left = inverse2[:n_left]
        ids_right = inverse2[n_left:]
    return ids_left, ids_right


def _grouped_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``range(start, start+count)`` per group, vectorized."""
    return _grouped_ranges_impl(starts, counts)


JOIN_ASYMMETRY = 16
"""When one side is this much larger, semijoin-prefilter it first — the
in-memory analogue of driving a merge join from the smaller sorted index."""


def join_indices(
    left: Relation, right: Relation, keys: list[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Row-index pairs joining ``left`` and ``right`` on ``keys``."""
    left_map: np.ndarray | None = None
    right_map: np.ndarray | None = None
    if len(keys) == 1 and left.num_rows > 0 and right.num_rows > 0:
        left_col = left.column(keys[0])
        right_col = right.column(keys[0])
        if left_col.size > JOIN_ASYMMETRY * right_col.size:
            left_map = np.flatnonzero(np.isin(left_col, right_col))
            left = left.take(left_map)
        elif right_col.size > JOIN_ASYMMETRY * left_col.size:
            right_map = np.flatnonzero(np.isin(right_col, left_col))
            right = right.take(right_map)
    left_idx, right_idx = _join_indices_general(left, right, keys)
    if left_map is not None:
        left_idx = left_map[left_idx]
    if right_map is not None:
        right_idx = right_map[right_idx]
    return left_idx, right_idx


def _join_indices_general(
    left: Relation, right: Relation, keys: list[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Sort-based many-to-many join over composite keys."""
    left_keys = [left.column(k) for k in keys]
    right_keys = [right.column(k) for k in keys]
    ids_left, ids_right = _composite_group_ids(left_keys, right_keys)

    order_left = np.argsort(ids_left, kind="stable")
    order_right = np.argsort(ids_right, kind="stable")
    sorted_left = ids_left[order_left]
    sorted_right = ids_right[order_right]

    common = np.intersect1d(sorted_left, sorted_right)
    if common.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    left_starts = np.searchsorted(sorted_left, common, side="left")
    left_ends = np.searchsorted(sorted_left, common, side="right")
    right_starts = np.searchsorted(sorted_right, common, side="left")
    right_ends = np.searchsorted(sorted_right, common, side="right")
    left_counts = left_ends - left_starts
    right_counts = right_ends - right_starts

    out_sizes = left_counts * right_counts
    total = int(out_sizes.sum())
    if total == 0:  # pragma: no cover - counts are always >= 1 here
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    # Left side: each left row of a group repeats right_count times.
    left_positions = _grouped_ranges(left_starts, left_counts)
    per_left_repeat = np.repeat(right_counts, left_counts)
    left_idx = np.repeat(left_positions, per_left_repeat)

    # Right side: within a group, output row r maps to right row r % n_b.
    group_out_offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(out_sizes)[:-1]]
    )
    local = np.arange(total, dtype=np.int64) - np.repeat(
        group_out_offsets, out_sizes
    )
    right_idx = np.repeat(right_starts, out_sizes) + local % np.repeat(
        right_counts, out_sizes
    )

    return order_left[left_idx], order_right[right_idx]


def natural_join(
    left: Relation, right: Relation, name: str | None = None
) -> Relation:
    """Natural join on all same-named attributes (vectorized).

    Raises :class:`ExecutionError` when the relations share no attribute —
    pairwise planners avoid cross products explicitly, so reaching one
    indicates a planner bug (use :func:`cross_product` deliberately).
    """
    keys = [a for a in left.attributes if a in right.attributes]
    if not keys:
        raise ExecutionError(
            f"natural_join of {left.name!r} and {right.name!r} would be a "
            "cross product; use cross_product() explicitly"
        )
    left_idx, right_idx = join_indices(left, right, keys)
    out_attrs = list(left.attributes) + [
        a for a in right.attributes if a not in left.attributes
    ]
    columns = [left.column(a)[left_idx] for a in left.attributes] + [
        right.column(a)[right_idx]
        for a in right.attributes
        if a not in left.attributes
    ]
    return Relation(name or f"({left.name}*{right.name})", out_attrs, columns)


def semijoin(left: Relation, right: Relation) -> Relation:
    """Rows of ``left`` with a same-named-key match in ``right``."""
    keys = [a for a in left.attributes if a in right.attributes]
    if not keys:
        return left
    left_keys = [left.column(k) for k in keys]
    right_keys = [right.column(k) for k in keys]
    ids_left, ids_right = _composite_group_ids(left_keys, right_keys)
    matches = np.isin(ids_left, np.unique(ids_right))
    return left.filter(matches)


def cross_product(
    left: Relation, right: Relation, name: str | None = None
) -> Relation:
    """Explicit cartesian product (disconnected query components)."""
    n_left, n_right = left.num_rows, right.num_rows
    left_idx = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
    right_idx = np.tile(np.arange(n_right, dtype=np.int64), n_left)
    out_attrs = list(left.attributes) + [
        a for a in right.attributes if a not in left.attributes
    ]
    if any(a in left.attributes for a in right.attributes):
        raise ExecutionError("cross_product with overlapping attributes")
    columns = [left.column(a)[left_idx] for a in left.attributes] + [
        right.column(a)[right_idx] for a in right.attributes
    ]
    return Relation(name or f"({left.name}x{right.name})", out_attrs, columns)
