"""Selinger-style dynamic-programming join ordering.

This is the optimizer the paper calls out as asymptotically suboptimal on
cyclic queries: it only considers *pairwise* plans. We implement the
classic left-deep dynamic program over relation subsets with the
System R cost model (sum of estimated intermediate result sizes),
avoiding cross products whenever a connected order exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanningError
from repro.relalg.estimates import EstimatedRelation


@dataclass(frozen=True)
class JoinTree:
    """A left-deep join order: leaf index or (left subtree, leaf index)."""

    order: tuple[int, ...]
    estimated_cost: float
    estimated_rows: float


def selinger_join_order(inputs: list[EstimatedRelation]) -> JoinTree:
    """Optimal left-deep order under the estimate model.

    ``inputs`` are the (already selection-filtered) estimated relations.
    Returns the join order as input indices, cheapest first.
    """
    n = len(inputs)
    if n == 0:
        raise PlanningError("no relations to order")
    if n == 1:
        return JoinTree((0,), 0.0, inputs[0].rows)

    # dp maps a frozenset of input indices to (cost, order, estimate).
    dp: dict[frozenset[int], tuple[float, tuple[int, ...], EstimatedRelation]] = {}
    for i, rel in enumerate(inputs):
        dp[frozenset([i])] = (0.0, (i,), rel)

    def connected(est: EstimatedRelation, other: EstimatedRelation) -> bool:
        return any(a in other.attributes for a in est.attributes)

    for size in range(2, n + 1):
        layer: dict[
            frozenset[int], tuple[float, tuple[int, ...], EstimatedRelation]
        ] = {}
        for subset, (cost, order, estimate) in dp.items():
            if len(subset) != size - 1:
                continue
            for j in range(n):
                if j in subset:
                    continue
                joined = estimate.join(inputs[j])
                is_connected = connected(estimate, inputs[j])
                # Penalize cross products so they are only chosen when
                # no connected extension exists.
                step_cost = joined.rows if is_connected else joined.rows * 1e6
                new_cost = cost + step_cost
                key = subset | {j}
                existing = layer.get(key)
                if existing is None or new_cost < existing[0]:
                    layer[key] = (new_cost, order + (j,), joined)
        dp.update(layer)

    cost, order, estimate = dp[frozenset(range(n))]
    return JoinTree(order, cost, estimate.rows)
