"""Textbook cardinality estimation for pairwise join planners.

Uses exact base statistics (row counts and per-column distinct counts —
the moral equivalent of MonetDB's ``ANALYZE`` or RDF-3X's aggregate
indexes) combined with the classic System R uniformity/independence
assumptions for joins:

    |R join S| ~= |R| * |S| / prod_keys max(V(R, k), V(S, k))
"""

from __future__ import annotations

import numpy as np

from repro.storage.relation import Relation


class RelationStatistics:
    """Cached row and distinct counts for one relation."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self.num_rows = relation.num_rows
        self._distinct: dict[str, int] = {}

    def distinct(self, attribute: str) -> int:
        """Number of distinct values in ``attribute`` (cached, exact)."""
        cached = self._distinct.get(attribute)
        if cached is None:
            column = self.relation.column(attribute)
            cached = int(np.unique(column).size) if column.size else 0
            self._distinct[attribute] = cached
        return cached

    def selectivity_equals(self, attribute: str) -> float:
        """Estimated fraction of rows surviving ``attribute = const``."""
        distinct = self.distinct(attribute)
        if distinct == 0:
            return 0.0
        return 1.0 / distinct


def estimate_join_size(
    left_rows: float,
    right_rows: float,
    key_distincts: list[tuple[int, int]],
) -> float:
    """System R join-size estimate over any number of key columns."""
    size = left_rows * right_rows
    for left_distinct, right_distinct in key_distincts:
        denom = max(left_distinct, right_distinct, 1)
        size /= denom
    return size


class EstimatedRelation:
    """A planner-side handle: estimated size plus per-attribute distincts.

    Used for intermediate results during plan search, where only
    estimates (never data) exist.
    """

    def __init__(
        self, attributes: tuple[str, ...], rows: float, distincts: dict[str, float]
    ) -> None:
        self.attributes = attributes
        self.rows = rows
        self.distincts = distincts

    @classmethod
    def from_stats(cls, stats: RelationStatistics) -> "EstimatedRelation":
        return cls(
            attributes=stats.relation.attributes,
            rows=float(stats.num_rows),
            distincts={
                a: float(stats.distinct(a)) for a in stats.relation.attributes
            },
        )

    def join(self, other: "EstimatedRelation") -> "EstimatedRelation":
        keys = [a for a in self.attributes if a in other.attributes]
        size = estimate_join_size(
            self.rows,
            other.rows,
            [
                (int(self.distincts.get(k, 1)), int(other.distincts.get(k, 1)))
                for k in keys
            ],
        )
        attributes = tuple(self.attributes) + tuple(
            a for a in other.attributes if a not in self.attributes
        )
        distincts: dict[str, float] = {}
        for attr in attributes:
            mine = self.distincts.get(attr)
            theirs = other.distincts.get(attr)
            if mine is not None and theirs is not None:
                base = min(mine, theirs)
            else:
                base = mine if mine is not None else (theirs or 1.0)
            distincts[attr] = min(base, size) if size > 0 else 0.0
        return EstimatedRelation(attributes, size, distincts)
