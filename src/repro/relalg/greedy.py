"""Greedy selectivity-first join ordering (TripleBit-style).

TripleBit generates its query plan greedily from selectivity estimates
rather than running a full dynamic program. We start from the most
selective input and repeatedly append the connected input minimizing the
estimated intermediate size.
"""

from __future__ import annotations

from repro.errors import PlanningError
from repro.relalg.estimates import EstimatedRelation
from repro.relalg.selinger import JoinTree


def greedy_join_order(inputs: list[EstimatedRelation]) -> JoinTree:
    """Selectivity-greedy left-deep order."""
    n = len(inputs)
    if n == 0:
        raise PlanningError("no relations to order")
    remaining = set(range(n))
    start = min(remaining, key=lambda i: inputs[i].rows)
    remaining.discard(start)
    order = [start]
    estimate = inputs[start]
    cost = 0.0
    while remaining:
        connected = [
            j
            for j in remaining
            if any(a in estimate.attributes for a in inputs[j].attributes)
        ]
        pool = connected if connected else sorted(remaining)
        best = min(pool, key=lambda j: estimate.join(inputs[j]).rows)
        estimate = estimate.join(inputs[best])
        cost += estimate.rows
        order.append(best)
        remaining.discard(best)
    return JoinTree(tuple(order), cost, estimate.rows)
