"""Vectorized relational-algebra kernels and pairwise join planning.

Shared by (a) the GHD executor's top-down materialization pass and
(b) the pairwise baseline engines (MonetDB-, RDF-3X-, TripleBit-like),
so every engine pays the same per-operator constants and comparisons
reflect algorithmic differences, not implementation skew.
"""

from repro.relalg.estimates import RelationStatistics, estimate_join_size
from repro.relalg.kernels import natural_join, semijoin
from repro.relalg.selinger import JoinTree, selinger_join_order
from repro.relalg.greedy import greedy_join_order

__all__ = [
    "JoinTree",
    "RelationStatistics",
    "estimate_join_size",
    "greedy_join_order",
    "natural_join",
    "selinger_join_order",
    "semijoin",
]
