"""Setuptools shim.

The environment has no ``wheel`` package (offline), so editable installs
must use the legacy path: ``pip install -e . --no-build-isolation
--no-use-pep517``, which requires this file to exist.
"""

from setuptools import setup

setup()
