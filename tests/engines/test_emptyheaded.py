"""EmptyHeaded engine specifics: plan caching, config wiring, explain."""

import pytest

from repro.core.config import OptimizationConfig
from repro.engines.emptyheaded import EmptyHeadedEngine
from tests.util import build_store

TRIPLES = [
    ("<a>", "<p:knows>", "<b>"),
    ("<b>", "<p:knows>", "<c>"),
    ("<c>", "<p:knows>", "<a>"),
    ("<a>", "<p:type>", "<T>"),
    ("<b>", "<p:type>", "<T>"),
    ("<c>", "<p:type>", "<T>"),
]

TRIANGLE = """
SELECT ?x ?y ?z WHERE {
  ?x <p:knows> ?y . ?y <p:knows> ?z . ?z <p:knows> ?x
}
"""


@pytest.fixture(scope="module")
def store():
    return build_store(TRIPLES)


def test_triangle_query(store):
    engine = EmptyHeadedEngine(store)
    result = engine.execute_sparql(TRIANGLE)
    decoded = set(engine.decode(result))
    assert ("<a>", "<b>", "<c>") in decoded
    assert len(decoded) == 3  # three rotations


def test_plan_cache(store):
    engine = EmptyHeadedEngine(store)
    engine.execute_sparql(TRIANGLE)
    assert len(engine._plan_cache) == 1
    engine.execute_sparql(TRIANGLE)
    assert len(engine._plan_cache) == 1


def test_plan_cache_evicts_least_recently_used(store, monkeypatch):
    """The plan cache is LRU-bounded like the SPARQL text cache."""
    engine = EmptyHeadedEngine(store)
    monkeypatch.setattr(engine, "plan_cache_size", 2)
    queries = [
        f"SELECT ?x WHERE {{ ?x <p:knows> ?y }} LIMIT {n}"
        for n in (1, 2, 3)
    ]
    engine.execute_sparql(queries[0])
    engine.execute_sparql(queries[1])
    assert len(engine._plan_cache) == 2
    first = next(iter(engine._plan_cache))
    # Touch the first plan so the *second* becomes least recently used.
    engine.execute_sparql(queries[0])
    engine.execute_sparql(queries[2])
    assert len(engine._plan_cache) == 2
    assert first in engine._plan_cache


def test_plan_cache_eviction_keeps_results_correct(store, monkeypatch):
    engine = EmptyHeadedEngine(store)
    monkeypatch.setattr(engine, "plan_cache_size", 1)
    reference = EmptyHeadedEngine(store)
    queries = [
        TRIANGLE,
        "SELECT ?x WHERE { ?x <p:type> <T> }",
        TRIANGLE,
    ]
    for text in queries:
        assert engine.execute_sparql(text).to_set() == (
            reference.execute_sparql(text).to_set()
        )
        assert len(engine._plan_cache) == 1


def test_explain_sparql(store):
    engine = EmptyHeadedEngine(store)
    text = engine.explain_sparql(TRIANGLE)
    assert "global order" in text
    assert "knows" in text


def test_explain_unknown_constant(store):
    engine = EmptyHeadedEngine(store)
    text = engine.explain_sparql(
        "SELECT ?x WHERE { ?x <p:knows> <nobody> }"
    )
    assert "empty" in text


def test_default_config_all_on(store):
    engine = EmptyHeadedEngine(store)
    assert engine.config == OptimizationConfig.all_on()


def test_custom_config_changes_plans(store):
    full = EmptyHeadedEngine(store)
    single = EmptyHeadedEngine(store, OptimizationConfig.all_off())
    query = """
    SELECT ?x ?y WHERE { ?x <p:knows> ?y . ?x <p:type> <T> }
    """
    full_result = full.execute_sparql(query)
    single_result = single.execute_sparql(query)
    assert full_result.to_set() == single_result.to_set()
    # The single-node engine really plans one node.
    from repro.core.query import bind_constants
    from repro.sparql.parser import parse_sparql
    from repro.sparql.translate import sparql_to_query

    cq = bind_constants(
        sparql_to_query(parse_sparql(query)), store.dictionary
    )
    assert len(single.plan_for(cq).ghd.nodes) == 1
    assert len(full.plan_for(cq).ghd.nodes) == 2


@pytest.mark.parametrize(
    "config",
    [
        OptimizationConfig.all_on(),
        OptimizationConfig.all_off(),
        OptimizationConfig.all_on().but(mixed_layouts=False),
        OptimizationConfig.all_on().but(pipelining=False),
    ],
)
def test_configs_agree_on_triangle(store, config):
    engine = EmptyHeadedEngine(store, config)
    reference = EmptyHeadedEngine(store)
    assert engine.execute_sparql(TRIANGLE).to_set() == reference.execute_sparql(
        TRIANGLE
    ).to_set()
