"""RDF-3X-like and TripleBit-like internals."""

import numpy as np
import pytest

from repro.engines.rdf3x import RDF3XLikeEngine
from repro.engines.triple_index import ALL_PERMUTATIONS, TripleTable
from repro.engines.triplebit import TripleBitLikeEngine, _PredicateMatrix
from repro.errors import StorageError
from repro.storage.relation import Relation
from tests.util import build_store

TRIPLES = [
    ("<s1>", "<p:a>", "<o1>"),
    ("<s1>", "<p:a>", "<o2>"),
    ("<s2>", "<p:a>", "<o1>"),
    ("<s1>", "<p:b>", "<o3>"),
]


@pytest.fixture(scope="module")
def store():
    return build_store(TRIPLES)


@pytest.fixture(scope="module")
def table(store):
    return TripleTable(store)


def test_all_six_permutations_built(table):
    assert set(table.indexes) == set(ALL_PERMUTATIONS)
    assert table.num_triples == 4


def test_every_permutation_is_sorted(table):
    for index in table.indexes.values():
        keys = list(zip(*(c.tolist() for c in index.columns)))
        assert keys == sorted(keys)


def test_range_for_prefix(table, store):
    d = store.dictionary
    p_a = d.require("<p:a>")
    pso = table.index("pso")
    lo, hi = pso.range_for_prefix(p_a)
    assert hi - lo == 3
    s1 = d.require("<s1>")
    lo, hi = pso.range_for_prefix(p_a, s1)
    assert hi - lo == 2


def test_count_prefix_aggregate(table, store):
    p_b = store.dictionary.require("<p:b>")
    assert table.index("pso").count_prefix(p_b) == 1
    assert table.index("pso").count_prefix(p_b, 99999) == 0


def test_predicate_stats(table, store):
    d = store.dictionary
    p_a = d.require("<p:a>")
    count, distinct_s, distinct_o = table.predicate_stats[p_a]
    assert count == 3
    assert distinct_s == 2
    assert distinct_o == 2


def test_best_permutation_selection(table):
    assert table.best_permutation(False, True, False) in ("pso", "pos")
    perm = table.best_permutation(True, True, False)
    assert set(perm[:2]) == {"s", "p"}
    perm = table.best_permutation(True, True, True)
    assert set(perm) == {"s", "p", "o"}


def test_bad_permutation_rejected(store):
    with pytest.raises(StorageError):
        TripleTable(store, permutations=("sp",))
    with pytest.raises(StorageError):
        TripleTable(store, permutations=("sss",))


def test_unmaterialized_permutation_raises(store):
    table = TripleTable(store, permutations=("spo", "pso"))
    with pytest.raises(StorageError):
        table.index("ops")


def test_predicate_matrix_scan_modes():
    rel = Relation.from_rows(
        "p", ("subject", "object"), [(1, 10), (1, 11), (2, 10)]
    )
    matrix = _PredicateMatrix(rel)
    assert matrix.num_pairs == 3
    assert matrix.distinct_subjects == 2
    assert matrix.distinct_objects == 2
    s, o = matrix.scan(1, None)
    assert list(zip(s.tolist(), o.tolist())) == [(1, 10), (1, 11)]
    s, o = matrix.scan(None, 10)
    assert sorted(zip(s.tolist(), o.tolist())) == [(1, 10), (2, 10)]
    s, o = matrix.scan(1, 11)
    assert list(zip(s.tolist(), o.tolist())) == [(1, 11)]
    s, o = matrix.scan(None, None)
    assert len(s) == 3


def test_engines_answer_bound_subject_pattern(store):
    for engine_cls in (RDF3XLikeEngine, TripleBitLikeEngine):
        engine = engine_cls(store)
        result = engine.execute_sparql(
            "SELECT ?o WHERE { <s1> <p:a> ?o }"
        )
        assert set(engine.decode(result)) == {("<o1>",), ("<o2>",)}


def test_engines_answer_fully_bound_pattern(store):
    for engine_cls in (RDF3XLikeEngine, TripleBitLikeEngine):
        engine = engine_cls(store)
        result = engine.execute_sparql(
            "SELECT ?x WHERE { ?x <p:b> <o3> . <s1> <p:a> <o1> }"
        )
        assert set(engine.decode(result)) == {("<s1>",)}
        # Unsatisfied existence check empties the result.
        result = engine.execute_sparql(
            "SELECT ?x WHERE { ?x <p:b> <o3> . <s2> <p:a> <o2> }"
        )
        assert result.num_rows == 0
