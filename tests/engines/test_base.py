"""Engine base behavior shared by all five implementations."""

import pytest

from repro.engines import ALL_ENGINES
from tests.util import build_store

TRIPLES = [
    ("<a>", "<http://x#knows>", "<b>"),
    ("<b>", "<http://x#knows>", "<c>"),
    ("<a>", "<http://x#type>", "<Person>"),
    ("<b>", "<http://x#type>", "<Person>"),
    ("<c>", "<http://x#type>", "<Robot>"),
]


@pytest.fixture(scope="module")
def store():
    return build_store(TRIPLES)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_basic_pattern(engine_cls, store):
    engine = engine_cls(store)
    result = engine.execute_sparql(
        "SELECT ?x WHERE { ?x <http://x#knows> <b> }"
    )
    assert engine.decode(result) == [("<a>",)]


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_join_two_patterns(engine_cls, store):
    engine = engine_cls(store)
    result = engine.execute_sparql(
        """
        SELECT ?x ?y WHERE {
          ?x <http://x#knows> ?y .
          ?y <http://x#type> <Person>
        }
        """
    )
    assert set(engine.decode(result)) == {("<a>", "<b>")}


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_unknown_constant_returns_empty(engine_cls, store):
    engine = engine_cls(store)
    result = engine.execute_sparql(
        "SELECT ?x WHERE { ?x <http://x#knows> <never-seen> }"
    )
    assert result.num_rows == 0
    assert result.attributes == ("x",)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_unknown_predicate_raises_or_empty(engine_cls, store):
    """An unknown predicate cannot bind: the constant IRI was never
    dictionary-encoded, so every engine short-circuits to empty."""
    engine = engine_cls(store)
    result = engine.execute_sparql(
        "SELECT ?x WHERE { ?x <http://x#neverUsed> ?y }"
    )
    assert result.num_rows == 0


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_sparql_cache_reuses_translation(engine_cls, store):
    engine = engine_cls(store)
    text = "SELECT ?x WHERE { ?x <http://x#knows> ?y }"
    engine.execute_sparql(text)
    assert text in engine._sparql_cache
    first = engine._sparql_cache[text]
    engine.execute_sparql(text)
    assert engine._sparql_cache[text] is first


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_warm_executes(engine_cls, store):
    engine = engine_cls(store)
    engine.warm("SELECT ?x WHERE { ?x <http://x#knows> ?y }")


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_repr_mentions_triple_count(engine_cls, store):
    assert str(len(TRIPLES)) in repr(engine_cls(store))
