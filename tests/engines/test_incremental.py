"""Incremental index maintenance: every engine's apply_delta path must
answer exactly like an engine freshly built over the mutated store."""

import random

import pytest

from repro.engines import ALL_ENGINES, EmptyHeadedEngine, RDF3XLikeEngine
from repro.engines.triplebit import TripleBitLikeEngine
from repro.storage.vertical import (
    SUBJECT,
    OBJECT,
    DeltaConfig,
    vertically_partition,
)

EX = "http://ex/"

BASE = [
    (f"<{EX}a>", f"<{EX}knows>", f"<{EX}b>"),
    (f"<{EX}b>", f"<{EX}knows>", f"<{EX}c>"),
    (f"<{EX}c>", f"<{EX}knows>", f"<{EX}a>"),
    (f"<{EX}a>", f"<{EX}likes>", f"<{EX}c>"),
    (f"<{EX}b>", f"<{EX}likes>", f"<{EX}a>"),
]

QUERIES = [
    "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y }",
    "SELECT ?x WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/likes> ?z }",
    "SELECT ?x ?p ?y WHERE { ?x ?p ?y }",
    "SELECT ?x WHERE { ?x <http://ex/mentors> ?y }",
    "SELECT ?x WHERE { ?x <http://ex/knows> <http://ex/b> }",
]


def _answers(engine, texts=QUERIES):
    return [sorted(engine.decode(engine.execute_sparql(t))) for t in texts]


def _check_against_fresh(engines, store_triples):
    fresh_store = vertically_partition(sorted(store_triples))
    for engine in engines:
        fresh = type(engine)(fresh_store)
        assert _answers(engine) == _answers(fresh), engine.name


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_incremental_add_remove_matches_fresh_engine(engine_cls):
    store = vertically_partition(BASE)
    engine = engine_cls(store)
    _answers(engine)  # warm indexes and plans
    current = set(BASE)

    additions = [
        (f"<{EX}d>", f"<{EX}knows>", f"<{EX}a>"),
        (f"<{EX}d>", f"<{EX}mentors>", f"<{EX}b>"),  # creates a table
    ]
    assert store.add_triples(additions) == 2
    current |= set(additions)
    _check_against_fresh([engine], current)

    removals = [
        (f"<{EX}a>", f"<{EX}likes>", f"<{EX}c>"),
        (f"<{EX}b>", f"<{EX}likes>", f"<{EX}a>"),  # drops the table
        (f"<{EX}d>", f"<{EX}knows>", f"<{EX}a>"),  # removes a delta insert
    ]
    assert store.remove_triples(removals) == 3
    current -= set(removals)
    _check_against_fresh([engine], current)

    # Revive a previously dropped table.
    assert store.add_triples([(f"<{EX}z>", f"<{EX}likes>", f"<{EX}a>")]) == 1
    current.add((f"<{EX}z>", f"<{EX}likes>", f"<{EX}a>"))
    _check_against_fresh([engine], current)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_incremental_survives_store_compaction(engine_cls):
    store = vertically_partition(BASE)
    store.delta_config = DeltaConfig(compact_fraction=0.0)  # always compact
    engine = engine_cls(store)
    _answers(engine)
    current = set(BASE)
    rng = random.Random(5)
    for step in range(6):
        triple = (
            f"<{EX}s{rng.randrange(5)}>",
            f"<{EX}knows>",
            f"<{EX}o{rng.randrange(5)}>",
        )
        if triple in current:
            store.remove_triples([triple])
            current.discard(triple)
        else:
            store.add_triples([triple])
            current.add(triple)
        assert store.compactions > step  # compaction really fired
        _check_against_fresh([engine], current)


def test_large_delta_falls_back_to_rebuild():
    store = vertically_partition(BASE)
    engine = RDF3XLikeEngine(store)
    _answers(engine)
    state_before = engine._state
    # A batch far past delta_rebuild_fraction of the 5-triple store.
    store.add_triples(
        [(f"<{EX}n{i}>", f"<{EX}knows>", f"<{EX}n{i + 1}>") for i in range(20)]
    )
    _answers(engine)
    state_after = engine._state
    assert not state_after.overlay  # rebuilt, not patched
    assert state_after.triples is not state_before.triples


def test_small_delta_is_patched_not_rebuilt():
    store = vertically_partition([
        (f"<{EX}s{i}>", f"<{EX}knows>", f"<{EX}o{i}>") for i in range(50)
    ])
    rdf3x = RDF3XLikeEngine(store)
    triplebit = TripleBitLikeEngine(store)
    for engine in (rdf3x, triplebit):
        _answers(engine, QUERIES[:1])
    triples_before = rdf3x._state.triples
    matrices_before = triplebit._state.matrices
    store.add_triples([(f"<{EX}x>", f"<{EX}knows>", f"<{EX}y>")])
    for engine in (rdf3x, triplebit):
        _answers(engine, QUERIES[:1])
    # Main structures are shared objects — only the overlay advanced.
    assert rdf3x._state.triples is triples_before
    assert rdf3x._state.overlay.rows == 1
    assert triplebit._state.matrices is matrices_before
    assert triplebit._state.overlay.rows == 1


def test_emptyheaded_keeps_plans_and_patches_cached_tries():
    store = vertically_partition([
        (f"<{EX}s{i}>", f"<{EX}knows>", f"<{EX}o{i}>") for i in range(50)
    ])
    engine = EmptyHeadedEngine(store)
    text = QUERIES[0]
    engine.execute_sparql(text)
    plans_before = dict(engine._plan_cache)
    assert plans_before
    cached_keys = [k for k in engine.catalog._trie_cache if k[0] == "knows"]
    assert cached_keys
    store.add_triples([(f"<{EX}x>", f"<{EX}knows>", f"<{EX}y>")])
    rows = engine.decode(engine.execute_sparql(text))
    assert (f"<{EX}x>", f"<{EX}y>") in set(rows)
    # The structural plan cache survived the update wholesale.
    assert list(engine._plan_cache) == list(plans_before)
    # The patched catalog still has (updated) tries under the same keys.
    for key in cached_keys:
        trie = engine.catalog._trie_cache[key]
        assert trie.num_tuples == 51


@pytest.mark.parametrize(
    "engine_cls", [RDF3XLikeEngine, TripleBitLikeEngine]
)
def test_threshold_rebuild_mid_catchup_does_not_double_apply(engine_cls):
    """Regression: when the overlay trips the rebuild threshold while
    several batches are being caught up, the rebuilt mains already
    contain the *later* batches — re-applying them as overlay inserts
    made subsequent deletions cancel the bogus insert instead of
    tombstoning the main copy (deleted triples stayed visible)."""
    base = [
        (f"<{EX}s{i}>", f"<{EX}knows>", f"<{EX}o{i}>") for i in range(20)
    ]
    store = vertically_partition(base)
    engine = engine_cls(store)
    query = QUERIES[0]
    _answers(engine, [query])
    # One small batch applied incrementally brings the overlay near the
    # engine's delta_rebuild_fraction (0.25 * 20 = 5 rows).
    store.add_triples(
        [(f"<{EX}a{i}>", f"<{EX}knows>", f"<{EX}b{i}>") for i in range(4)]
    )
    _answers(engine, [query])
    # Two more batches commit before the engine's next query; catching
    # up on the first must trip the threshold mid-loop.
    batch_b = [
        (f"<{EX}c{i}>", f"<{EX}knows>", f"<{EX}d{i}>") for i in range(3)
    ]
    batch_c = [
        (f"<{EX}e{i}>", f"<{EX}knows>", f"<{EX}f{i}>") for i in range(2)
    ]
    store.add_triples(batch_b)
    store.add_triples(batch_c)
    _answers(engine, [query])
    # Deleting the last batch must actually delete it.
    store.remove_triples(batch_c)
    rows = set(engine.decode(engine.execute_sparql(query)))
    assert (f"<{EX}e0>", f"<{EX}f0>") not in rows
    _check_against_fresh(
        [engine], set(base) | set(batch_b) | {
            (f"<{EX}a{i}>", f"<{EX}knows>", f"<{EX}b{i}>") for i in range(4)
        }
    )


def test_incremental_switch_forces_wholesale_rebuild():
    store = vertically_partition(BASE)
    engine = RDF3XLikeEngine(store)
    engine.incremental_updates = False
    _answers(engine)
    triples_before = engine._state.triples
    store.add_triples([(f"<{EX}x>", f"<{EX}knows>", f"<{EX}y>")])
    _answers(engine)
    assert engine._state.triples is not triples_before
    assert not engine._state.overlay


def test_pairwise_distinct_cache_tracks_replaced_relations():
    from repro.engines.pairwise import ColumnStoreEngine

    store = vertically_partition(BASE)
    engine = ColumnStoreEngine(store)
    relation = engine.catalog.get("knows")
    assert engine._column_distinct(relation, 0) == 3
    store.add_triples([(f"<{EX}q>", f"<{EX}knows>", f"<{EX}r>")])
    engine.check_data_version()
    replaced = engine.catalog.get("knows")
    assert replaced is not relation
    assert engine._column_distinct(replaced, 0) == 4
