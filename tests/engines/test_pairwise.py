"""MonetDB-like column-store engine."""

import pytest

from repro.engines.pairwise import ColumnStoreEngine
from tests.util import build_store

TRIPLES = [
    ("<a>", "<p:follows>", "<b>"),
    ("<b>", "<p:follows>", "<c>"),
    ("<c>", "<p:follows>", "<a>"),
    ("<a>", "<p:age>", '"30"'),
    ("<b>", "<p:age>", '"31"'),
]


@pytest.fixture(scope="module")
def engine():
    return ColumnStoreEngine(build_store(TRIPLES))


def test_selection_scan(engine):
    result = engine.execute_sparql(
        'SELECT ?x WHERE { ?x <p:age> "30" }'
    )
    assert engine.decode(result) == [("<a>",)]


def test_cyclic_query_pairwise(engine):
    result = engine.execute_sparql(
        """
        SELECT ?x ?y ?z WHERE {
          ?x <p:follows> ?y . ?y <p:follows> ?z . ?z <p:follows> ?x
        }
        """
    )
    assert len(result.to_set()) == 3


def test_join_with_selection(engine):
    result = engine.execute_sparql(
        'SELECT ?y WHERE { ?x <p:age> "31" . ?x <p:follows> ?y }'
    )
    assert engine.decode(result) == [("<c>",)]


def test_distinct_column_cache(engine):
    engine.execute_sparql("SELECT ?x WHERE { ?x <p:follows> ?y }")
    assert engine._distinct_cache  # populated after a query


def test_cross_product_query(engine):
    result = engine.execute_sparql(
        'SELECT ?x ?y WHERE { ?x <p:age> "30" . ?y <p:age> "31" }'
    )
    assert engine.decode(result) == [("<a>", "<b>")]


def test_projection_dedup(engine):
    # a and c both follow someone; x repeated per match must dedup.
    result = engine.execute_sparql(
        "SELECT ?x WHERE { ?x <p:follows> ?y }"
    )
    assert result.num_rows == 3
