"""Cardinality-statistics refresh: compaction evicts drifted plans, and
the delta-overlay engines recompute per-predicate statistics per epoch
instead of carrying them across ``apply_delta``."""

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.engines.rdf3x import RDF3XLikeEngine
from repro.engines.triplebit import TripleBitLikeEngine
from repro.storage.vertical import DeltaConfig, vertically_partition

EX = "http://ex/"


def _store(compact_fraction):
    triples = [
        (f"<{EX}s{i}>", f"<{EX}p{i % 2}>", f"<{EX}o{i % 4}>")
        for i in range(40)
    ]
    store = vertically_partition(triples)
    store.delta_config = DeltaConfig(compact_fraction=compact_fraction)
    return store


def _plan_relations(engine):
    return [
        sorted({atom.relation for atom in key[0]})
        for key in engine._plan_cache
    ]


def test_compaction_evicts_plans_over_compacted_tables():
    # A tiny compact_fraction makes every batch compact its table.
    store = _store(compact_fraction=0.001)
    engine = EmptyHeadedEngine(store)
    q_p0 = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    q_p1 = f"SELECT ?s WHERE {{ ?s <{EX}p1> ?o }}"
    engine.execute_sparql(q_p0)
    engine.execute_sparql(q_p1)
    assert len(engine._plan_cache) == 2

    store.add_triples([(f"<{EX}x>", f"<{EX}p0>", f"<{EX}y>")])
    engine.check_data_version()
    # p0's plan evicted (its table compacted); p1's untouched plan kept.
    relations = _plan_relations(engine)
    assert ["p0"] not in relations
    assert ["p1"] in relations

    # Re-execution replans p0 against the compacted catalog — and the
    # result reflects the update.
    rows = engine.decode(engine.execute_sparql(q_p0))
    assert (f"<{EX}x>",) in rows
    assert ["p0"] in _plan_relations(engine)


def test_no_compaction_keeps_plans():
    # A huge compact_fraction: deltas accumulate, nothing compacts, and
    # retained plans keep serving (the prepared-statement trade).
    store = _store(compact_fraction=100.0)
    engine = EmptyHeadedEngine(store)
    q_p0 = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    engine.execute_sparql(q_p0)
    store.add_triples([(f"<{EX}x>", f"<{EX}p0>", f"<{EX}y>")])
    rows = engine.decode(engine.execute_sparql(q_p0))
    assert (f"<{EX}x>",) in rows
    assert store.compactions == 0
    assert ["p0"] in _plan_relations(engine)


def test_compacted_tables_recorded_in_delta_batch():
    store = _store(compact_fraction=0.001)
    store.add_triples([(f"<{EX}x>", f"<{EX}p0>", f"<{EX}y>")])
    batches = store.changes_since(0)
    assert batches is not None and len(batches) == 1
    assert "p0" in batches[0].compacted_tables
    assert store.compactions == 1


# ---------------------------------------------------------------------------
# Overlay engines: per-epoch predicate statistics
# ---------------------------------------------------------------------------
# The base dataset: p0 and p1 each hold 20 rows (even/odd i), with 20
# distinct subjects and 2 distinct objects (o0/o2 resp. o1/o3).
def test_rdf3x_delta_refreshes_predicate_stats():
    store = _store(compact_fraction=100.0)
    engine = RDF3XLikeEngine(store)
    state = engine._state
    p0 = state.predicate_key["p0"]
    p1 = state.predicate_key["p1"]
    assert state.predicate_stats[p0] == (20, 20, 2)

    store.add_triples(
        [
            (f"<{EX}x>", f"<{EX}p0>", f"<{EX}onew>"),
            (f"<{EX}x>", f"<{EX}p9>", f"<{EX}y>"),
        ]
    )
    engine.check_data_version()
    state = engine._state
    # The touched table recounts through the overlay; the untouched one
    # keeps its (still correct) entry; the new table gains one.
    assert state.predicate_stats[p0] == (21, 21, 3)
    assert state.predicate_stats[p1] == (20, 20, 2)
    assert state.predicate_stats[state.predicate_key["p9"]] == (1, 1, 1)


def test_triplebit_delta_refreshes_predicate_stats():
    store = _store(compact_fraction=100.0)
    engine = TripleBitLikeEngine(store)
    assert engine._state.predicate_stats["p0"] == (20, 2)

    store.add_triples([(f"<{EX}x>", f"<{EX}p0>", f"<{EX}onew>")])
    engine.check_data_version()
    state = engine._state
    assert state.predicate_stats["p0"] == (21, 3)
    assert state.predicate_stats["p1"] == (20, 2)


def test_rdf3x_stats_dropped_when_table_empties():
    triples = [
        (f"<{EX}a>", f"<{EX}p0>", f"<{EX}b>"),
        (f"<{EX}c>", f"<{EX}p1>", f"<{EX}d>"),
    ]
    store = vertically_partition(triples)
    store.delta_config = DeltaConfig(compact_fraction=100.0)
    engine = RDF3XLikeEngine(store)
    store.remove_triples([triples[0]])
    engine.check_data_version()
    state = engine._state
    assert "p0" not in state.predicate_key
    assert set(state.predicate_stats) == {state.predicate_key["p1"]}


def test_overlay_stats_equal_rebuild_stats():
    """Regression pin: after any run of overlay-absorbed batches the
    per-epoch statistics equal a freshly built engine's (no drift until
    rebuild — the old roadmap's carried-over concern)."""
    store = _store(compact_fraction=100.0)
    rdf3x = RDF3XLikeEngine(store)
    triplebit = TripleBitLikeEngine(store)
    indexed = rdf3x._state.triples
    matrices = triplebit._state.matrices

    store.add_triples(
        [
            (f"<{EX}x>", f"<{EX}p0>", f"<{EX}onew>"),
            (f"<{EX}x>", f"<{EX}p9>", f"<{EX}y>"),
        ]
    )
    store.remove_triples([(f"<{EX}s1>", f"<{EX}p1>", f"<{EX}o1>")])
    rdf3x.check_data_version()
    triplebit.check_data_version()
    # Both engines absorbed the batches differentially (mains untouched).
    assert rdf3x._state.triples is indexed
    assert triplebit._state.matrices is matrices

    fresh_rdf3x = RDF3XLikeEngine(store)
    fresh_triplebit = TripleBitLikeEngine(store)
    assert rdf3x._state.predicate_stats == fresh_rdf3x._state.predicate_stats
    assert (
        triplebit._state.predicate_stats
        == fresh_triplebit._state.predicate_stats
    )
