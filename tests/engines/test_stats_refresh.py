"""Cardinality-statistics refresh: compaction evicts drifted plans."""

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.storage.vertical import DeltaConfig, vertically_partition

EX = "http://ex/"


def _store(compact_fraction):
    triples = [
        (f"<{EX}s{i}>", f"<{EX}p{i % 2}>", f"<{EX}o{i % 4}>")
        for i in range(40)
    ]
    store = vertically_partition(triples)
    store.delta_config = DeltaConfig(compact_fraction=compact_fraction)
    return store


def _plan_relations(engine):
    return [
        sorted({atom.relation for atom in key[0]})
        for key in engine._plan_cache
    ]


def test_compaction_evicts_plans_over_compacted_tables():
    # A tiny compact_fraction makes every batch compact its table.
    store = _store(compact_fraction=0.001)
    engine = EmptyHeadedEngine(store)
    q_p0 = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    q_p1 = f"SELECT ?s WHERE {{ ?s <{EX}p1> ?o }}"
    engine.execute_sparql(q_p0)
    engine.execute_sparql(q_p1)
    assert len(engine._plan_cache) == 2

    store.add_triples([(f"<{EX}x>", f"<{EX}p0>", f"<{EX}y>")])
    engine.check_data_version()
    # p0's plan evicted (its table compacted); p1's untouched plan kept.
    relations = _plan_relations(engine)
    assert ["p0"] not in relations
    assert ["p1"] in relations

    # Re-execution replans p0 against the compacted catalog — and the
    # result reflects the update.
    rows = engine.decode(engine.execute_sparql(q_p0))
    assert (f"<{EX}x>",) in rows
    assert ["p0"] in _plan_relations(engine)


def test_no_compaction_keeps_plans():
    # A huge compact_fraction: deltas accumulate, nothing compacts, and
    # retained plans keep serving (the prepared-statement trade).
    store = _store(compact_fraction=100.0)
    engine = EmptyHeadedEngine(store)
    q_p0 = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    engine.execute_sparql(q_p0)
    store.add_triples([(f"<{EX}x>", f"<{EX}p0>", f"<{EX}y>")])
    rows = engine.decode(engine.execute_sparql(q_p0))
    assert (f"<{EX}x>",) in rows
    assert store.compactions == 0
    assert ["p0"] in _plan_relations(engine)


def test_compacted_tables_recorded_in_delta_batch():
    store = _store(compact_fraction=0.001)
    store.add_triples([(f"<{EX}x>", f"<{EX}p0>", f"<{EX}y>")])
    batches = store.changes_since(0)
    assert batches is not None and len(batches) == 1
    assert "p0" in batches[0].compacted_tables
    assert store.compactions == 1
