"""Per-value re-optimization: the structural plan cache stays the fast
path, but a bound parameter whose sketched selectivity diverges from
the cached plan's assumption re-plans for its value class."""

import pytest

from repro.core.config import OptimizationConfig
from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.service.prepared import PreparedStatement
from repro.storage.vertical import VerticallyPartitionedStore

EX = "http://ex/"


@pytest.fixture()
def store():
    triples = []
    # p0 is a hot advisor (50 students), p1 a cold one (3).
    for i in range(50):
        triples.append((f"<{EX}s{i}>", f"<{EX}advisor>", f"<{EX}p0>"))
    for i in range(3):
        triples.append((f"<{EX}t{i}>", f"<{EX}advisor>", f"<{EX}p1>"))
    for i in range(50):
        triples.append((f"<{EX}s{i}>", f"<{EX}a>", f"<{EX}Grad>"))
    for i in range(3):
        triples.append((f"<{EX}t{i}>", f"<{EX}a>", f"<{EX}Grad>"))
    store = VerticallyPartitionedStore()
    store.add_triples(triples)
    return store


TEMPLATE = (
    f"SELECT ?x WHERE {{ ?x <{EX}advisor> $prof . ?x <{EX}a> <{EX}Grad> }}"
)


def _statement(store, **kwargs):
    engine = EmptyHeadedEngine(store)
    return PreparedStatement(
        engine, TEMPLATE, result_cache_size=0, **kwargs
    )


def test_divergent_value_reoptimizes_and_caches(store):
    stmt = _statement(store)
    assert len(stmt.execute(prof=f"<{EX}p0>")) == 50  # cold plan
    assert stmt.stats.plans_retained == 0
    assert stmt.stats.plans_reoptimized == 0

    assert len(stmt.execute(prof=f"<{EX}p0>")) == 50
    assert stmt.stats.plans_retained == 1

    # 3 rows vs the cached plan's 50-row assumption: diverges at 8x.
    assert len(stmt.execute(prof=f"<{EX}p1>")) == 3
    assert stmt.stats.plans_reoptimized == 1

    # The value-class plan is cached: re-running p1 re-optimizes again
    # (same disposition) without growing the plan cache.
    cache_size = len(stmt.engine._plan_cache)
    assert len(stmt.execute(prof=f"<{EX}p1>")) == 3
    assert stmt.stats.plans_reoptimized == 2
    assert len(stmt.engine._plan_cache) == cache_size


def test_same_class_values_share_the_structural_plan(store):
    stmt = _statement(store)
    stmt.execute(prof=f"<{EX}p0>")
    stmt.execute(prof=f"<{EX}p0>")
    assert stmt.stats.plans_retained == 1
    assert stmt.stats.plans_reoptimized == 0


def test_reoptimize_off_retains_everything(store):
    engine = EmptyHeadedEngine(
        store, config=OptimizationConfig.all_on().but(reoptimize=False)
    )
    stmt = PreparedStatement(engine, TEMPLATE, result_cache_size=0)
    stmt.execute(prof=f"<{EX}p0>")
    stmt.execute(prof=f"<{EX}p1>")
    stmt.execute(prof=f"<{EX}p1>")
    assert stmt.stats.plans_reoptimized == 0
    assert stmt.stats.plans_retained == 2


def test_explain_reports_plan_source_and_bounds(store):
    engine = EmptyHeadedEngine(store)
    hot = TEMPLATE.replace("$prof", f"<{EX}p0>")
    first = engine.explain_sparql(hot)
    assert "plan source: freshly planned" in first
    assert "bounds:" in first
    second = engine.explain_sparql(hot)
    assert "plan source: structural-cached" in second

    cold = TEMPLATE.replace("$prof", f"<{EX}p1>")
    third = engine.explain_sparql(cold)
    assert "plan source: value-reoptimized" in third


def test_executor_stats_record_order_and_bounds(store):
    engine = EmptyHeadedEngine(store)
    engine.execute_sparql(TEMPLATE.replace("$prof", f"<{EX}p0>"))
    stats = engine.executor.stats
    assert stats.last_order  # the chosen attach order is surfaced
    assert stats.last_bounds is not None
    assert set(stats.last_bounds) == set(stats.last_order)
