"""LUBM query texts."""

import pytest

from repro.lubm.generator import GeneratorConfig
from repro.lubm.queries import (
    CYCLIC_QUERY_IDS,
    PAPER_OUTPUT_CARDINALITIES,
    PAPER_QUERY_IDS,
    lubm_queries,
    lubm_query,
)


def test_paper_workload_is_twelve_queries():
    # 14 LUBM queries minus 6 and 10 (duplicates without inference).
    assert len(PAPER_QUERY_IDS) == 12
    assert 6 not in PAPER_QUERY_IDS
    assert 10 not in PAPER_QUERY_IDS


def test_all_queries_have_prefixes():
    for text in lubm_queries().values():
        assert "PREFIX ub:" in text
        assert "SELECT" in text


def test_unknown_query_id_raises():
    with pytest.raises(KeyError):
        lubm_query(6)


def test_query13_constant_adapts_to_scale():
    small = lubm_query(13, GeneratorConfig(universities=1, degree_pool=100))
    assert "University99.edu" in small
    large = lubm_query(13, GeneratorConfig(universities=1, degree_pool=1000))
    assert "University567.edu" in large
    default = lubm_query(13)
    assert "University567.edu" in default


def test_cyclic_queries_marked():
    assert CYCLIC_QUERY_IDS == (2, 9)


def test_paper_cardinalities_recorded_for_all_queries():
    assert set(PAPER_OUTPUT_CARDINALITIES) == set(PAPER_QUERY_IDS)
    assert PAPER_OUTPUT_CARDINALITIES[11] == 0
    assert PAPER_OUTPUT_CARDINALITIES[14] == 7_924_765


def test_queries_parse_and_translate():
    from repro.sparql.parser import parse_sparql
    from repro.sparql.translate import sparql_to_query

    for qid, text in lubm_queries().items():
        query = sparql_to_query(parse_sparql(text), name=f"q{qid}")
        assert query.atoms, qid


def test_cyclic_queries_have_cyclic_hypergraphs():
    from repro.core.hypergraph import Hypergraph
    from repro.core.query import normalize
    from repro.sparql.parser import parse_sparql
    from repro.sparql.translate import sparql_to_query

    for qid, text in lubm_queries().items():
        query = sparql_to_query(parse_sparql(text), name=f"q{qid}")
        # Bind constants to dummy keys so normalize() accepts the query.
        from repro.core.query import Atom, Constant, Variable

        atoms = []
        for atom in query.atoms:
            terms = tuple(
                Constant(0) if isinstance(t, Constant) else t
                for t in atom.terms
            )
            atoms.append(Atom(atom.relation, terms))
        from repro.core.query import ConjunctiveQuery

        bound = ConjunctiveQuery(tuple(atoms), query.projection, query.name)
        hypergraph = Hypergraph.from_query(normalize(bound))
        assert hypergraph.has_cycle() == (qid in CYCLIC_QUERY_IDS), qid
