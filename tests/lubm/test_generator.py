"""LUBM generator: structure, determinism, ontology invariants."""

import pytest

from repro.lubm.generator import GeneratorConfig, generate_dataset, generate_triples
from repro.rdf.vocabulary import RDF_TYPE, UB


def test_determinism_same_seed(dataset):
    again = generate_dataset(universities=1, seed=0)
    assert again.num_triples == dataset.num_triples
    for name, table in dataset.store.tables.items():
        assert again.store.tables[name].num_rows == table.num_rows


def test_different_seed_differs():
    a = generate_dataset(universities=1, seed=0)
    b = generate_dataset(universities=1, seed=1)
    assert a.num_triples != b.num_triples


def test_scale_is_roughly_100k_per_university(dataset):
    # Real UBA produces ~100k triples per university.
    assert 80_000 <= dataset.num_triples <= 160_000


def test_config_validation():
    with pytest.raises(ValueError):
        GeneratorConfig(universities=0)


def test_degree_pool_at_least_universities():
    config = GeneratorConfig(universities=50, degree_pool=10)
    assert config.degree_pool == 50


def test_department_count_in_range(dataset):
    suborg = dataset.store.tables["subOrganizationOf"]
    d = dataset.dictionary
    departments = {
        d.decode(int(s))
        for s, o in suborg.iter_rows()
        if d.decode(int(o)).startswith("<http://www.University")
    }
    assert 15 <= len(departments) <= 25


def test_research_groups_are_suborgs_of_departments(dataset):
    """Query 11 returns zero rows without inference because research
    groups hang off departments, never universities."""
    d = dataset.dictionary
    suborg = dataset.store.tables["subOrganizationOf"]
    for s, o in suborg.iter_rows():
        subject = d.decode(int(s))
        target = d.decode(int(o))
        if "ResearchGroup" in subject:
            assert "Department" in target


def test_every_graduate_student_has_advisor_and_degree(dataset):
    d = dataset.dictionary
    type_table = dataset.store.tables["type"]
    grad_key = d.lookup(UB.GraduateStudent)
    grads = {
        int(s) for s, o in type_table.iter_rows() if int(o) == grad_key
    }
    advisors = {int(s) for s, _ in dataset.store.tables["advisor"].iter_rows()}
    degrees = {
        int(s)
        for s, _ in dataset.store.tables[
            "undergraduateDegreeFrom"
        ].iter_rows()
    }
    assert grads <= advisors
    assert grads <= degrees


def test_well_known_entities_exist(dataset):
    d = dataset.dictionary
    for term in (
        "<http://www.University0.edu>",
        "<http://www.Department0.University0.edu>",
        "<http://www.Department0.University0.edu/GraduateCourse0>",
        "<http://www.Department0.University0.edu/AssistantProfessor0>",
        "<http://www.Department0.University0.edu/AssociateProfessor0>",
    ):
        assert d.lookup(term) is not None, term


def test_all_lubm_predicates_present(dataset):
    expected = {
        "type", "memberOf", "subOrganizationOf", "takesCourse",
        "teacherOf", "advisor", "worksFor", "undergraduateDegreeFrom",
        "name", "emailAddress", "telephone", "publicationAuthor", "headOf",
    }
    assert expected <= set(dataset.store.tables)


def test_triples_stream_matches_dataset(dataset):
    config = GeneratorConfig(universities=1, seed=0)
    count = sum(1 for _ in generate_triples(config))
    assert count == dataset.num_triples


def test_type_triples_use_rdf_type_predicate():
    config = GeneratorConfig(universities=1, seed=3)
    stream = generate_triples(config)
    first = next(stream)
    assert first.predicate == RDF_TYPE
