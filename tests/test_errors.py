"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError)


def test_unknown_relation_error_hint():
    err = errors.UnknownRelationError("x", ["a", "b"])
    assert err.known == ["a", "b"]
    assert "x" in str(err)


def test_arity_mismatch_error_fields():
    err = errors.ArityMismatchError("r", 2, 3)
    assert (err.expected, err.got) == (2, 3)
    assert "arity 2" in str(err)


def test_parse_error_position():
    err = errors.ParseError("bad token", 17)
    assert err.position == 17
    assert "offset 17" in str(err)
    assert errors.ParseError("no position").position is None


def test_catchable_at_boundary():
    with pytest.raises(errors.ReproError):
        raise errors.PlanningError("nope")


# ---------------------------------------------------------------------------
# The stable error taxonomy (the network front-end's wire contract)
# ---------------------------------------------------------------------------
def test_every_error_carries_code_and_status():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, errors.ReproError):
            assert isinstance(obj.code, str) and obj.code
            assert isinstance(obj.http_status, int)


def test_error_codes_table_matches_classes():
    for code, (status, cls) in errors.ERROR_CODES.items():
        assert cls.code == code
        assert cls.http_status == status
    # The 400-family requests clients can fix:
    for code in ("parse_error", "translate_error", "parameter_error",
                 "bind_error"):
        assert errors.ERROR_CODES[code][0] == 400
    assert errors.ERROR_CODES["unsupported_format"][0] == 406
    assert errors.ERROR_CODES["timeout"][0] == 503
    assert errors.ERROR_CODES["capacity"][0] == 503


def test_translation_error_is_a_parse_error_with_its_own_code():
    err = errors.TranslationError("unsupported construct")
    assert isinstance(err, errors.ParseError)
    assert err.code == "translate_error"
    assert errors.ParseError("x").code == "parse_error"


def test_parameter_error_catchable_under_both_historical_types():
    err = errors.ParameterError("missing: prof")
    assert isinstance(err, errors.ConfigError)
    assert isinstance(err, errors.PlanningError)
    assert err.code == "parameter_error"
    assert err.http_status == 400


def test_error_code_and_http_status_helpers():
    assert errors.error_code(errors.ParseError("x")) == "parse_error"
    assert errors.http_status(errors.ParseError("x")) == 400
    assert errors.error_code(ValueError("x")) == "internal_error"
    assert errors.http_status(ValueError("x")) == 500


def test_session_errors_are_409():
    for cls in (errors.SessionClosedError, errors.CursorClosedError,
                errors.UnknownCursorError):
        assert issubclass(cls, errors.SessionError)
        assert cls.http_status == 409
