"""Exception hierarchy contracts."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.ReproError)


def test_unknown_relation_error_hint():
    err = errors.UnknownRelationError("x", ["a", "b"])
    assert err.known == ["a", "b"]
    assert "x" in str(err)


def test_arity_mismatch_error_fields():
    err = errors.ArityMismatchError("r", 2, 3)
    assert (err.expected, err.got) == (2, 3)
    assert "arity 2" in str(err)


def test_parse_error_position():
    err = errors.ParseError("bad token", 17)
    assert err.position == 17
    assert "offset 17" in str(err)
    assert errors.ParseError("no position").position is None


def test_catchable_at_boundary():
    with pytest.raises(errors.ReproError):
        raise errors.PlanningError("nope")
