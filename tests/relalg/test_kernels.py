"""Vectorized join kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.relalg.kernels import cross_product, natural_join, semijoin
from repro.storage.relation import Relation


def _rel(name, attrs, rows):
    return Relation.from_rows(name, attrs, rows)


def test_one_to_one_join():
    r = _rel("r", ("x", "y"), [(1, 10), (2, 20)])
    s = _rel("s", ("y", "z"), [(10, 100), (30, 300)])
    joined = natural_join(r, s)
    assert joined.attributes == ("x", "y", "z")
    assert joined.to_set() == {(1, 10, 100)}


def test_many_to_many_join():
    r = _rel("r", ("x", "k"), [(1, 5), (2, 5), (3, 6)])
    s = _rel("s", ("k", "y"), [(5, 7), (5, 8), (6, 9)])
    joined = natural_join(r, s)
    assert joined.to_set() == {
        (1, 5, 7), (1, 5, 8), (2, 5, 7), (2, 5, 8), (3, 6, 9),
    }


def test_multi_key_join():
    r = _rel("r", ("a", "b", "x"), [(1, 2, 9), (1, 3, 8)])
    s = _rel("s", ("a", "b", "y"), [(1, 2, 7), (1, 9, 6)])
    joined = natural_join(r, s)
    assert joined.to_set() == {(1, 2, 9, 7)}


def test_join_empty_side():
    r = _rel("r", ("x", "y"), [])
    s = _rel("s", ("y", "z"), [(1, 2)])
    assert natural_join(r, s).num_rows == 0


def test_join_no_shared_attrs_raises():
    r = _rel("r", ("x",), [(1,)])
    s = _rel("s", ("y",), [(2,)])
    with pytest.raises(ExecutionError):
        natural_join(r, s)


def test_asymmetric_join_prefilter_path():
    big = _rel(
        "big", ("k", "x"), [(i, i) for i in range(2000)]
    )
    small = _rel("small", ("k", "y"), [(5, 50), (100, 51), (9999, 52)])
    joined = natural_join(big, small)
    assert joined.to_set() == {(5, 5, 50), (100, 100, 51)}
    # Order reversed exercises the other prefilter branch.
    joined2 = natural_join(small, big)
    assert joined2.to_set() == {(5, 50, 5), (100, 51, 100)}


def test_semijoin():
    r = _rel("r", ("x", "k"), [(1, 5), (2, 6), (3, 7)])
    s = _rel("s", ("k",), [(5,), (7,)])
    assert semijoin(r, s).to_set() == {(1, 5), (3, 7)}


def test_semijoin_no_shared_attrs_is_identity():
    r = _rel("r", ("x",), [(1,)])
    s = _rel("s", ("y",), [(9,)])
    assert semijoin(r, s) is r


def test_cross_product():
    r = _rel("r", ("x",), [(1,), (2,)])
    s = _rel("s", ("y",), [(8,), (9,)])
    cp = cross_product(r, s)
    assert cp.to_set() == {(1, 8), (1, 9), (2, 8), (2, 9)}


def test_cross_product_overlap_raises():
    r = _rel("r", ("x",), [(1,)])
    with pytest.raises(ExecutionError):
        cross_product(r, r)


rows = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)), max_size=60
)


@given(rows, rows)
@settings(max_examples=60, deadline=None)
def test_join_matches_python_sets(left_rows, right_rows):
    r = _rel("r", ("x", "k"), left_rows)
    s = _rel("s", ("k", "y"), right_rows)
    joined = natural_join(r, s)
    expected = {
        (x, k, y)
        for (x, k) in left_rows
        for (k2, y) in right_rows
        if k == k2
    }
    # natural_join keeps duplicates; compare sets and multiplicity count.
    assert joined.to_set() == expected
    expected_count = sum(
        1
        for (x, k) in left_rows
        for (k2, y) in right_rows
        if k == k2
    )
    assert joined.num_rows == expected_count


@given(rows, rows)
@settings(max_examples=40, deadline=None)
def test_semijoin_matches_python_sets(left_rows, right_rows):
    r = _rel("r", ("x", "k"), left_rows)
    s = _rel("s", ("k", "y"), right_rows)
    keys = {k for k, _ in right_rows}
    expected_rows = [row for row in left_rows if row[1] in keys]
    assert list(semijoin(r, s).iter_rows()) == [
        tuple(row) for row in expected_rows
    ]
