"""Cardinality estimation for pairwise planners."""

import pytest

from repro.relalg.estimates import (
    EstimatedRelation,
    RelationStatistics,
    estimate_join_size,
)
from repro.storage.relation import Relation


def test_statistics_distinct_counts():
    rel = Relation.from_rows(
        "r", ("a", "b"), [(1, 1), (1, 2), (2, 2), (2, 2)]
    )
    stats = RelationStatistics(rel)
    assert stats.num_rows == 4
    assert stats.distinct("a") == 2
    assert stats.distinct("b") == 2
    # Cached: same object on second call path.
    assert stats.distinct("a") == 2


def test_selectivity_equals():
    rel = Relation.from_rows("r", ("a",), [(1,), (2,), (3,), (4,)])
    stats = RelationStatistics(rel)
    assert stats.selectivity_equals("a") == pytest.approx(0.25)
    empty = RelationStatistics(Relation.empty("e", ("a",)))
    assert empty.selectivity_equals("a") == 0.0


def test_join_size_system_r_formula():
    # |R|=100, |S|=200, V(R,k)=10, V(S,k)=20 -> 100*200/20 = 1000.
    assert estimate_join_size(100, 200, [(10, 20)]) == pytest.approx(1000)


def test_join_size_multiple_keys():
    size = estimate_join_size(100, 100, [(10, 10), (5, 2)])
    assert size == pytest.approx(100 * 100 / 10 / 5)


def test_estimated_relation_join_schema():
    r = EstimatedRelation(("x", "k"), 100.0, {"x": 100, "k": 10})
    s = EstimatedRelation(("k", "y"), 50.0, {"k": 25, "y": 50})
    joined = r.join(s)
    assert joined.attributes == ("x", "k", "y")
    assert joined.rows == pytest.approx(100 * 50 / 25)


def test_estimated_join_caps_distincts_by_size():
    r = EstimatedRelation(("x", "k"), 10.0, {"x": 10, "k": 10})
    s = EstimatedRelation(("k", "y"), 2.0, {"k": 2, "y": 2})
    joined = r.join(s)
    assert joined.rows == pytest.approx(2.0)
    for distinct in joined.distincts.values():
        assert distinct <= joined.rows


def test_from_stats():
    rel = Relation.from_rows("r", ("a", "b"), [(1, 5), (2, 5)])
    est = EstimatedRelation.from_stats(RelationStatistics(rel))
    assert est.rows == 2.0
    assert est.distincts == {"a": 2.0, "b": 1.0}
