"""Selinger DP join ordering."""

import pytest

from repro.errors import PlanningError
from repro.relalg.estimates import EstimatedRelation
from repro.relalg.selinger import selinger_join_order


def _est(attrs, rows, distincts=None):
    distincts = distincts or {a: rows for a in attrs}
    return EstimatedRelation(tuple(attrs), float(rows), distincts)


def test_single_relation():
    tree = selinger_join_order([_est(("x",), 10)])
    assert tree.order == (0,)
    assert tree.estimated_cost == 0.0


def test_empty_raises():
    with pytest.raises(PlanningError):
        selinger_join_order([])


def test_selective_relation_drives_cost():
    inputs = [
        _est(("x", "y"), 1_000_000),
        _est(("y", "z"), 10),
        _est(("z", "w"), 1_000),
    ]
    tree = selinger_join_order(inputs)
    # The selective middle relation must participate in the first join so
    # every intermediate stays at ~10 rows (total cost ~20).
    assert 1 in tree.order[:2]
    assert tree.estimated_cost == pytest.approx(20.0)


def test_avoids_cross_products():
    inputs = [
        _est(("x", "y"), 100),
        _est(("a", "b"), 2),  # tiny but disconnected from x,y
        _est(("y", "z"), 50),
    ]
    tree = selinger_join_order(inputs)
    # The disconnected relation is joined last despite being smallest.
    assert tree.order[-1] == 1


def test_chain_query_order_is_connected():
    inputs = [
        _est(("a", "b"), 100),
        _est(("b", "c"), 100),
        _est(("c", "d"), 100),
        _est(("d", "e"), 100),
    ]
    tree = selinger_join_order(inputs)
    # Every prefix of the order shares an attribute with the next input.
    seen = set(inputs[tree.order[0]].attributes)
    for idx in tree.order[1:]:
        assert seen & set(inputs[idx].attributes)
        seen |= set(inputs[idx].attributes)


def test_cost_reflects_intermediates():
    cheap = [
        _est(("x", "y"), 10, {"x": 10, "y": 10}),
        _est(("y", "z"), 10, {"y": 10, "z": 10}),
    ]
    tree = selinger_join_order(cheap)
    assert tree.estimated_cost == pytest.approx(10.0)  # 10*10/10
