"""Greedy (TripleBit-style) join ordering."""

import pytest

from repro.errors import PlanningError
from repro.relalg.estimates import EstimatedRelation
from repro.relalg.greedy import greedy_join_order


def _est(attrs, rows):
    return EstimatedRelation(
        tuple(attrs), float(rows), {a: rows for a in attrs}
    )


def test_starts_with_most_selective():
    inputs = [
        _est(("x", "y"), 500),
        _est(("y", "z"), 5),
        _est(("z", "w"), 100),
    ]
    tree = greedy_join_order(inputs)
    assert tree.order[0] == 1


def test_empty_raises():
    with pytest.raises(PlanningError):
        greedy_join_order([])


def test_prefers_connected_extensions():
    inputs = [
        _est(("x", "y"), 10),
        _est(("a", "b"), 1),   # smallest: starts
        _est(("b", "x"), 20),  # connects a,b to x,y
    ]
    tree = greedy_join_order(inputs)
    assert tree.order[0] == 1
    assert tree.order[1] == 2  # connected, not the cross product


def test_covers_all_inputs_once():
    inputs = [_est((f"v{i}", f"v{i+1}"), 10 * (i + 1)) for i in range(5)]
    tree = greedy_join_order(inputs)
    assert sorted(tree.order) == list(range(5))
