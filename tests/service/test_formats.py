"""Wire-format serializers: structure, streaming, round-trips."""

import json

import pytest

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.errors import ParseError, UnsupportedFormatError
from repro.service import QueryService
from repro.service.formats import (
    SERIALIZERS,
    json_term,
    lexical_from_json,
    read_binary,
    serializer_for,
)
from repro.storage.vertical import vertically_partition

EX = "http://ex/"

TRIPLES = [
    (f"<{EX}s1>", f"<{EX}knows>", f"<{EX}s2>"),
    (f"<{EX}s2>", f"<{EX}knows>", f"<{EX}s3>"),
    (f"<{EX}s3>", f"<{EX}knows>", f"<{EX}s1>"),  # s3 has no name: NULL ?n
    (f"<{EX}s1>", f"<{EX}name>", '"Alice"@en'),
    (f"<{EX}s2>", f"<{EX}name>", '"B,ob\nX"'),
    (f"<{EX}s3>", f"<{EX}age>", '"33"^^<http://www.w3.org/2001/XMLSchema#integer>'),
]

#: Binds ?n only for s1/s2 — an unbound cell exercises NULL handling.
QUERY = (
    f"SELECT ?a ?n WHERE {{ ?a <{EX}knows> ?b . "
    f"OPTIONAL {{ ?a <{EX}name> ?n }} }}"
)


def _cursor(page_size=2, query=QUERY):
    service = QueryService(EmptyHeadedEngine(vertically_partition(TRIPLES)))
    return service.session().execute(query, page_size=page_size)


def _decoded(query=QUERY):
    service = QueryService(EmptyHeadedEngine(vertically_partition(TRIPLES)))
    return service.engine.decode(service.execute(query))


# ---------------------------------------------------------------------------
# Term typing
# ---------------------------------------------------------------------------
def test_json_term_typing():
    assert json_term(f"<{EX}a>") == {"type": "uri", "value": f"{EX}a"}
    assert json_term('"x"') == {"type": "literal", "value": "x"}
    assert json_term('"x"@en') == {
        "type": "literal",
        "value": "x",
        "xml:lang": "en",
    }
    assert json_term('"5"^^<http://int>') == {
        "type": "literal",
        "value": "5",
        "datatype": "http://int",
    }


@pytest.mark.parametrize(
    "lexical",
    [f"<{EX}a>", '"x"', '"x"@en-GB', '"5"^^<http://int>'],
)
def test_json_term_roundtrip(lexical):
    assert lexical_from_json(json_term(lexical)) == lexical


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------
def test_sparql_json_structure_and_rows():
    payload = json.loads(SERIALIZERS["json"].serialize(_cursor()))
    assert payload["head"]["vars"] == ["a", "n"]
    bindings = payload["results"]["bindings"]
    rows = [
        tuple(
            lexical_from_json(b[name]) if name in b else None
            for name in ("a", "n")
        )
        for b in bindings
    ]
    assert rows == _decoded()
    # Unbound variables are omitted from their binding object, per spec.
    assert any("n" not in b for b in bindings)


def test_json_streams_valid_pages():
    chunks = list(SERIALIZERS["json"].stream(_cursor(page_size=1)))
    assert len(chunks) > 3  # head + one chunk per page + tail
    json.loads(b"".join(chunks))  # the concatenation is valid JSON


def test_json_empty_result():
    cursor = _cursor(
        query=f"SELECT ?a WHERE {{ ?a <{EX}knows> <{EX}nobody> }}"
    )
    payload = json.loads(SERIALIZERS["json"].serialize(cursor))
    assert payload["results"]["bindings"] == []


# ---------------------------------------------------------------------------
# CSV / TSV
# ---------------------------------------------------------------------------
def test_csv_values_and_quoting():
    body = SERIALIZERS["csv"].serialize(_cursor()).decode()
    lines = body.split("\r\n")
    assert lines[0] == "a,n"
    # IRIs bare, literal content raw, embedded comma/newline quoted.
    assert f"{EX}s1,Alice" in body
    assert '"B,ob\nX"' in body


def test_tsv_is_lossless_term_syntax():
    body = SERIALIZERS["tsv"].serialize(_cursor()).decode()
    lines = body.rstrip("\n").split("\n")
    assert lines[0] == "?a\t?n"
    # First data row: full lossless term syntax, tags intact.
    a, n = lines[1].split("\t", 1)
    assert (a, n) == _decoded()[0]
    # Unbound cells serialize as empty fields.
    assert any(line.endswith("\t") for line in lines[1:])


# ---------------------------------------------------------------------------
# Binary
# ---------------------------------------------------------------------------
def test_tsv_escapes_framing_characters():
    triples = [
        (f"<{EX}s1>", f"<{EX}v>", '"a\tb"'),
        (f"<{EX}s2>", f"<{EX}v>", '"c\nd"'),
    ]
    service = QueryService(EmptyHeadedEngine(vertically_partition(triples)))
    cursor = service.session().execute(
        f"SELECT ?s ?o WHERE {{ ?s <{EX}v> ?o }}"
    )
    body = SERIALIZERS["tsv"].serialize(cursor).decode()
    lines = body.rstrip("\n").split("\n")
    # One header + one line per row: embedded tab/newline are escaped,
    # and each data line still has exactly one real cell separator.
    assert len(lines) == 3
    assert all(line.count("\t") == 1 for line in lines)
    assert '"a\\tb"' in body and '"c\\nd"' in body


def test_binary_roundtrip_including_nulls():
    columns, rows = read_binary(
        SERIALIZERS["binary"].serialize(_cursor(page_size=1))
    )
    assert columns == ("a", "n")
    assert rows == _decoded()
    assert any(value is None for row in rows for value in row)


def test_binary_rejects_other_payloads():
    # A taxonomy error (registered code), not a bare ValueError — the
    # serving layer maps unregistered exceptions to internal_error/500.
    with pytest.raises(ParseError):
        read_binary(b"nope")


# ---------------------------------------------------------------------------
# Negotiation
# ---------------------------------------------------------------------------
def test_serializer_for_explicit_name_wins():
    assert serializer_for("csv", "application/json").name == "csv"
    assert serializer_for("JSON").name == "json"


def test_serializer_for_accept_header():
    assert serializer_for(None, "text/csv").name == "csv"
    assert (
        serializer_for(None, "text/html, application/json;q=0.9").name
        == "json"
    )
    assert serializer_for(None, "text/html").name == "json"  # default
    assert serializer_for(None, None).name == "json"


def test_unknown_format_raises():
    with pytest.raises(UnsupportedFormatError) as excinfo:
        serializer_for("xml")
    assert excinfo.value.code == "unsupported_format"
    assert excinfo.value.http_status == 406
