"""Async front door: endpoint parity with the single-process server.

The server under test is a real :class:`ClusterHttpServer` — an asyncio
accept loop on an ephemeral loopback port fronting a two-worker pool —
and every body is compared against :class:`SparqlHttpServer` answering
the identical request over an identical store.
"""

import http.client
import json
import urllib.parse

import pytest

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.service import QueryService
from repro.service.cluster import ClusterHttpServer, ClusterQueryService
from repro.service.cluster.shm import shm_supported
from repro.service.http import SparqlHttpServer
from repro.storage.vertical import vertically_partition

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="shared memory unavailable in this sandbox"
)

EX = "http://ex/"
PREFIX = "repro-testchttp"


def _triples(n=30):
    return [
        (
            f"<{EX}s{i}>",
            f"<{EX}p{i % 3}>",
            f"<{EX}o{i % 5}>" if i % 4 else f'"lit{i}"@en',
        )
        for i in range(n)
    ]


@pytest.fixture(scope="module")
def cluster_server():
    cluster = ClusterQueryService(
        vertically_partition(_triples()), workers=2, prefix=PREFIX
    )
    with cluster:
        with ClusterHttpServer(cluster) as server:
            yield server


@pytest.fixture(scope="module")
def reference_server():
    service = QueryService(
        EmptyHeadedEngine(vertically_partition(_triples()))
    )
    with SparqlHttpServer(service, port=0) as server:
        yield server


def _request(url, method, path, body=None, headers=None):
    parsed = urllib.parse.urlsplit(url)
    connection = http.client.HTTPConnection(parsed.hostname, parsed.port)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return (
            response.status,
            response.getheader("Content-Type"),
            response.read(),
        )
    finally:
        connection.close()


def _sparql(params):
    return "/sparql?" + urllib.parse.urlencode(params)


QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}p0> ?o }}"


class TestParity:
    """Byte-for-byte agreement with the single-process front-end."""

    @pytest.mark.parametrize("format_name", ["json", "binary", "tsv", "csv"])
    def test_get_sparql_bodies_match(
        self, cluster_server, reference_server, format_name
    ):
        path = _sparql({"query": QUERY, "format": format_name})
        c_status, c_type, c_body = _request(cluster_server.url, "GET", path)
        r_status, r_type, r_body = _request(
            reference_server.url, "GET", path
        )
        assert (c_status, c_type, c_body) == (r_status, r_type, r_body)
        assert c_status == 200

    def test_get_sparql_paged_bodies_match(
        self, cluster_server, reference_server
    ):
        path = _sparql({"query": QUERY, "page_size": 3})
        assert _request(cluster_server.url, "GET", path) == _request(
            reference_server.url, "GET", path
        )

    def test_post_form_encoded_matches_get(self, cluster_server):
        body = urllib.parse.urlencode({"query": QUERY})
        status, _, post_body = _request(
            cluster_server.url,
            "POST",
            "/sparql",
            body=body,
            headers={"Content-Type": "application/x-www-form-urlencoded"},
        )
        assert status == 200
        _, _, get_body = _request(
            cluster_server.url, "GET", _sparql({"query": QUERY})
        )
        assert post_body == get_body

    def test_post_sparql_query_content_type(self, cluster_server):
        status, _, body = _request(
            cluster_server.url,
            "POST",
            "/sparql",
            body=QUERY,
            headers={"Content-Type": "application/sparql-query"},
        )
        assert status == 200
        assert json.loads(body)["results"]["bindings"]

    def test_template_parameters_match(
        self, cluster_server, reference_server
    ):
        path = _sparql(
            {
                "query": f"SELECT ?o WHERE {{ $who <{EX}p2> ?o }}",
                "$who": f"<{EX}s2>",
            }
        )
        assert _request(cluster_server.url, "GET", path) == _request(
            reference_server.url, "GET", path
        )

    def test_explain_matches(self, cluster_server, reference_server):
        path = "/explain?" + urllib.parse.urlencode({"query": QUERY})
        assert _request(cluster_server.url, "GET", path) == _request(
            reference_server.url, "GET", path
        )


class TestErrors:
    def test_parse_error_is_400_with_code(self, cluster_server):
        status, _, body = _request(
            cluster_server.url, "GET", _sparql({"query": "SELEC nope"})
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse_error"

    def test_missing_query_is_400(self, cluster_server):
        status, _, body = _request(cluster_server.url, "GET", "/sparql")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse_error"

    def test_unknown_path_is_404(self, cluster_server):
        status, _, body = _request(cluster_server.url, "GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"]["code"] == "not_found"

    def test_error_body_matches_single_process(
        self, cluster_server, reference_server
    ):
        path = _sparql({"query": "SELEC nope"})
        c_status, _, c_body = _request(cluster_server.url, "GET", path)
        r_status, _, r_body = _request(reference_server.url, "GET", path)
        assert (c_status, c_body) == (r_status, r_body)

    def test_bad_update_payload_is_400(self, cluster_server):
        status, _, body = _request(
            cluster_server.url,
            "POST",
            "/update",
            body=b"not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert json.loads(body)["error"]["code"] == "parse_error"


class TestStatsAndUpdate:
    def test_stats_reports_cluster_worker_count(self, cluster_server):
        status, _, body = _request(cluster_server.url, "GET", "/stats")
        assert status == 200
        stats = json.loads(body)
        assert stats["http"]["pool"]["worker_count"] == 2
        assert stats["cluster"]["worker_count"] == 2
        assert len(stats["cluster"]["workers"]) == 2

    def test_single_process_stats_reports_one_worker(self, reference_server):
        _, _, body = _request(reference_server.url, "GET", "/stats")
        assert json.loads(body)["http"]["pool"]["worker_count"] == 1

    def test_update_round_trip_visible_everywhere(self, cluster_server):
        probe = _sparql(
            {"query": f"SELECT ?o WHERE {{ <{EX}ghost> <{EX}p0> ?o }}"}
        )

        def rows():
            _, _, body = _request(cluster_server.url, "GET", probe)
            return json.loads(body)["results"]["bindings"]

        batch = [[f"<{EX}ghost>", f"<{EX}p0>", f"<{EX}o1>"]]
        status, _, body = _request(
            cluster_server.url,
            "POST",
            "/update",
            body=json.dumps({"add": batch}).encode(),
            headers={"Content-Type": "application/json"},
        )
        assert status == 200
        assert json.loads(body)["added"] == 1
        # More samples than workers: the batch is visible on all of them.
        for _ in range(6):
            assert len(rows()) == 1
        _request(
            cluster_server.url,
            "POST",
            "/update",
            body=json.dumps({"remove": batch}).encode(),
            headers={"Content-Type": "application/json"},
        )
        for _ in range(6):
            assert rows() == []


class TestKeepAlive:
    def test_many_requests_one_connection(self, cluster_server):
        parsed = urllib.parse.urlsplit(cluster_server.url)
        connection = http.client.HTTPConnection(
            parsed.hostname, parsed.port
        )
        try:
            for _ in range(5):
                connection.request("GET", _sparql({"query": QUERY}))
                response = connection.getresponse()
                body = response.read()
                assert response.status == 200
                assert json.loads(body)["results"]["bindings"]
        finally:
            connection.close()
