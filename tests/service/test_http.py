"""HTTP front-end: concurrency, wire conformance, error codes.

The server under test is a real :class:`SparqlHttpServer` on an
ephemeral loopback port — requests go through sockets, chunked
streaming, and the full session/cursor/serializer stack.
"""

import http.client
import json
import threading
import urllib.parse

import pytest

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.errors import ERROR_CODES
from repro.service import QueryService
from repro.service.formats import lexical_from_json, read_binary
from repro.service.http import SparqlHttpServer
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _triples(n=30):
    return [
        (
            f"<{EX}s{i}>",
            f"<{EX}p{i % 3}>",
            f"<{EX}o{i % 5}>" if i % 4 else f'"lit{i}"@en',
        )
        for i in range(n)
    ]


@pytest.fixture()
def server():
    service = QueryService(EmptyHeadedEngine(vertically_partition(_triples())))
    with SparqlHttpServer(service, port=0, max_workers=4) as srv:
        yield srv


def _get(server, path):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.getheader("Content-Type"), response.read()
    finally:
        connection.close()


def _post(server, path, body, content_type):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port)
    try:
        connection.request(
            "POST", path, body=body, headers={"Content-Type": content_type}
        )
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def _sparql(params):
    return "/sparql?" + urllib.parse.urlencode(params)


def _json_rows(body):
    payload = json.loads(body)
    columns = payload["head"]["vars"]
    return [
        tuple(
            lexical_from_json(binding[name]) if name in binding else None
            for name in columns
        )
        for binding in payload["results"]["bindings"]
    ]


# ---------------------------------------------------------------------------
# Concurrency: N threads x M templates == serial in-process execution
# ---------------------------------------------------------------------------
def test_concurrent_clients_match_serial_in_process(server):
    templates = [
        (f"SELECT ?s ?o WHERE {{ ?s <{EX}p0> ?o }}", {}),
        (f"SELECT ?s WHERE {{ ?s <{EX}p1> ?o }} ", {}),
        (f"SELECT ?o WHERE {{ $who <{EX}p2> ?o }}", {"$who": f"<{EX}s2>"}),
        (f"SELECT ?s ?p ?o WHERE {{ ?s ?p ?o }} LIMIT 7", {}),
        (
            f"SELECT ?s ?x WHERE {{ ?s <{EX}p0> ?o . "
            f"OPTIONAL {{ ?s <{EX}p1> ?x }} }}",
            {},
        ),
    ]
    service = server.service
    expected = {}
    for text, params in templates:
        values = {k[1:]: v for k, v in params.items()}
        expected[text] = service.engine.decode(
            service.execute(text, parameters=values)
        )

    n_threads, per_thread = 8, 6
    results: dict[tuple[int, int], tuple] = {}
    errors: list[BaseException] = []
    lock = threading.Lock()

    def client(thread_id: int) -> None:
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port)
        try:
            for i in range(per_thread):
                text, params = templates[(thread_id + i) % len(templates)]
                connection.request(
                    "GET", _sparql({"query": text, **params})
                )
                response = connection.getresponse()
                body = response.read()
                with lock:
                    results[(thread_id, i)] = (
                        text,
                        response.status,
                        body,
                    )
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(exc)
        finally:
            connection.close()

    threads = [
        threading.Thread(target=client, args=(t,)) for t in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    assert len(results) == n_threads * per_thread
    # Byte-level check: identical requests get byte-identical bodies,
    # and every body decodes to exactly the serial in-process rows.
    bodies_by_text: dict[str, set[bytes]] = {}
    for text, status, body in results.values():
        assert status == 200
        bodies_by_text.setdefault(text, set()).add(body)
        assert _json_rows(body) == expected[text]
    for text, bodies in bodies_by_text.items():
        assert len(bodies) == 1, f"non-deterministic bytes for {text!r}"


# ---------------------------------------------------------------------------
# Malformed requests and the error-code contract
# ---------------------------------------------------------------------------
def _error(server, path):
    status, _, body = _get(server, path)
    payload = json.loads(body)["error"]
    return status, payload["code"]


def test_malformed_query_is_400_parse_error(server):
    assert _error(server, _sparql({"query": "SELEC nope"})) == (
        400,
        "parse_error",
    )


def test_unsupported_construct_is_400_translate_error(server):
    # Parses, but OPTIONAL-in-OPTIONAL is rejected at translation.
    query = (
        f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o . OPTIONAL {{ "
        f"?o <{EX}p1> ?x . OPTIONAL {{ ?x <{EX}p2> ?y }} }} }}"
    )
    assert _error(server, _sparql({"query": query})) == (
        400,
        "translate_error",
    )


def test_missing_query_is_400(server):
    assert _error(server, "/sparql") == (400, "parse_error")


def test_unknown_parameter_is_400(server):
    query = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    assert _error(server, _sparql({"query": query, "oops": "1"})) == (
        400,
        "parse_error",
    )


def test_parameter_mismatch_is_400_parameter_error(server):
    template = f"SELECT ?o WHERE {{ $who <{EX}p0> ?o }}"
    assert _error(server, _sparql({"query": template})) == (
        400,
        "parameter_error",
    )
    assert _error(
        server,
        _sparql({"query": template, "$who": f"<{EX}s0>", "$bad": "x"}),
    ) == (400, "parameter_error")


def test_unknown_format_is_406(server):
    query = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    assert _error(server, _sparql({"query": query, "format": "xml"})) == (
        406,
        "unsupported_format",
    )


def test_bad_page_size_is_400(server):
    query = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    # Not an integer at all: a parse error.
    assert _error(
        server, _sparql({"query": query, "page_size": "zero"})
    ) == (400, "parse_error")
    # Well-formed but out of domain: a parameter error, like the
    # in-process cursor raises.
    assert _error(
        server, _sparql({"query": query, "page_size": "0"})
    ) == (400, "parameter_error")
    assert _error(
        server, _sparql({"query": query, "page_size": "-3"})
    ) == (400, "parameter_error")


def test_streamed_response_is_byte_identical(server):
    query = (
        f"SELECT ?s ?o WHERE {{ ?s <{EX}p0> ?o }} LIMIT 5 OFFSET 2"
    )
    plain = _get(server, _sparql({"query": query, "format": "json"}))
    streamed = _get(
        server,
        _sparql({"query": query, "format": "json", "stream": "true"}),
    )
    assert plain[0] == streamed[0] == 200
    assert plain[2] == streamed[2]


def test_bad_stream_flag_is_400(server):
    query = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    assert _error(
        server, _sparql({"query": query, "stream": "maybe"})
    ) == (400, "parse_error")


def test_unknown_endpoint_is_404(server):
    assert _error(server, "/nope") == (404, "not_found")


def test_malformed_update_body_is_400(server):
    status, body = _post(server, "/update", b"not json", "application/json")
    assert status == 400
    assert json.loads(body)["error"]["code"] == "parse_error"
    status, body = _post(
        server,
        "/update",
        json.dumps({"add": [["only", "two"]]}).encode(),
        "application/json",
    )
    assert status == 400


def test_error_code_table_is_consistent():
    for code, (status, cls) in ERROR_CODES.items():
        assert cls.code == code
        assert cls.http_status == status


# ---------------------------------------------------------------------------
# Formats, pagination, and POST bodies over the wire
# ---------------------------------------------------------------------------
def test_page_size_does_not_change_bytes(server):
    query = f"SELECT ?s ?p ?o WHERE {{ ?s ?p ?o }}"
    _, _, one = _get(server, _sparql({"query": query, "page_size": "1"}))
    _, _, big = _get(server, _sparql({"query": query, "page_size": "1000"}))
    assert one == big
    assert len(_json_rows(one)) == 30


def test_binary_format_roundtrips(server):
    query = f"SELECT ?s ?o WHERE {{ ?s <{EX}p0> ?o }}"
    _, content_type, body = _get(
        server, _sparql({"query": query, "format": "binary", "page_size": "2"})
    )
    assert content_type == "application/x-sparql-binary-rows"
    columns, rows = read_binary(body)
    assert columns == ("s", "o")
    service = server.service
    assert rows == service.engine.decode(service.execute(query))


def test_numeric_template_parameter_matches_by_value():
    # A FILTER template with a numeric $min: the wire value "30" must
    # behave like the in-process number 30, not like the string "30".
    triples = [
        (f"<{EX}a>", f"<{EX}age>", '"20"'),
        (f"<{EX}b>", f"<{EX}age>", '"40"'),
    ]
    service = QueryService(EmptyHeadedEngine(vertically_partition(triples)))
    template = (
        f"SELECT ?s WHERE {{ ?s <{EX}age> ?v . FILTER(?v > $min) }}"
    )
    expected = service.engine.decode(
        service.execute(template, parameters={"min": 30})
    )
    assert expected == [(f"<{EX}b>",)]
    with SparqlHttpServer(service, port=0) as srv:
        _, _, body = _get(
            srv, _sparql({"query": template, "$min": "30"})
        )
        assert _json_rows(body) == expected


def test_explain_rejects_unknown_and_duplicate_parameters(server):
    query = f"SELECT ?o WHERE {{ $who <{EX}p0> ?o }}"
    status, _, body = _get(
        server,
        "/explain?"
        + urllib.parse.urlencode({"query": query, "fromat": "json"}),
    )
    assert status == 400
    assert json.loads(body)["error"]["code"] == "parse_error"
    status, _, body = _get(
        server,
        "/explain?"
        + urllib.parse.urlencode(
            [("query", query), ("$who", "<a>"), ("$who", "<b>")]
        ),
    )
    assert status == 400


def test_post_form_and_raw_query_bodies(server):
    query = f"SELECT ?o WHERE {{ $who <{EX}p2> ?o }}"
    body = urllib.parse.urlencode(
        {"query": query, "$who": f"<{EX}s2>"}
    ).encode()
    status, response = _post(
        server, "/sparql", body, "application/x-www-form-urlencoded"
    )
    assert status == 200
    expected = _json_rows(response)

    plain = f"SELECT ?o WHERE {{ <{EX}s2> <{EX}p2> ?o }}"
    status, response = _post(
        server, "/sparql", plain.encode(), "application/sparql-query"
    )
    assert status == 200
    assert _json_rows(response) == expected


def test_update_visible_to_following_queries(server):
    query = f"SELECT ?o WHERE {{ <{EX}ghost> <{EX}p0> ?o }}"
    _, _, before = _get(server, _sparql({"query": query}))
    assert _json_rows(before) == []
    status, body = _post(
        server,
        "/update",
        json.dumps(
            {"add": [[f"<{EX}ghost>", f"<{EX}p0>", f"<{EX}o1>"]]}
        ).encode(),
        "application/json",
    )
    assert status == 200 and json.loads(body)["added"] == 1
    _, _, after = _get(server, _sparql({"query": query}))
    assert _json_rows(after) == [(f"<{EX}o1>",)]


def test_stats_and_explain_endpoints(server):
    status, _, body = _get(server, "/stats")
    payload = json.loads(body)
    assert status == 200 and payload["triples"] == 30
    query = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    status, content_type, body = _get(
        server, "/explain?" + urllib.parse.urlencode({"query": query})
    )
    assert status == 200
    assert content_type.startswith("text/plain")
    assert b"plan" in body


def test_stats_reports_keepalive_and_pool_metrics(server):
    query = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port)
    try:
        # Three requests down one keep-alive connection: the second and
        # third are reuses.
        for _ in range(2):
            connection.request("GET", _sparql({"query": query}))
            connection.getresponse().read()
        connection.request("GET", "/stats")
        payload = json.loads(connection.getresponse().read())
    finally:
        connection.close()

    assert payload["triples"] == 30  # session stats still present
    http_stats = payload["http"]
    assert http_stats["connections"]["opened"] >= 1
    assert http_stats["requests"]["served"] >= 3
    assert http_stats["requests"]["keepalive_reuses"] >= 2
    assert http_stats["pool"]["max_workers"] == 4
    assert http_stats["pool"]["max_pending"] == 64
    assert http_stats["pool"]["in_flight"] == 0
    assert http_stats["pool"]["in_flight_peak"] >= 1

    # A fresh connection is a new open, not a reuse.
    before = http_stats["connections"]["opened"]
    _, _, body = _get(server, "/stats")
    after = json.loads(body)["http"]["connections"]
    assert after["opened"] == before + 1
    # Closes are counted when the handler thread notices EOF, which may
    # lag the client's close() — poll rather than assert a snapshot.
    import time

    deadline = time.time() + 2.0
    while (
        server.http_stats()["connections"]["closed"] < before
        and time.time() < deadline
    ):
        time.sleep(0.02)
    assert server.http_stats()["connections"]["closed"] >= before


def test_capacity_error_when_admission_bound_hit():
    service = QueryService(EmptyHeadedEngine(vertically_partition(_triples())))
    with SparqlHttpServer(service, port=0, max_pending=1) as srv:
        # Hold the only admission slot, then issue a request.
        assert srv._admitted.acquire(blocking=False)
        try:
            status, code = (
                lambda r: (r[0], json.loads(r[2])["error"]["code"])
            )(_get(srv, _sparql({"query": f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"})))
            assert (status, code) == (503, "capacity")
        finally:
            srv._admitted.release()


def test_timeout_parameter_maps_to_503(server, monkeypatch):
    import time

    query = f"SELECT ?s WHERE {{ ?s <{EX}p0> ?o }}"
    statement = server.service.prepare(query)
    original = statement.execute

    def slow(**values):
        time.sleep(0.3)
        return original(**values)

    monkeypatch.setattr(statement, "execute", slow)
    status, code = (
        lambda r: (r[0], json.loads(r[2])["error"]["code"])
    )(_get(server, _sparql({"query": query, "timeout": "0.05"})))
    assert (status, code) == (503, "timeout")
    # The abandoned execution finishes in the background; its cursor
    # must be released, not leak a session slot forever.
    deadline = time.time() + 2.0
    while server.session.open_cursors() and time.time() < deadline:
        time.sleep(0.02)
    assert server.session.open_cursors() == 0
