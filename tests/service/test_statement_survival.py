"""Prepared statements surviving updates: bound plans are pruned, not
cleared, when the store's data-version epoch moves."""

from repro.engines import EmptyHeadedEngine
from repro.service import PreparedStatement, QueryService
from repro.storage.vertical import vertically_partition

EX = "http://ex/"

BASE = [
    (f"<{EX}a>", f"<{EX}advisor>", f"<{EX}p1>"),
    (f"<{EX}b>", f"<{EX}advisor>", f"<{EX}p2>"),
    (f"<{EX}a>", f"<{EX}age>", '"42"'),
    (f"<{EX}a>", f"<{EX}likes>", f"<{EX}b>"),
]

TEMPLATE = "SELECT ?x WHERE { ?x <http://ex/advisor> $prof }"


def _service():
    store = vertically_partition(BASE)
    return store, QueryService(EmptyHeadedEngine(store))


def test_conjunctive_bound_plans_survive_updates():
    store, service = _service()
    statement = service.prepare(TEMPLATE)
    statement.execute(prof=f"<{EX}p1>")
    statement.execute(prof=f"<{EX}p2>")
    assert statement.stats.bind_misses == 2

    store.add_triples([(f"<{EX}c>", f"<{EX}advisor>", f"<{EX}p1>")])
    rows = statement.execute_decoded(prof=f"<{EX}p1>")
    assert sorted(rows) == [(f"<{EX}a>",), (f"<{EX}c>",)]
    # No re-bind happened: both values' plans outlived the epoch bump.
    assert statement.stats.bind_misses == 2
    assert statement.stats.bind_hits >= 1
    assert statement.stats.bound_retained == 2
    assert statement.stats.invalidations == 1


def test_result_cache_still_drops_on_update():
    store, service = _service()
    statement = service.prepare(TEMPLATE)
    before = statement.execute(prof=f"<{EX}p1>")
    assert statement.execute(prof=f"<{EX}p1>") is before  # cached
    store.add_triples([(f"<{EX}c>", f"<{EX}advisor>", f"<{EX}p1>")])
    after = statement.execute(prof=f"<{EX}p1>")
    assert after is not before
    assert after.num_rows == before.num_rows + 1


def test_binding_for_dropped_table_is_pruned():
    store, service = _service()
    statement = service.prepare("SELECT ?x WHERE { ?x <http://ex/likes> ?y }")
    assert statement.execute().num_rows == 1
    store.remove_triples([(f"<{EX}a>", f"<{EX}likes>", f"<{EX}b>")])
    # The likes table is gone: the old binding must not survive.
    assert statement.execute().num_rows == 0
    assert statement.stats.bound_retained == 0


def test_provably_empty_binding_rebinds_after_update():
    store, service = _service()
    statement = service.prepare(TEMPLATE)
    ghost = f"<{EX}p9>"
    assert statement.execute(prof=ghost).num_rows == 0  # None binding
    store.add_triples([(f"<{EX}d>", f"<{EX}advisor>", ghost)])
    assert statement.execute_decoded(prof=ghost) == [(f"<{EX}d>",)]


def test_numeric_literal_bindings_are_not_retained():
    store, service = _service()
    engine = service.engine
    statement = PreparedStatement(
        engine, "SELECT ?x WHERE { ?x <http://ex/age> 42 }"
    )
    assert statement.execute().num_rows == 1
    # A new stored form of 42 widens the fan-out; the cached binding
    # must not survive the epoch bump.
    store.add_triples(
        [
            (
                f"<{EX}e>",
                f"<{EX}age>",
                '"42"^^<http://www.w3.org/2001/XMLSchema#integer>',
            )
        ]
    )
    assert statement.execute().num_rows == 2
    assert statement.stats.bound_retained == 0


def test_union_bindings_are_not_retained():
    store, service = _service()
    statement = service.prepare(
        "SELECT ?x WHERE { { ?x <http://ex/advisor> <http://ex/p1> } "
        "UNION { ?x <http://ex/mentor> <http://ex/p1> } }"
    )
    assert statement.execute_decoded() == [(f"<{EX}a>",)]
    # The mentor block was dropped at bind time (no such table); after
    # this update it must come back — a retained union plan would not.
    store.add_triples([(f"<{EX}m>", f"<{EX}mentor>", f"<{EX}p1>")])
    assert sorted(statement.execute_decoded()) == [
        (f"<{EX}a>",),
        (f"<{EX}m>",),
    ]
    assert statement.stats.bound_retained == 0
