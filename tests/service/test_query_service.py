"""QueryService: plan caching, warming, batching, and correctness."""

import pytest

from repro.engines import ALL_ENGINES
from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.engines.pairwise import ColumnStoreEngine
from repro.errors import ConfigError
from repro.rdf.vocabulary import RDF_TYPE
from repro.service import QueryService
from repro.storage.vertical import vertically_partition

EX = "http://ex/"
PERSON = f"<{EX}Person>"

TRIPLES = [
    (f"<{EX}alice>", RDF_TYPE, PERSON),
    (f"<{EX}bob>", RDF_TYPE, PERSON),
    (f"<{EX}alice>", f"<{EX}knows>", f"<{EX}bob>"),
    (f"<{EX}bob>", f"<{EX}knows>", f"<{EX}alice>"),
    (f"<{EX}alice>", f"<{EX}age>", '"34"'),
    (f"<{EX}bob>", f"<{EX}age>", '"25"'),
]

Q_PEOPLE = f"SELECT ?x WHERE {{ ?x a {PERSON} }}"
Q_KNOWS = f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y }}"
Q_FILTER = f"SELECT ?x WHERE {{ ?x <{EX}age> ?a . FILTER(?a > 30) }}"
Q_UNKNOWN_PREDICATE = f"SELECT ?x WHERE {{ ?x <{EX}nosuch> ?y }}"
Q_UNKNOWN_CONSTANT = (
    f"SELECT ?x WHERE {{ ?x <{EX}knows> <{EX}nobody> }}"
)


@pytest.fixture()
def store():
    return vertically_partition(TRIPLES)


@pytest.fixture()
def service(store):
    return QueryService(EmptyHeadedEngine(store))


def test_results_match_direct_engine_execution(store):
    for engine_cls in ALL_ENGINES:
        engine = engine_cls(store)
        service = QueryService(engine_cls(store))
        for text in (Q_PEOPLE, Q_KNOWS, Q_FILTER):
            assert (
                service.execute(text).to_set()
                == engine.execute_sparql(text).to_set()
            ), engine_cls.name


def test_repeat_query_hits_cache(service):
    service.execute(Q_PEOPLE)
    assert (service.stats.hits, service.stats.misses) == (0, 1)
    first = service.execute(Q_PEOPLE)
    second = service.execute(Q_PEOPLE)
    assert (service.stats.hits, service.stats.misses) == (2, 1)
    assert first.to_set() == second.to_set()
    assert service.stats.hit_rate == pytest.approx(2 / 3)


def test_cache_hit_skips_parse_and_plan(service, monkeypatch):
    """After the first execution, the SPARQL front-end is never invoked
    again for the same text — the definition of a plan-cache hit."""
    service.execute(Q_PEOPLE)

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("cache hit must not re-parse")

    monkeypatch.setattr(service.engine, "prepare_sparql", boom)
    result = service.execute(Q_PEOPLE)
    assert result.num_rows == 2


def test_lru_eviction(store):
    service = QueryService(EmptyHeadedEngine(store), cache_size=2)
    service.execute(Q_PEOPLE)
    service.execute(Q_KNOWS)
    service.execute(Q_FILTER)  # evicts Q_PEOPLE
    assert service.stats.evictions == 1
    assert service.cached_texts() == [Q_KNOWS, Q_FILTER]
    # Recently-used entries survive: touch Q_KNOWS, then add another.
    service.execute(Q_KNOWS)
    service.execute(Q_PEOPLE)
    assert Q_KNOWS in service.cached_texts()
    assert Q_FILTER not in service.cached_texts()


def test_cache_size_must_be_positive(store):
    with pytest.raises(ConfigError):
        QueryService(EmptyHeadedEngine(store), cache_size=0)


def test_execute_many_deduplicates_batch(service):
    results = service.execute_many([Q_PEOPLE, Q_KNOWS, Q_PEOPLE, Q_PEOPLE])
    assert len(results) == 4
    assert results[0] is results[2] is results[3]  # one execution shared
    assert results[0].to_set() != results[1].to_set()
    assert service.stats.executions == 2


def test_warm_builds_tries_without_executing(store):
    service = QueryService(EmptyHeadedEngine(store))
    warmed = service.warm([Q_PEOPLE, Q_KNOWS])
    assert warmed > 0
    # Warming counts as preparation: the next execute is a cache hit.
    before = service.stats.hits
    service.execute(Q_PEOPLE)
    assert service.stats.hits == before + 1


def test_warm_is_a_noop_for_load_time_indexed_engines(store):
    service = QueryService(ColumnStoreEngine(store))
    assert service.warm([Q_PEOPLE]) == 0
    assert service.execute(Q_PEOPLE).num_rows == 2


def test_provably_empty_queries_are_cached(service):
    for text in (Q_UNKNOWN_PREDICATE, Q_UNKNOWN_CONSTANT):
        result = service.execute(text)
        assert result.num_rows == 0
        again = service.execute(text)
        assert again.num_rows == 0
    assert service.stats.hits == 2


def test_execute_decoded(service):
    rows = set(service.execute_decoded(Q_PEOPLE))
    assert rows == {(f"<{EX}alice>",), (f"<{EX}bob>",)}


def test_clear_preserves_stats(service):
    service.execute(Q_PEOPLE)
    service.clear()
    assert service.cached_texts() == []
    assert service.stats.misses == 1
    service.execute(Q_PEOPLE)
    assert service.stats.misses == 2
