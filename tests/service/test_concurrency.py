"""Concurrent serving: thread-pool traffic must equal serial traffic.

Hammers the Engine and QueryService LRU caches from many threads
(including cold caches, so parse/plan/trie builds race), asserts the
returned rows are identical to serial execution, and checks the stats
counters stay consistent.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engines import ALL_ENGINES
from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.rdf.vocabulary import RDF_TYPE
from repro.service import QueryService
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _graph():
    triples = []
    for i in range(40):
        triples.append((f"<{EX}s{i}>", RDF_TYPE, f"<{EX}T{i % 4}>"))
        triples.append(
            (f"<{EX}s{i}>", f"<{EX}knows>", f"<{EX}s{(i * 7) % 40}>")
        )
        triples.append((f"<{EX}s{i}>", f"<{EX}age>", f'"{i}"'))
    return triples


QUERIES = [
    f"SELECT ?x WHERE {{ ?x a <{EX}T0> }}",
    f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y }}",
    f"SELECT ?x WHERE {{ ?x <{EX}age> ?a FILTER(?a > 10 && ?a < 30) }}",
    f"SELECT ?x WHERE {{ {{ ?x a <{EX}T1> }} UNION {{ ?x a <{EX}T2> }} }}",
    f"SELECT ?x ?p WHERE {{ ?x ?p <{EX}s0> }}",
    f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y . "
    f"OPTIONAL {{ ?y <{EX}age> ?a FILTER(?a > 20) }} }}",
]

TEMPLATE = f"SELECT ?x WHERE {{ ?x <{EX}knows> $who }}"


@pytest.fixture()
def store():
    return vertically_partition(_graph())


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_engine_execute_sparql_is_thread_safe(engine_cls, store):
    serial_engine = engine_cls(store)
    expected = [
        serial_engine.execute_sparql(text).to_set() for text in QUERIES
    ]
    # Fresh engine => cold parse/plan/trie caches race across threads.
    engine = engine_cls(store)
    batch = QUERIES * 6
    with ThreadPoolExecutor(max_workers=8) as pool:
        results = list(pool.map(engine.execute_sparql, batch))
    for text, result in zip(batch, results):
        assert result.to_set() == expected[QUERIES.index(text)], text


def test_execute_concurrent_equals_serial(store):
    service = QueryService(EmptyHeadedEngine(store))
    requests = []
    for i in range(10):
        requests.extend(QUERIES)
        requests.append((TEMPLATE, {"who": f"<{EX}s{i}>"}))
    serial = [
        r.to_set()
        for r in QueryService(EmptyHeadedEngine(store)).execute_concurrent(
            requests, max_workers=1
        )
    ]
    concurrent = [
        r.to_set()
        for r in service.execute_concurrent(requests, max_workers=8)
    ]
    assert concurrent == serial


def test_stats_stay_consistent_under_concurrency(store):
    service = QueryService(EmptyHeadedEngine(store))
    requests = (QUERIES * 8)[:40]
    service.execute_concurrent(requests, max_workers=8)
    stats = service.stats
    # Every request is one prepare() and one execution; counters must
    # not be lost to races.
    assert stats.hits + stats.misses == len(requests)
    assert stats.executions == len(requests)
    assert stats.misses >= len(set(requests))
    assert stats.evictions == 0


def test_statement_hammered_from_threads(store):
    service = QueryService(EmptyHeadedEngine(store))
    statement = service.prepare(TEMPLATE)
    values = [f"<{EX}s{i}>" for i in range(20)]
    expected = {
        who: statement.execute(who=who).to_set() for who in values
    }
    statement.clear()
    executions_before = statement.stats.executions

    def run(who):
        return who, statement.execute(who=who).to_set()

    with ThreadPoolExecutor(max_workers=8) as pool:
        for who, rows in pool.map(run, values * 5):
            assert rows == expected[who]
    assert (
        statement.stats.executions - executions_before == len(values) * 5
    )


def test_small_batches_run_inline(store):
    service = QueryService(EmptyHeadedEngine(store))
    assert service.execute_concurrent([], max_workers=4) == []
    (only,) = service.execute_concurrent([QUERIES[0]], max_workers=4)
    assert only.num_rows == 10
