"""PreparedStatement: templates, late binding, caches, invalidation."""

import pytest

from repro.engines import ALL_ENGINES
from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.errors import ConfigError
from repro.rdf.vocabulary import RDF_TYPE
from repro.service import PreparedStatement, QueryService
from repro.storage.vertical import vertically_partition

EX = "http://ex/"
PERSON = f"<{EX}Person>"

TRIPLES = [
    (f"<{EX}alice>", RDF_TYPE, PERSON),
    (f"<{EX}bob>", RDF_TYPE, PERSON),
    (f"<{EX}alice>", f"<{EX}knows>", f"<{EX}bob>"),
    (f"<{EX}bob>", f"<{EX}knows>", f"<{EX}carol>"),
    (f"<{EX}alice>", f"<{EX}age>", '"34"'),
    (f"<{EX}bob>", f"<{EX}age>", '"25"'),
]

TEMPLATE = f"SELECT ?x WHERE {{ ?x <{EX}knows> $who }}"


@pytest.fixture()
def store():
    return vertically_partition(TRIPLES)


@pytest.fixture()
def service(store):
    return QueryService(EmptyHeadedEngine(store))


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_template_matches_inlined_constant(engine_cls, store):
    engine = engine_cls(store)
    statement = PreparedStatement(engine, TEMPLATE)
    for who in (f"<{EX}bob>", f"<{EX}carol>", f"<{EX}nobody>"):
        inlined = TEMPLATE.replace("$who", who)
        assert (
            statement.execute(who=who).to_set()
            == engine.execute_sparql(inlined).to_set()
        ), who


def test_one_parse_serves_the_family(service, monkeypatch):
    statement = service.prepare(TEMPLATE)

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("template execution must not re-parse")

    monkeypatch.setattr(service.engine, "prepare_sparql", boom)
    assert statement.execute(who=f"<{EX}bob>").num_rows == 1
    assert statement.execute(who=f"<{EX}carol>").num_rows == 1
    # And the service hands back the same statement without parsing.
    assert service.prepare(TEMPLATE) is statement


def test_new_values_skip_planning(service, monkeypatch):
    """Re-executing with new parameters only re-binds constants: the
    engine's planner is never consulted after the first value."""
    statement = service.prepare(TEMPLATE)
    statement.execute(who=f"<{EX}bob>")

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("new parameter values must not re-plan")

    monkeypatch.setattr(service.engine.planner, "plan", boom)
    assert statement.execute(who=f"<{EX}carol>").num_rows == 1


def test_repeat_values_hit_bound_and_result_caches(service):
    statement = service.prepare(TEMPLATE)
    first = statement.execute(who=f"<{EX}bob>")
    again = statement.execute(who=f"<{EX}bob>")
    assert first is again  # served from the result cache
    assert statement.stats.result_hits == 1
    assert statement.stats.bind_misses == 1
    assert statement.stats.executions == 2


def test_result_cache_can_be_disabled(store):
    statement = PreparedStatement(
        EmptyHeadedEngine(store), TEMPLATE, result_cache_size=0
    )
    first = statement.execute(who=f"<{EX}bob>")
    again = statement.execute(who=f"<{EX}bob>")
    assert first is not again
    assert first.to_set() == again.to_set()
    assert statement.stats.bind_hits == 1  # bound plan still reused


def test_wrong_parameters_are_rejected(service):
    statement = service.prepare(TEMPLATE)
    with pytest.raises(ConfigError, match="missing: who"):
        statement.execute()
    with pytest.raises(ConfigError, match="unknown: extra"):
        statement.execute(who=f"<{EX}bob>", extra="x")


def test_plain_query_is_a_parameterless_statement(service):
    statement = service.prepare(
        f"SELECT ?x WHERE {{ ?x a {PERSON} }}"
    )
    assert statement.parameters == frozenset()
    assert statement.execute().num_rows == 2


def test_numeric_parameter_matches_by_value(service):
    statement = service.prepare(
        f"SELECT ?x WHERE {{ ?x <{EX}age> $age }}"
    )
    assert statement.execute_decoded(age=34) == [(f"<{EX}alice>",)]
    assert statement.execute_decoded(age=25) == [(f"<{EX}bob>",)]
    assert statement.execute_decoded(age=99) == []


def test_filter_parameter(service):
    statement = service.prepare(
        f"SELECT ?x WHERE {{ ?x <{EX}age> ?a FILTER(?a > $min) }}"
    )
    assert statement.execute_decoded(min=30) == [(f"<{EX}alice>",)]
    assert len(statement.execute_decoded(min=20)) == 2


def test_predicate_parameter(service):
    statement = service.prepare(
        f"SELECT ?x ?y WHERE {{ ?x $p ?y }}"
    )
    rows = statement.execute_decoded(p=f"<{EX}knows>")
    assert sorted(rows) == [
        (f"<{EX}alice>", f"<{EX}bob>"),
        (f"<{EX}bob>", f"<{EX}carol>"),
    ]


def test_executemany_in_order(service):
    statement = service.prepare(TEMPLATE)
    results = statement.executemany(
        [{"who": f"<{EX}bob>"}, {"who": f"<{EX}nobody>"},
         {"who": f"<{EX}bob>"}]
    )
    assert [r.num_rows for r in results] == [1, 0, 1]
    assert results[0] is results[2]


def test_add_triples_invalidates_bound_plans_and_results(service, store):
    statement = service.prepare(TEMPLATE)
    assert statement.execute_decoded(who=f"<{EX}dave>") == []
    store.add_triples([(f"<{EX}carol>", f"<{EX}knows>", f"<{EX}dave>")])
    assert statement.execute_decoded(who=f"<{EX}dave>") == [
        (f"<{EX}carol>",)
    ]
    assert statement.stats.invalidations == 1


def test_remove_triples_invalidates_too(service, store):
    statement = service.prepare(TEMPLATE)
    assert statement.execute(who=f"<{EX}bob>").num_rows == 1
    store.remove_triples(
        [(f"<{EX}alice>", f"<{EX}knows>", f"<{EX}bob>")]
    )
    assert statement.execute(who=f"<{EX}bob>").num_rows == 0


def test_provably_empty_binding_is_cached(service):
    statement = service.prepare(TEMPLATE)
    empty = statement.execute(who=f"<{EX}nobody>")
    assert empty.num_rows == 0
    assert empty.attributes == ("x",)
    statement.execute(who=f"<{EX}nobody>")
    assert statement.stats.bind_misses == 1


def test_service_execute_with_parameters(service):
    rows = service.execute_decoded(
        TEMPLATE, parameters={"who": f"<{EX}bob>"}
    )
    assert rows == [(f"<{EX}alice>",)]
    assert service.executemany(
        TEMPLATE, [{"who": f"<{EX}bob>"}, {"who": f"<{EX}carol>"}]
    )[1].num_rows == 1


def test_statement_cache_size_validation(store):
    engine = EmptyHeadedEngine(store)
    with pytest.raises(ConfigError):
        PreparedStatement(engine, TEMPLATE, bound_cache_size=0)
    with pytest.raises(ConfigError):
        PreparedStatement(engine, TEMPLATE, result_cache_size=-1)
