"""Concurrent readers racing add/remove_triples and delta compaction.

The guarantee under test: a query executing while updates (and
threshold compactions) land observes exactly one committed epoch — its
rows equal the store's content either before or after some batch, never
a torn mixture — and after the writer quiesces every engine converges
on the final content. The store is configured to compact on every
batch, so the readers also race main-segment swaps.
"""

import random
import threading

import pytest

from repro.engines import ALL_ENGINES
from repro.service import QueryService
from repro.storage.vertical import DeltaConfig, vertically_partition

EX = "http://ex/"

BASE = [
    (f"<{EX}s{i}>", f"<{EX}knows>", f"<{EX}s{(i + 1) % 6}>")
    for i in range(6)
] + [
    (f"<{EX}s{i}>", f"<{EX}likes>", f"<{EX}s{(i + 2) % 6}>")
    for i in range(6)
]

EXTRA = [
    (f"<{EX}g{i}>", f"<{EX}knows>", f"<{EX}g{i + 1}>") for i in range(4)
]

QUERY = (
    "SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y }"
)
JOIN_QUERY = (
    "SELECT ?x WHERE { ?x <http://ex/knows> ?y . "
    "?y <http://ex/likes> ?z }"
)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_readers_race_updates_and_compaction(engine_cls):
    store = vertically_partition(BASE)
    # Compact on every batch: readers race main-segment swaps too.
    store.delta_config = DeltaConfig(compact_fraction=0.0)
    service = QueryService(engine_cls(store))

    def rows_for(triples):
        reference = vertically_partition(sorted(triples))
        engine = engine_cls(reference)
        return {
            text: frozenset(engine.decode(engine.execute_sparql(text)))
            for text in (QUERY, JOIN_QUERY)
        }

    without_extra = rows_for(BASE)
    with_extra = rows_for(BASE + EXTRA)
    allowed = {
        QUERY: {without_extra[QUERY], with_extra[QUERY]},
        JOIN_QUERY: {without_extra[JOIN_QUERY], with_extra[JOIN_QUERY]},
    }
    service.execute(QUERY), service.execute(JOIN_QUERY)  # warm

    stop = threading.Event()
    failures: list[str] = []

    def writer():
        rng = random.Random(0)
        for _ in range(60):
            store.add_triples(EXTRA)
            if rng.random() < 0.5:
                store.remove_triples(EXTRA[:2])
            store.remove_triples(EXTRA)
        stop.set()

    def reader():
        engine = service.engine
        while not stop.is_set():
            for text in (QUERY, JOIN_QUERY):
                try:
                    rows = frozenset(
                        engine.decode(service.execute(text))
                    )
                except Exception as exc:  # noqa: BLE001 - recorded below
                    failures.append(f"{text}: raised {exc!r}")
                    stop.set()
                    return
                if text == QUERY and rows not in {
                    without_extra[QUERY],
                    with_extra[QUERY],
                    # the partial state after removing EXTRA[:2]
                    frozenset(with_extra[QUERY])
                    - {
                        (f"<{EX}g0>", f"<{EX}g1>"),
                        (f"<{EX}g1>", f"<{EX}g2>"),
                    },
                }:
                    failures.append(f"torn read: {sorted(rows)!r}")
                    stop.set()
                    return
                if text == JOIN_QUERY and rows not in allowed[JOIN_QUERY]:
                    failures.append(f"torn join read: {sorted(rows)!r}")
                    stop.set()
                    return

    readers = [threading.Thread(target=reader) for _ in range(3)]
    writer_thread = threading.Thread(target=writer)
    for thread in readers:
        thread.start()
    writer_thread.start()
    writer_thread.join(timeout=60)
    for thread in readers:
        thread.join(timeout=60)
    assert not failures, failures[:3]
    assert store.compactions > 0  # the race really included compactions

    # Quiesced: every engine and the service converge on final content.
    final = frozenset(
        service.engine.decode(service.execute(QUERY))
    )
    assert final == without_extra[QUERY]


def test_concurrent_batch_racing_updates_is_serial_identical():
    """execute_concurrent while a writer mutates: each result matches a
    committed state, and a post-quiescence batch is serial-identical."""
    store = vertically_partition(BASE)
    store.delta_config = DeltaConfig(compact_fraction=0.0)
    service = QueryService(ALL_ENGINES[0](store))
    requests = [QUERY, JOIN_QUERY] * 4

    done = threading.Event()

    def writer():
        for _ in range(30):
            store.add_triples(EXTRA)
            store.remove_triples(EXTRA)
        done.set()

    thread = threading.Thread(target=writer)
    thread.start()
    while not done.is_set():
        service.execute_concurrent(requests, max_workers=4)
    thread.join(timeout=60)

    serial = [r.to_set() for r in service.execute_concurrent(requests, 1)]
    concurrent = [
        r.to_set() for r in service.execute_concurrent(requests, 4)
    ]
    assert serial == concurrent
