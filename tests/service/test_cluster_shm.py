"""Shared-memory segment store: publish/attach, refcounts, reclaim."""

import multiprocessing
import os

import numpy as np
import pytest

from repro.errors import SegmentAttachError, SegmentRetiredError
from repro.service.cluster.shm import (
    SegmentPublisher,
    attach_shared_memory,
    attach_snapshot,
    create_shared_memory,
    detach,
    publish_snapshot,
    reclaim_stale,
    shm_dir,
    shm_supported,
    stale_segments,
    unlink_segment,
)
from repro.storage.vertical import VerticallyPartitionedStore, vertically_partition

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="shared memory unavailable in this sandbox"
)

EX = "http://ex/"
PREFIX = "repro-testshm"


def _triples(n=40):
    return [
        (
            f"<{EX}s{i}>",
            f"<{EX}p{i % 4}>",
            f"<{EX}o{i % 7}>" if i % 3 else f'"lit{i}"',
        )
        for i in range(n)
    ]


def _store():
    return vertically_partition(_triples())


def _segment_names():
    directory = shm_dir()
    if directory is None:
        return []
    return sorted(
        p.name for p in directory.iterdir() if p.name.startswith(PREFIX)
    )


# ----------------------------------------------------------------------
# Snapshot round-trip through a segment
# ----------------------------------------------------------------------
class TestSnapshotRoundtrip:
    def test_attach_reproduces_store(self):
        store = _store()
        snapshot = store.export_snapshot()
        segment = publish_snapshot(snapshot, f"{PREFIX}-rt")
        try:
            attached, handle = attach_snapshot(f"{PREFIX}-rt")
            try:
                clone = VerticallyPartitionedStore.from_snapshot(attached)
                assert clone.num_triples == store.num_triples
                assert clone.data_version == store.data_version
                assert sorted(clone.tables) == sorted(store.tables)
                for name, relation in store.tables.items():
                    other = clone.tables[name]
                    for attribute in relation.attributes:
                        np.testing.assert_array_equal(
                            relation.column(attribute),
                            other.column(attribute),
                        )
            finally:
                detach(handle)
        finally:
            segment.close()
            unlink_segment(segment)

    def test_attached_columns_are_readonly_views(self):
        store = _store()
        segment = publish_snapshot(store.export_snapshot(), f"{PREFIX}-ro")
        try:
            attached, handle = attach_snapshot(f"{PREFIX}-ro")
            try:
                table = next(iter(attached.tables.values()))
                column = table.column(table.attributes[0])
                assert not column.flags.writeable
                with pytest.raises(ValueError):
                    column[0] = 1
            finally:
                detach(handle)
        finally:
            segment.close()
            unlink_segment(segment)

    def test_attach_missing_name_is_retired_error(self):
        with pytest.raises(SegmentRetiredError):
            attach_shared_memory(f"{PREFIX}-never-existed")

    def test_attach_garbage_is_attach_error(self):
        segment = create_shared_memory(f"{PREFIX}-garbage", 64)
        try:
            segment.buf[:7] = b"garbage"
            with pytest.raises(SegmentAttachError):
                attach_snapshot(f"{PREFIX}-garbage")
        finally:
            segment.close()
            unlink_segment(segment)


# ----------------------------------------------------------------------
# Publisher lifecycle
# ----------------------------------------------------------------------
class TestSegmentPublisher:
    def test_publish_dedups_unchanged_data_version(self):
        store = _store()
        with SegmentPublisher(store, prefix=PREFIX) as publisher:
            first = publisher.publish()
            second = publisher.publish()
            assert first == second
            assert publisher.published == 1

    def test_new_epoch_retires_previous(self):
        store = _store()
        with SegmentPublisher(store, prefix=PREFIX) as publisher:
            epoch1, name1 = publisher.publish()
            store.add_triples([(f"<{EX}new>", f"<{EX}p0>", f"<{EX}o0>")])
            epoch2, name2 = publisher.publish()
            assert epoch2 != epoch1 and name2 != name1
            # epoch1 had no pins: its segment is already unlinked.
            with pytest.raises(SegmentRetiredError):
                attach_shared_memory(name1)
            with pytest.raises(SegmentRetiredError):
                publisher.acquire(epoch1)

    def test_pinned_epoch_survives_retirement_until_release(self):
        store = _store()
        with SegmentPublisher(store, prefix=PREFIX) as publisher:
            epoch1, name1 = publisher.publish()
            acquired = publisher.acquire(epoch1)
            assert acquired == name1
            store.add_triples([(f"<{EX}new>", f"<{EX}p0>", f"<{EX}o0>")])
            publisher.publish()  # retires epoch1, but it is pinned
            snapshot, handle = attach_snapshot(name1)  # still attachable
            assert snapshot.num_triples == store.num_triples - 1
            detach(handle)
            publisher.release(epoch1)  # last pin gone -> unlinked
            with pytest.raises(SegmentRetiredError):
                attach_shared_memory(name1)

    def test_close_unlinks_everything(self):
        store = _store()
        publisher = SegmentPublisher(store, prefix=PREFIX)
        _, name = publisher.publish()
        publisher.acquire(publisher.current_epoch)  # even pinned epochs
        publisher.close()
        assert _segment_names() == []
        with pytest.raises(SegmentRetiredError):
            attach_shared_memory(name)


# ----------------------------------------------------------------------
# Stale reclamation (publisher killed -9)
# ----------------------------------------------------------------------
def _dead_pid() -> int:
    process = multiprocessing.get_context("fork").Process(target=lambda: None)
    process.start()
    process.join()
    return process.pid


class TestReclaimStale:
    def test_reclaims_only_dead_owners(self):
        dead = _dead_pid()
        stale_name = f"{PREFIX}-{dead:x}-e1"
        live_name = f"{PREFIX}-{os.getpid():x}-e1"
        stale = create_shared_memory(stale_name, 32)
        stale.close()
        live = create_shared_memory(live_name, 32)
        try:
            assert stale_segments(PREFIX) == [stale_name]
            reclaimed = reclaim_stale(PREFIX)
            assert reclaimed == [stale_name]
            assert stale_segments(PREFIX) == []
            # The live publisher's segment is untouched.
            assert live_name in _segment_names()
        finally:
            live.close()
            unlink_segment(live)

    def test_publisher_restart_reclaims(self):
        dead = _dead_pid()
        leaked = create_shared_memory(f"{PREFIX}-{dead:x}-e7", 32)
        leaked.close()
        from repro.service.cluster.pool import WorkerPool

        pool = WorkerPool(_store(), workers=1, prefix=PREFIX)
        try:
            pool.start()
            assert f"{PREFIX}-{dead:x}-e7" in pool.reclaimed
        finally:
            pool.close()
        assert _segment_names() == []
