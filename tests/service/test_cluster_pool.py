"""Worker pool: serving, crash retry, respawn, spawn-retry, differential.

Fault injection uses real ``kill -9`` on real forked processes — the
pool must hide the crash from the client (retry on a sibling) and heal
the fleet in the background.
"""

import os
import signal
import threading
import time

import pytest

from repro.engines import ENGINE_NAMES
from repro.errors import ParseError, QueryTimeoutError
from repro.service.cluster import frames
from repro.service.cluster.shm import shm_dir, shm_supported
from repro.service.cluster.service import ClusterQueryService
from repro.service.protocol import UpdateRequest
from repro.service.query_service import QueryService
from repro.storage.vertical import vertically_partition

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="shared memory unavailable in this sandbox"
)

EX = "http://ex/"
PREFIX = "repro-testpool"

QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}p0> ?o }}"


def _triples(n=60):
    return [
        (
            f"<{EX}s{i}>",
            f"<{EX}p{i % 3}>",
            f"<{EX}o{i % 5}>" if i % 4 else f'"lit{i}"',
        )
        for i in range(n)
    ]


def _store():
    return vertically_partition(_triples())


def _segment_names():
    directory = shm_dir()
    if directory is None:
        return []
    return sorted(
        p.name for p in directory.iterdir() if p.name.startswith(PREFIX)
    )


def _wait_for(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture()
def cluster():
    service = ClusterQueryService(
        _store(),
        workers=2,
        prefix=PREFIX,
        allow_test_hooks=True,
        checkout_timeout_s=30.0,
        timeout_grace_s=0.2,
    )
    with service:
        yield service
    assert _segment_names() == [], "segments leaked past close()"


class TestServing:
    def test_matches_in_process_rows(self, cluster):
        local = QueryService(
            ENGINE_NAMES["emptyheaded"](cluster.store)
        ).execute_decoded(QUERY)
        assert cluster.execute_decoded(QUERY) == local

    def test_requests_round_robin_across_workers(self, cluster):
        for _ in range(6):
            cluster.execute_decoded(QUERY)
        stats = cluster.stats()["cluster"]
        assert stats["worker_count"] == 2
        assert [w["requests"] > 0 for w in stats["workers"]] == [True, True]

    def test_worker_error_carries_taxonomy_code(self, cluster):
        with pytest.raises(ParseError):
            cluster.execute_decoded("SELEC nope")

    def test_timeout_surfaces_as_query_timeout(self, cluster):
        with pytest.raises(QueryTimeoutError):
            cluster.session().execute(
                QUERY,
                parameters={"__test_delay_s": 2.0},
                timeout_s=0.05,
            )

    def test_update_visible_on_every_worker(self, cluster):
        session = cluster.session()
        response = session.update(
            UpdateRequest(add=((f"<{EX}ghost>", f"<{EX}p0>", f"<{EX}o0>"),))
        )
        assert response.added == 1
        probe = f"SELECT ?o WHERE {{ <{EX}ghost> <{EX}p0> ?o }}"
        # More queries than workers: every worker must answer with it.
        for _ in range(6):
            assert cluster.execute_decoded(probe) == [(f"<{EX}o0>",)]
        session.update(
            UpdateRequest(
                remove=((f"<{EX}ghost>", f"<{EX}p0>", f"<{EX}o0>"),)
            )
        )
        for _ in range(6):
            assert cluster.execute_decoded(probe) == []

    def test_epoch_lag_zero_after_update(self, cluster):
        cluster.session().update(
            UpdateRequest(add=((f"<{EX}g2>", f"<{EX}p1>", f"<{EX}o1>"),))
        )
        stats = cluster.stats()["cluster"]
        assert all(w["epoch_lag"] == 0 for w in stats["workers"])


class TestCrashRecovery:
    def _busy_worker(self, pool):
        """The handle currently serving a request (not in the free queue)."""
        with pool._update_lock:
            handles = list(pool._handles.values())
        free_ids = {h.worker_id for h in list(pool._free.queue)}
        busy = [h for h in handles if h.worker_id not in free_ids]
        assert len(busy) == 1
        return busy[0]

    def test_kill9_mid_query_retries_on_sibling(self, cluster):
        pool = cluster.pool
        result: dict = {}

        def run():
            result["rows"] = cluster.session().execute(
                QUERY, parameters={"__test_delay_s": 1.5}
            ).fetch_all()

        thread = threading.Thread(target=run)
        thread.start()
        assert _wait_for(lambda: len(pool._free.queue) == 1, timeout_s=5)
        victim = self._busy_worker(pool)
        os.kill(victim.pid, signal.SIGKILL)
        thread.join(timeout=30)
        assert not thread.is_alive()
        # The client never saw the crash: full, correct rows.
        local = QueryService(
            ENGINE_NAMES["emptyheaded"](cluster.store)
        ).execute_decoded(QUERY)
        assert result["rows"] == local
        assert pool.retries >= 1

    def test_fleet_heals_after_kill(self, cluster):
        pool = cluster.pool
        victim = next(iter(pool._handles.values()))
        os.kill(victim.pid, signal.SIGKILL)
        assert _wait_for(
            lambda: pool.respawns >= 1 and pool.worker_count() == 2
        )
        # The respawned worker serves correctly.
        for _ in range(4):
            assert cluster.execute_decoded(QUERY)

    def test_respawned_worker_catches_up_replay_log(self, cluster):
        session = cluster.session()
        session.update(
            UpdateRequest(add=((f"<{EX}late>", f"<{EX}p0>", f"<{EX}o1>"),))
        )
        pool = cluster.pool
        victim = next(iter(pool._handles.values()))
        os.kill(victim.pid, signal.SIGKILL)
        assert _wait_for(
            lambda: pool.respawns >= 1 and pool.worker_count() == 2
        )
        probe = f"SELECT ?o WHERE {{ <{EX}late> <{EX}p0> ?o }}"
        for _ in range(6):
            assert cluster.execute_decoded(probe) == [(f"<{EX}o1>",)]


class TestSpawnRetry:
    def test_stale_name_mid_attach_republishes_and_recovers(self):
        """A worker handed a vanished segment name reports HELLO ERR
        ``segment_retired``; the pool republishes and retries."""
        from repro.service.cluster.pool import WorkerPool

        pool = WorkerPool(_store(), workers=1, prefix=PREFIX)
        publisher = pool.publisher
        real_acquire = publisher.acquire
        calls = {"n": 0}

        def flaky_acquire(epoch):
            name = real_acquire(epoch)  # keep the pin _forget releases
            calls["n"] += 1
            if calls["n"] == 1:
                # Simulate the epoch being swept between acquire and
                # the worker's attach: hand out a name that is gone.
                return f"{PREFIX}-{os.getpid():x}-e999"
            return name

        publisher.acquire = flaky_acquire
        try:
            pool.start()
            assert calls["n"] >= 2  # first attempt failed, retried
            response = pool.request(
                frames.QUERY,
                {"text": QUERY, "parameters": {}, "page_size": 64},
            )
            assert response  # served after recovery
        finally:
            publisher.acquire = real_acquire
            pool.close()
        assert _segment_names() == []


ENGINES = sorted(ENGINE_NAMES)


class TestDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_cluster_matches_single_process_with_midstream_updates(
        self, engine
    ):
        """cluster ≡ single-process across every engine, including
        visibility of add/remove batches applied mid-stream."""
        reference_store = _store()
        reference = QueryService(ENGINE_NAMES[engine](reference_store))
        cluster_store = _store()
        queries = [
            QUERY,
            f"SELECT ?s WHERE {{ ?s <{EX}p1> <{EX}o1> }}",
            f"SELECT ?s ?p ?o WHERE {{ ?s ?p ?o }}",
        ]
        batches = [
            ((f"<{EX}d{i}>", f"<{EX}p{i % 3}>", f'"v{i}"'),)
            for i in range(3)
        ]
        with ClusterQueryService(
            cluster_store, engine=engine, workers=2, prefix=PREFIX
        ) as cluster:
            session = cluster.session()
            for batch in batches:
                for text in queries:
                    assert sorted(
                        cluster.execute_decoded(text)
                    ) == sorted(reference.execute_decoded(text)), (
                        engine,
                        text,
                    )
                session.update(UpdateRequest(add=batch))
                reference_store.add_triples(batch)
            # Remove the middle batch mid-stream and re-check.
            session.update(UpdateRequest(remove=batches[1]))
            reference_store.remove_triples(batches[1])
            for text in queries:
                assert sorted(cluster.execute_decoded(text)) == sorted(
                    reference.execute_decoded(text)
                ), (engine, text)
        assert _segment_names() == []
