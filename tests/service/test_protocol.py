"""Session/cursor protocol: lifecycle, paging, deadlines, capacity."""

import pytest

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.errors import (
    CapacityError,
    ConfigError,
    CursorClosedError,
    CursorExhaustedError,
    ParameterError,
    ParseError,
    QueryTimeoutError,
    SessionClosedError,
    SessionError,
    UnknownCursorError,
)
from repro.service import QueryService
from repro.service.protocol import QueryRequest, UpdateRequest
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _store(n=10):
    return vertically_partition(
        [(f"<{EX}s{i}>", f"<{EX}p>", f"<{EX}o{i % 3}>") for i in range(n)]
    )


def _service(n=10):
    return QueryService(EmptyHeadedEngine(_store(n)))


QUERY = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"


# ---------------------------------------------------------------------------
# Cursor paging
# ---------------------------------------------------------------------------
def test_cursor_pages_cover_rows_in_order():
    service = _service(10)
    session = service.session()
    cursor = session.execute(QUERY, page_size=3)
    assert cursor.columns == ("s", "o")
    assert cursor.num_rows == 10
    pages = list(cursor.pages())
    assert [len(page.rows) for page in pages] == [3, 3, 3, 1]
    assert [page.offset for page in pages] == [0, 3, 6, 9]
    assert [page.done for page in pages] == [False, False, False, True]
    rows = [row for page in pages for row in page.rows]
    assert rows == service.engine.decode(service.execute(QUERY))


def test_fetch_after_final_page_raises_typed_error():
    session = _service(2).session()
    cursor = session.execute(QUERY, page_size=10)
    first = cursor.fetch()
    assert first.done and len(first.rows) == 2
    with pytest.raises(CursorExhaustedError) as excinfo:
        cursor.fetch()
    # Session-protocol misuse: code "session_error", HTTP 409.
    assert excinfo.value.code == "session_error"
    assert excinfo.value.http_status == 409


def test_first_fetch_on_empty_result_is_a_done_page_not_an_error():
    session = _service(2).session()
    cursor = session.execute(
        f"SELECT ?s WHERE {{ ?s <{EX}p> <{EX}nothing> }}"
    )
    page = cursor.fetch()
    assert page.done and page.rows == ()
    with pytest.raises(CursorExhaustedError):
        cursor.fetch()


def test_fetch_all_and_iteration_match():
    service = _service(7)
    session = service.session()
    rows = session.execute(QUERY, page_size=2).fetch_all()
    iterated = list(session.execute(QUERY, page_size=3))
    assert rows == iterated


def test_cursor_pagination_interacts_with_limit_offset():
    service = _service(10)
    session = service.session()
    full = session.execute(QUERY).fetch_all()
    sliced = session.execute(QUERY + " LIMIT 5 OFFSET 2", page_size=2)
    rows = sliced.fetch_all()
    # The query-level slice happens in the engine; the cursor then pages
    # over exactly those 5 rows.
    assert rows == full[2:7]
    assert sliced.num_rows == 5


def test_cursor_survives_mid_stream_update():
    service = _service(10)
    store = service.engine.store
    session = service.session()
    cursor = session.execute(QUERY, page_size=4)
    first = cursor.fetch()
    store.add_triples([(f"<{EX}new>", f"<{EX}p>", f"<{EX}o0>")])
    store.remove_triples([(f"<{EX}s1>", f"<{EX}p>", f"<{EX}o1>")])
    rest = cursor.fetch_all()
    # The cursor pages the snapshot taken at execute time: exactly the
    # original 10 rows, no torn mixture.
    assert len(first.rows) + len(rest) == 10
    # A fresh execute sees the mutated store.
    assert session.execute(QUERY).num_rows == 10  # one added, one removed


def test_closed_cursor_raises_and_releases_slot():
    session = _service().session(max_open_cursors=1)
    cursor = session.execute(QUERY)
    with pytest.raises(CapacityError):
        session.execute(QUERY)
    cursor.close()
    replacement = session.execute(QUERY)  # slot free again
    with pytest.raises(CursorClosedError):
        cursor.fetch()
    replacement.close()


def test_cursor_lookup_by_id():
    session = _service().session()
    cursor = session.execute(QUERY)
    assert session.cursor(cursor.cursor_id) is cursor
    cursor.close()
    with pytest.raises(UnknownCursorError):
        session.cursor(cursor.cursor_id)


def test_invalid_page_size_rejected():
    session = _service().session()
    with pytest.raises(ParameterError) as excinfo:
        session.execute(QUERY, page_size=0)
    # Request-shaped misuse: code "parameter_error", HTTP 400 (and still
    # a ConfigError subclass for callers catching broadly).
    assert excinfo.value.code == "parameter_error"
    assert excinfo.value.http_status == 400
    assert isinstance(excinfo.value, ConfigError)
    with pytest.raises(ParameterError):
        session.execute(QUERY).fetch(-1)


# ---------------------------------------------------------------------------
# Streaming cursors
# ---------------------------------------------------------------------------
def test_streaming_cursor_matches_materialized_rows():
    service = _service(10)
    session = service.session()
    for text in (QUERY, QUERY + " LIMIT 5 OFFSET 2"):
        materialized = session.execute(text).fetch_all()
        streamed = session.execute(text, page_size=3, stream=True)
        assert streamed.streaming
        assert streamed.columns == ("s", "o")
        assert streamed.fetch_all() == materialized


def test_streaming_cursor_row_count_unknown_until_drained():
    session = _service(10).session()
    cursor = session.execute(QUERY, stream=True)
    with pytest.raises(SessionError):
        cursor.num_rows
    rows = cursor.fetch_all()
    assert cursor.num_rows == len(rows) == 10


def test_streaming_cursor_survives_mid_stream_update():
    service = _service(10)
    store = service.engine.store
    session = service.session()
    cursor = session.execute(QUERY, page_size=4, stream=True)
    first = cursor.fetch()
    store.add_triples([(f"<{EX}new>", f"<{EX}p>", f"<{EX}o0>")])
    store.remove_triples([(f"<{EX}s1>", f"<{EX}p>", f"<{EX}o1>")])
    rest = cursor.fetch_all()
    # The stream reads the epoch pinned at execute time: exactly the
    # original 10 rows, no torn mixture.
    assert len(first.rows) + len(rest) == 10
    # A fresh streamed execute sees the mutated store.
    assert len(session.execute(QUERY, stream=True).fetch_all()) == 10


def test_streaming_cursor_close_stops_the_engine_iterator():
    session = _service(10).session()
    cursor = session.execute(QUERY, page_size=2, stream=True)
    cursor.fetch()
    cursor.close()
    with pytest.raises(CursorClosedError):
        cursor.fetch()
    assert session.open_cursors() == 0


# ---------------------------------------------------------------------------
# Session lifecycle and errors
# ---------------------------------------------------------------------------
def test_closed_session_rejects_everything():
    session = _service().session()
    session.close()
    with pytest.raises(SessionClosedError):
        session.execute(QUERY)
    with pytest.raises(SessionClosedError):
        session.stats()
    session.close()  # idempotent


def test_session_context_manager_closes_cursors():
    service = _service()
    with service.session() as session:
        cursor = session.execute(QUERY)
    assert session.closed
    with pytest.raises(CursorClosedError):
        cursor.fetch()


def test_parse_and_parameter_errors_pass_through():
    session = _service().session()
    with pytest.raises(ParseError):
        session.execute("SELEC nope")
    template = f"SELECT ?o WHERE {{ $who <{EX}p> ?o }}"
    with pytest.raises(ParameterError):
        session.execute(template)  # missing value
    with pytest.raises(ParameterError):
        session.execute(template, parameters={"who": "<x>", "oops": "y"})


def test_timeout_raises_query_timeout(monkeypatch):
    import time

    service = _service()
    session = service.session()
    statement = service.prepare(QUERY)
    original = statement.execute

    def slow(**values):
        time.sleep(0.3)
        return original(**values)

    monkeypatch.setattr(statement, "execute", slow)
    with pytest.raises(QueryTimeoutError):
        session.execute(QueryRequest(text=QUERY, timeout_s=0.05))
    # Without a deadline the slow execution still completes.
    cursor = session.execute(QUERY)
    assert cursor.num_rows == 10


# ---------------------------------------------------------------------------
# Updates and shims
# ---------------------------------------------------------------------------
def test_update_request_roundtrip():
    service = _service()
    session = service.session()
    before = session.execute(QUERY).num_rows
    triple = (f"<{EX}ghost>", f"<{EX}p>", f"<{EX}o0>")
    response = session.update(UpdateRequest(add=(triple,)))
    assert response.added == 1 and response.removed == 0
    assert response.data_version == service.engine.store.data_version
    assert session.execute(QUERY).num_rows == before + 1
    response = session.update(UpdateRequest(remove=(triple,)))
    assert response.removed == 1
    assert session.execute(QUERY).num_rows == before


def test_query_service_entry_points_ride_the_session():
    service = _service()
    relation = service.execute(QUERY)
    decoded = service.execute_decoded(QUERY)
    assert decoded == service.engine.decode(relation)
    assert service.stats.executions == 2
    # The shim session closes its cursor per call — nothing leaks.
    assert service._default_session().open_cursors() == 0


def test_session_stats_shape():
    service = _service()
    session = service.session()
    session.execute(QUERY).close()
    stats = session.stats()
    assert stats["engine"] == "emptyheaded"
    assert stats["triples"] == 10
    assert stats["service"]["executions"] == 1
    assert stats["session"]["open_cursors"] == 0
