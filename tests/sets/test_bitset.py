"""Unit tests for the bitset layout."""

import numpy as np
import pytest

from repro.sets.base import SetLayout
from repro.sets.bitset import BitSet, popcount


def test_roundtrip():
    values = [3, 64, 65, 1000]
    s = BitSet(values)
    assert list(s.to_array()) == values
    assert s.cardinality == 4


def test_layout_tag():
    assert BitSet([1]).layout is SetLayout.BITSET


def test_base_is_word_aligned():
    s = BitSet([100])
    assert s.base % 64 == 0
    assert s.base <= 100


def test_contains_constant_time_probe():
    s = BitSet([0, 63, 64, 127])
    for present in (0, 63, 64, 127):
        assert s.contains(present)
    for absent in (1, 62, 65, 126, 128):
        assert not s.contains(absent)


def test_contains_out_of_range():
    s = BitSet([100, 200])
    assert not s.contains(0)
    assert not s.contains(300)


def test_contains_many():
    s = BitSet([10, 20, 30])
    probe = np.array([5, 10, 15, 20, 25, 30, 35], dtype=np.uint32)
    expected = [False, True, False, True, False, True, False]
    assert list(s.contains_many(probe)) == expected


def test_contains_many_empty_bitset():
    s = BitSet([])
    assert not s.contains_many(np.array([1], dtype=np.uint32)).any()


def test_min_max():
    s = BitSet([77, 5, 1000])
    assert s.min_value == 5
    assert s.max_value == 1000


def test_empty_bitset():
    s = BitSet([])
    assert s.cardinality == 0
    assert list(s.to_array()) == []
    with pytest.raises(ValueError):
        _ = s.min_value


def test_from_words_trims_and_counts():
    words = np.zeros(4, dtype=np.uint64)
    words[1] = np.uint64(0b1011)  # values base+64, base+65, base+67
    s = BitSet.from_words(128, words)
    assert s.cardinality == 3
    assert list(s.to_array()) == [192, 193, 195]
    assert s.min_value == 192
    assert s.max_value == 195


def test_from_words_requires_aligned_base():
    with pytest.raises(ValueError):
        BitSet.from_words(3, np.zeros(1, dtype=np.uint64))


def test_from_words_all_zero():
    s = BitSet.from_words(0, np.zeros(5, dtype=np.uint64))
    assert s.cardinality == 0


def test_from_sorted_matches_general_constructor():
    values = np.array([1, 2, 300], dtype=np.uint32)
    assert BitSet.from_sorted(values) == BitSet(values)


def test_popcount_swar():
    assert popcount(np.array([], dtype=np.uint64)) == 0
    assert popcount(np.array([0], dtype=np.uint64)) == 0
    assert popcount(np.array([0xFFFFFFFFFFFFFFFF], dtype=np.uint64)) == 64
    rng = np.random.default_rng(7)
    words = rng.integers(0, 1 << 63, 100, dtype=np.uint64)
    expected = sum(int(w).bit_count() for w in words)
    assert popcount(words) == expected


def test_dense_range_roundtrip():
    values = np.arange(1000, 2000, dtype=np.uint32)
    s = BitSet(values)
    assert s.cardinality == 1000
    assert np.array_equal(s.to_array(), values)


def test_single_value():
    s = BitSet([12345])
    assert s.cardinality == 1
    assert s.min_value == s.max_value == 12345
    assert s.contains(12345)
