"""The set-layout optimizer: the paper's 1-in-256 density rule."""

import numpy as np
import pytest

from repro.sets import (
    DENSITY_THRESHOLD,
    EMPTY_SET,
    SetLayout,
    build_set,
    choose_layout,
)
from repro.sets.bitset import BitSet
from repro.sets.layout import build_set_from_sorted
from repro.sets.uint_array import UintArraySet


def test_threshold_value_from_paper():
    # "The optimizer chooses the bitset layout when more than one out of
    # every 256 values appears in the set" (256 = AVX register size).
    assert DENSITY_THRESHOLD == pytest.approx(1 / 256)


def test_dense_set_gets_bitset():
    values = np.arange(0, 100, dtype=np.uint32)  # density 1.0
    assert choose_layout(values) is SetLayout.BITSET
    assert isinstance(build_set(values), BitSet)


def test_sparse_set_gets_uint_array():
    values = np.arange(0, 100 * 300, 300, dtype=np.uint32)  # density 1/300
    assert choose_layout(values) is SetLayout.UINT_ARRAY
    assert isinstance(build_set(values), UintArraySet)


def test_exact_threshold_is_uint_array():
    # Exactly 1/256 is NOT "more than one out of every 256".
    values = np.array([0, 255], dtype=np.uint32)  # 2/256 = 1/128 > 1/256
    assert choose_layout(values) is SetLayout.BITSET
    values = np.array([0, 511], dtype=np.uint32)  # 2/512 = 1/256, not more
    assert choose_layout(values) is SetLayout.UINT_ARRAY


def test_single_value_is_bitset():
    # density 1/1 — maximally dense.
    assert choose_layout(np.array([42], dtype=np.uint32)) is SetLayout.BITSET


def test_empty_set_singleton():
    assert build_set([]) is EMPTY_SET
    assert choose_layout(np.empty(0, dtype=np.uint32)) is SetLayout.UINT_ARRAY


def test_force_layout_override():
    dense = np.arange(100, dtype=np.uint32)
    forced = build_set(dense, force_layout=SetLayout.UINT_ARRAY)
    assert isinstance(forced, UintArraySet)
    sparse = np.arange(0, 100_000, 1000, dtype=np.uint32)
    forced = build_set(sparse, force_layout=SetLayout.BITSET)
    assert isinstance(forced, BitSet)


def test_build_set_from_sorted_same_content():
    values = np.array([1, 5, 6, 7], dtype=np.uint32)
    a = build_set(values)
    b = build_set_from_sorted(values)
    assert a == b


def test_layout_content_equivalence():
    values = np.array([2, 3, 5, 8, 13], dtype=np.uint32)
    as_bits = build_set(values, force_layout=SetLayout.BITSET)
    as_array = build_set(values, force_layout=SetLayout.UINT_ARRAY)
    assert as_bits == as_array
    assert np.array_equal(as_bits.to_array(), as_array.to_array())
