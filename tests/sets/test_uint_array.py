"""Unit tests for the sorted uint-array set layout."""

import numpy as np
import pytest

from repro.sets.base import SetLayout
from repro.sets.uint_array import UintArraySet


def test_builds_sorted_unique():
    s = UintArraySet([5, 1, 3, 3, 1])
    assert list(s.to_array()) == [1, 3, 5]
    assert s.cardinality == 3


def test_layout_tag():
    assert UintArraySet([1]).layout is SetLayout.UINT_ARRAY


def test_min_max():
    s = UintArraySet([10, 2, 7])
    assert s.min_value == 2
    assert s.max_value == 10


def test_empty_min_max_raises():
    s = UintArraySet([])
    with pytest.raises(ValueError):
        _ = s.min_value
    with pytest.raises(ValueError):
        _ = s.max_value


def test_contains_binary_search():
    s = UintArraySet([2, 4, 8, 16])
    assert s.contains(8)
    assert not s.contains(7)
    assert not s.contains(0)
    assert not s.contains(17)


def test_contains_dunder_rejects_non_integers():
    s = UintArraySet([1, 2])
    assert 1 in s
    assert "1" not in s
    assert -1 not in s
    assert (1 << 40) not in s


def test_contains_many_mask():
    s = UintArraySet([1, 5, 9])
    probe = np.array([0, 1, 5, 6, 9, 10], dtype=np.uint32)
    assert list(s.contains_many(probe)) == [
        False, True, True, False, True, False,
    ]


def test_contains_many_on_empty_set():
    s = UintArraySet([])
    assert not s.contains_many(np.array([1, 2], dtype=np.uint32)).any()


def test_rank():
    s = UintArraySet([10, 20, 30])
    assert s.rank(20) == 1
    with pytest.raises(KeyError):
        s.rank(25)


def test_from_sorted_trusts_input():
    arr = np.array([1, 2, 3], dtype=np.uint32)
    s = UintArraySet.from_sorted(arr)
    assert s.to_array() is arr


def test_iteration_and_len():
    s = UintArraySet([3, 1, 2])
    assert list(s) == [1, 2, 3]
    assert len(s) == 3
    assert bool(s)
    assert not bool(UintArraySet([]))


def test_equality_across_layouts():
    from repro.sets.bitset import BitSet

    assert UintArraySet([1, 2, 3]) == BitSet([1, 2, 3])
    assert UintArraySet([1, 2]) != BitSet([1, 2, 3])


def test_density_and_span():
    s = UintArraySet([0, 255])
    assert s.span == 256
    assert s.density == pytest.approx(2 / 256)


def test_rejects_values_out_of_uint32_range():
    with pytest.raises(ValueError):
        UintArraySet([-1])
    with pytest.raises(ValueError):
        UintArraySet([1 << 40])


def test_rejects_non_integer_dtype():
    with pytest.raises(ValueError):
        UintArraySet(np.array([1.5, 2.5]))
