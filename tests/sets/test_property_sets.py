"""Property-based tests: set layouts agree with Python set semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets import SetLayout, build_set, intersect_many, intersect_values
from repro.sets.layout import choose_layout

values_strategy = st.lists(
    st.integers(min_value=0, max_value=5000), max_size=300
)
layouts = st.sampled_from([SetLayout.UINT_ARRAY, SetLayout.BITSET, None])


@given(values_strategy, layouts)
def test_roundtrip_matches_python_set(values, layout):
    s = build_set(values, force_layout=layout)
    assert list(s.to_array()) == sorted(set(values))
    assert s.cardinality == len(set(values))


@given(values_strategy, layouts)
def test_membership_matches_python_set(values, layout):
    s = build_set(values, force_layout=layout)
    universe = set(values)
    for probe in list(universe)[:20]:
        assert s.contains(probe)
    for probe in range(0, 5001, 503):
        assert s.contains(probe) == (probe in universe)


@given(values_strategy, values_strategy, layouts, layouts)
def test_intersection_matches_python_set(a_vals, b_vals, la, lb):
    a = build_set(a_vals, force_layout=la)
    b = build_set(b_vals, force_layout=lb)
    expected = sorted(set(a_vals) & set(b_vals))
    assert list(intersect_values(a, b)) == expected


@given(st.lists(values_strategy, min_size=1, max_size=4), layouts)
@settings(max_examples=50)
def test_multiway_intersection_matches_python_set(lists, layout):
    sets = [build_set(vals, force_layout=layout) for vals in lists]
    expected = set(lists[0])
    for vals in lists[1:]:
        expected &= set(vals)
    assert list(intersect_many(sets)) == sorted(expected)


@given(values_strategy)
def test_layout_rule_consistency(values):
    """The optimizer picks bitset iff density strictly exceeds 1/256."""
    arr = np.unique(np.asarray(values, dtype=np.uint32))
    if arr.size == 0:
        return
    span = int(arr[-1]) - int(arr[0]) + 1
    expected = (
        SetLayout.BITSET
        if arr.size / span > 1 / 256
        else SetLayout.UINT_ARRAY
    )
    assert choose_layout(arr) is expected


@given(values_strategy, layouts)
def test_contains_many_matches_scalar_contains(values, layout):
    s = build_set(values, force_layout=layout)
    probes = np.arange(0, 5001, 97, dtype=np.uint32)
    mask = s.contains_many(probes)
    for probe, hit in zip(probes[:30], mask[:30]):
        assert bool(hit) == s.contains(int(probe))
