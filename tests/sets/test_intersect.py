"""Intersection kernels across all layout pairings."""

import numpy as np
import pytest

from repro.sets import (
    EMPTY_SET,
    SetLayout,
    build_set,
    intersect,
    intersect_arrays,
    intersect_many,
    intersect_values,
)
from repro.sets.intersect import (
    difference_arrays,
    intersect_array_with_sets,
    union_arrays,
)

LAYOUTS = (SetLayout.UINT_ARRAY, SetLayout.BITSET)


def _arr(*values):
    return np.array(values, dtype=np.uint32)


@pytest.mark.parametrize("layout_a", LAYOUTS)
@pytest.mark.parametrize("layout_b", LAYOUTS)
def test_pairwise_intersection_all_layouts(layout_a, layout_b):
    a = build_set(_arr(1, 3, 5, 7, 9, 100), force_layout=layout_a)
    b = build_set(_arr(3, 4, 7, 100, 200), force_layout=layout_b)
    assert list(intersect_values(a, b)) == [3, 7, 100]


@pytest.mark.parametrize("layout_a", LAYOUTS)
@pytest.mark.parametrize("layout_b", LAYOUTS)
def test_disjoint_ranges_shortcut(layout_a, layout_b):
    a = build_set(_arr(1, 2, 3), force_layout=layout_a)
    b = build_set(_arr(1000, 1001), force_layout=layout_b)
    assert intersect_values(a, b).size == 0


def test_intersect_with_empty():
    a = build_set(_arr(1, 2))
    assert intersect_values(a, EMPTY_SET).size == 0
    assert intersect_values(EMPTY_SET, a).size == 0


def test_intersect_rewraps_through_optimizer():
    a = build_set(np.arange(100, dtype=np.uint32))
    b = build_set(np.arange(50, 150, dtype=np.uint32))
    result = intersect(a, b)
    assert result.cardinality == 50
    assert result.layout is SetLayout.BITSET  # dense result stays dense


def test_intersect_to_empty_singleton():
    a = build_set(_arr(1))
    b = build_set(_arr(2))
    assert intersect(a, b) is EMPTY_SET


def test_intersect_arrays_galloping_path():
    small = _arr(5, 500, 50_000)
    large = np.arange(0, 100_000, 5, dtype=np.uint32)
    # large is >32x bigger, triggering the searchsorted probe path.
    assert list(intersect_arrays(small, large)) == [5, 500, 50_000]
    assert list(intersect_arrays(large, small)) == [5, 500, 50_000]


def test_intersect_arrays_merge_path():
    a = _arr(1, 2, 3, 4)
    b = _arr(2, 4, 6)
    assert list(intersect_arrays(a, b)) == [2, 4]


def test_intersect_many_orders_by_cardinality():
    sets = [
        build_set(np.arange(0, 1000, dtype=np.uint32)),
        build_set(_arr(10, 20, 30)),
        build_set(np.arange(0, 1000, 2, dtype=np.uint32)),
    ]
    assert list(intersect_many(sets)) == [10, 20, 30]


def test_intersect_many_empty_input():
    assert intersect_many([]).size == 0


def test_intersect_many_single_set():
    s = build_set(_arr(4, 2))
    assert list(intersect_many([s])) == [2, 4]


def test_intersect_many_early_exit_on_empty():
    sets = [EMPTY_SET, build_set(_arr(1, 2, 3))]
    assert intersect_many(sets).size == 0


@pytest.mark.parametrize("layout", LAYOUTS)
def test_intersect_array_with_sets(layout):
    values = _arr(1, 2, 3, 4, 5)
    sets = [
        build_set(_arr(2, 3, 4, 9), force_layout=layout),
        build_set(_arr(3, 4, 5), force_layout=layout),
    ]
    assert list(intersect_array_with_sets(values, sets)) == [3, 4]


def test_union_arrays():
    assert list(union_arrays(_arr(1, 3), _arr(2, 3))) == [1, 2, 3]
    assert list(union_arrays(_arr(), _arr(5))) == [5]
    assert list(union_arrays(_arr(5), _arr())) == [5]


def test_difference_arrays():
    assert list(difference_arrays(_arr(1, 2, 3, 4), _arr(2, 4))) == [1, 3]
    assert list(difference_arrays(_arr(1, 2), _arr())) == [1, 2]
    assert list(difference_arrays(_arr(), _arr(1))) == []


def test_bitset_word_boundary_intersection():
    # Sets crossing word boundaries with different bases.
    a = build_set(_arr(60, 61, 62, 63, 64, 65), force_layout=SetLayout.BITSET)
    b = build_set(_arr(63, 64, 200), force_layout=SetLayout.BITSET)
    assert list(intersect_values(a, b)) == [63, 64]
