"""GHD executor: end-to-end correctness on hand-built catalogs."""

import pytest

from repro.core.config import OptimizationConfig
from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
)
from tests.util import brute_force, catalog_of, run_query

X, Y, Z, W = (Variable(n) for n in "xyzw")

ALL_CONFIGS = [
    OptimizationConfig.all_on(),
    OptimizationConfig.all_off(),
    OptimizationConfig.baseline_with_ghd(),
    OptimizationConfig.all_on().but(pipelining=False),
    OptimizationConfig.all_on().but(ghd_selection_pushdown=False),
    OptimizationConfig.all_on().but(mixed_layouts=False),
    OptimizationConfig.all_on().but(reorder_selections=False),
]


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_triangle_query(config):
    catalog = catalog_of(
        {
            "r": [(0, 1), (1, 2), (0, 3), (3, 4)],
            "s": [(1, 2), (2, 0), (3, 4), (4, 0)],
            "t": [(0, 2), (1, 0), (3, 0), (0, 4)],
        }
    )
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (X, Z))),
        (X, Y, Z),
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_star_with_selections(config):
    catalog = catalog_of(
        {
            "r": [(0, 1), (1, 2), (2, 3)],
            "s": [(0, 9), (1, 9), (2, 8)],
            "t": [(0, 7), (2, 7)],
        }
    )
    query = ConjunctiveQuery(
        (
            Atom("r", (X, Y)),
            Atom("s", (X, Constant(9))),
            Atom("t", (X, Constant(7))),
        ),
        (X, Y),
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_path_query_projection(config):
    catalog = catalog_of(
        {
            "r": [(0, 1), (1, 2), (2, 2)],
            "s": [(1, 5), (2, 6), (2, 7)],
        }
    )
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (Y, Z))), (X, Z)
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_projection_spans_multiple_nodes(config):
    """Top-down Yannakakis pass must materialize attributes from leaves."""
    catalog = catalog_of(
        {
            "r": [(0, 1), (0, 2), (1, 3)],
            "s": [(0, 5), (1, 6)],
            "t": [(5, 9), (6, 8)],
        }
    )
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (X, Z)), Atom("t", (Z, W))),
        (Y, W),
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_empty_relation_short_circuits(config):
    catalog = catalog_of({"r": [(0, 1)], "s": []})
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (Y, Z))), (X,)
    )
    assert run_query(catalog, query, config) == frozenset()


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_repeated_variable_atom(config):
    catalog = catalog_of({"r": [(0, 0), (1, 2), (3, 3)], "s": [(0, 5), (3, 7)]})
    query = ConjunctiveQuery(
        (Atom("r", (X, X)), Atom("s", (X, Y))), (X, Y)
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_disconnected_cross_product(config):
    catalog = catalog_of({"r": [(0, 1), (2, 3)], "s": [(5, 6)]})
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (Z, W))), (X, Z)
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_four_cycle(config):
    catalog = catalog_of(
        {
            "r": [(0, 1), (1, 2)],
            "s": [(1, 2), (2, 3)],
            "t": [(2, 3), (3, 0)],
            "u": [(3, 0), (0, 1)],
        }
    )
    query = ConjunctiveQuery(
        (
            Atom("r", (X, Y)),
            Atom("s", (Y, Z)),
            Atom("t", (Z, W)),
            Atom("u", (W, X)),
        ),
        (X, Y, Z, W),
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_fully_constant_atom_satisfied(config):
    catalog = catalog_of({"r": [(0, 1)], "s": [(5, 6)]})
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (Constant(5), Constant(6)))),
        (X, Y),
    )
    assert run_query(catalog, query, config) == {(0, 1)}


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_fully_constant_atom_unsatisfied(config):
    catalog = catalog_of({"r": [(0, 1)], "s": [(5, 6)]})
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (Constant(5), Constant(7)))),
        (X, Y),
    )
    assert run_query(catalog, query, config) == frozenset()


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_shared_variable_three_ways(config):
    catalog = catalog_of(
        {
            "r": [(0, 1), (1, 1), (2, 2)],
            "s": [(0, 2), (1, 3), (2, 2)],
            "t": [(0, 4), (2, 5)],
        }
    )
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (X, Z)), Atom("t", (X, W))),
        (X, Y, Z, W),
    )
    assert run_query(catalog, query, config) == brute_force(catalog, query)


# ---------------------------------------------------------------------------
# Child semijoin participants (regression for a dead-code refilter bug)
# ---------------------------------------------------------------------------
def test_child_participant_projects_shared_attributes_in_order():
    """Regression: `_child_participant` once refiltered `shared` by
    `attr_set` twice; the participant must be exactly the node attrs
    that appear in the child result, in node-attribute order."""
    from repro.core.executor import GHDExecutor
    from repro.core.planner import Planner
    from repro.storage.relation import Relation

    catalog = catalog_of({"r": [(0, 1)], "s": [(1, 2)]})
    planner = Planner(catalog, OptimizationConfig.all_on())
    plan = planner.plan(
        ConjunctiveQuery((Atom("r", (X, Y)), Atom("s", (Y, Z))), (X, Z))
    )
    executor = GHDExecutor(catalog)

    # Child materialized (y, x, w); node attrs order [Y, X]: the shared
    # attributes follow the node order and drop the private `w`.
    child_result = Relation.from_rows(
        "child", ["y", "x", "w"], [(1, 0, 5), (2, 0, 6), (2, 0, 7)]
    )
    participant = executor._child_participant(
        plan, 1, [Y, X], child_result
    )
    assert participant is not None
    assert participant.attrs == (Y, X)
    assert participant.trie.num_levels == 2
    # Projection is deduplicated: (2, 0) appears once.
    assert participant.trie.num_tuples == 2

    # No shared attributes -> no participant (pure cross-product child).
    assert (
        executor._child_participant(
            plan, 1, [Variable("q")], child_result
        )
        is None
    )


def test_limit_truncates_after_distinct():
    """LIMIT flows through the plan and truncates deterministically."""
    catalog = catalog_of({"r": [(0, 1), (1, 2), (2, 3), (3, 4)]})
    query = ConjunctiveQuery((Atom("r", (X, Y)),), (X, Y), limit=2)
    result = run_query(catalog, query, OptimizationConfig.all_on())
    full = brute_force(
        catalog, ConjunctiveQuery((Atom("r", (X, Y)),), (X, Y))
    )
    assert len(result) == 2
    assert result <= full
    # distinct() sorts, so the first two rows are the smallest.
    assert result == frozenset(sorted(full)[:2])
