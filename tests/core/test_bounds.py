"""Pessimistic bounds: value classes, divergence, and the attach-order
search that replaces the flat small-cardinality promotion."""

import numpy as np
import pytest

from repro.core.bounds import (
    bound_attribute_order,
    counts_diverge,
    selection_counts,
    value_class,
)
from repro.core.config import OptimizationConfig
from repro.core.ghd_optimizer import GHDOptimizer
from repro.core.planner import Planner
from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    normalize,
)
from repro.core.sketch import build_table_sketches
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _sketches(**tables):
    """``name=(subject_col, object_col)`` → a sketch registry."""
    registry = {}
    for name, columns in tables.items():
        arrays = [np.asarray(c, dtype=np.uint32) for c in columns]
        registry[name] = build_table_sketches(
            tuple(f"c{i}" for i in range(len(arrays))), arrays
        )
    return registry


def _query(*atoms):
    projection = tuple(
        sorted(
            {v for a in atoms for v in a.variables},
            key=lambda v: v.name,
        )
    )
    return normalize(ConjunctiveQuery(tuple(atoms), projection))


# ----------------------------------------------------------------------
# Value classes + divergence
# ----------------------------------------------------------------------
def test_value_class_buckets_logarithmically():
    factor = 8.0
    assert value_class({X: 0}, factor) == (("x", 0),)
    assert value_class({X: 7}, factor) == (("x", 0),)
    assert value_class({X: 8}, factor) == (("x", 1),)
    assert value_class({X: 63}, factor) == (("x", 1),)
    assert value_class({X: 64}, factor) == (("x", 2),)
    # Sorted by variable name, independent of dict order.
    assert value_class({Y: 1, X: 9}, factor) == (("x", 1), ("y", 0))


def test_counts_diverge_is_symmetric_and_smoothed():
    factor = 8.0
    assert counts_diverge({X: 50}, {X: 3}, factor)  # cold vs hot plan
    assert counts_diverge({X: 3}, {X: 50}, factor)  # hot vs cold plan
    assert not counts_diverge({X: 50}, {X: 40}, factor)
    assert not counts_diverge({X: 0}, {X: 5}, factor)  # smoothing: 6 < 8
    assert counts_diverge({}, {X: 1}, factor)  # unknown assumption


def test_selection_counts_take_min_over_covering_atoms():
    from dataclasses import replace

    # The same selected variable covered by two atoms: any one atom's
    # rows cap the matches, so the minimum count wins.
    query = replace(
        _query(Atom("r", (X, Y)), Atom("s", (X, Z))), selections={X: 7}
    )
    sketches = _sketches(
        r=([7, 7, 7], [1, 2, 3]),
        s=([7], [1]),
    )
    counts = selection_counts(query, sketches)
    assert counts[X] == 1  # s's single row caps the matches


# ----------------------------------------------------------------------
# Attach-order search
# ----------------------------------------------------------------------
def _order_for(query, sketches):
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query)
    return bound_attribute_order(query, ghd, sketches)


def test_skewed_fanout_reorders_variables():
    """y has 2 values over 50 rows: enumerating y first bounds the
    frontier at 2 (then 2*25), enumerating x first at 50 — the search
    must flip the appearance order."""
    x_col = list(range(50))
    y_col = [1, 2] * 25
    query = _query(Atom("r", (X, Y)))
    order, bounds = _order_for(query, _sketches(r=(x_col, y_col)))
    assert [v.name for v in order] == ["y", "x"]
    assert bounds[Y] == 2
    assert bounds[X] == 25  # max_count of y's column caps the fan-out


def test_uniform_stats_keep_appearance_order():
    x_col = list(range(50))
    y_col = list(range(50, 100))
    query = _query(Atom("r", (X, Y)))
    order, bounds = _order_for(query, _sketches(r=(x_col, y_col)))
    assert [v.name for v in order] == ["x", "y"]
    assert bounds[X] == 50
    assert bounds[Y] == 1  # each x row holds exactly one y


def test_selections_stay_in_front():
    query = _query(Atom("r", (X, Y)), Atom("s", (Y, Constant(5))))
    sketches = _sketches(
        r=(list(range(10)), list(range(10))),
        s=(list(range(10)), [5] * 4 + [6] * 6),
    )
    order, bounds = _order_for(query, sketches)
    sel = next(iter(query.selections))
    assert order[0] == sel
    assert bounds[sel] == 1


def test_selected_covalue_caps_the_bound():
    """The sketched frequency of the *bound value* (not the column's
    average) caps a co-occurring variable — the skew-awareness core."""
    query = _query(Atom("r", (X, Constant(7))))
    sel = next(iter(query.selections))
    cold = _sketches(r=(list(range(100)), [7] + list(range(100, 199))))
    order, bounds = _order_for(query, cold)
    assert bounds[X] == 1  # value 7 occurs once

    hot = _sketches(r=(list(range(100)), [7] * 90 + list(range(100, 110))))
    order, bounds = _order_for(query, hot)
    assert bounds[X] == 90  # value 7 occurs 90 times
    assert order[0] == sel


# ----------------------------------------------------------------------
# Planner integration
# ----------------------------------------------------------------------
@pytest.fixture()
def skewed_catalog():
    c = Catalog()
    c.register(
        Relation(
            "r",
            ("s", "o"),
            (
                np.arange(50, dtype=np.uint32),
                np.array([1, 2] * 25, dtype=np.uint32),
            ),
        )
    )
    return c


def test_planner_uses_bound_order_and_reports_bounds(skewed_catalog):
    sketches = {
        "r": build_table_sketches(
            ("s", "o"),
            [skewed_catalog.get("r").column("s"),
            skewed_catalog.get("r").column("o"),],
        )
    }
    planner = Planner(
        skewed_catalog, OptimizationConfig.all_on(), sketches=sketches
    )
    plan = planner.plan(ConjunctiveQuery((Atom("r", (X, Y)),), (X, Y)))
    assert [v.name for v in plan.global_order] == ["y", "x"]
    assert plan.bounds[Y] == 2
    assert "bounds:" in plan.explain()


def test_planner_without_sketches_has_no_bounds(skewed_catalog):
    """No sketch registry → the legacy threshold-promotion path: plans
    carry no bounds and explain() omits the bounds line."""
    planner = Planner(skewed_catalog, OptimizationConfig.all_on())
    plan = planner.plan(ConjunctiveQuery((Atom("r", (X, Y)),), (X, Y)))
    assert plan.bounds == {}
    assert plan.assumed_counts == {}
    assert "bounds:" not in plan.explain()
