"""Generic worst-case optimal join: unit tests on known instances."""

import numpy as np
import pytest

from repro.core.generic_join import (
    Participant,
    generic_join,
    generic_join_recursive,
    plan_attribute_list,
)
from repro.core.query import Variable
from repro.trie.trie import Trie

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _participant(rows, attrs, label="p"):
    arity = len(attrs)
    cols = [
        np.array([r[i] for r in rows], dtype=np.uint32)
        for i in range(arity)
    ] if rows else [np.empty(0, dtype=np.uint32) for _ in range(arity)]
    trie = Trie.build(cols, tuple(v.name for v in attrs))
    return Participant(trie=trie, attrs=tuple(attrs), label=label)


def _triangle_parts(r, s, t):
    return [
        _participant(r, (X, Y), "r"),
        _participant(s, (Y, Z), "s"),
        _participant(t, (X, Z), "t"),
    ]


JOINS = [generic_join, generic_join_recursive]


@pytest.mark.parametrize("join", JOINS)
def test_triangle_join(join):
    r = [(0, 1), (1, 2), (0, 3)]
    s = [(1, 2), (2, 0), (3, 0)]
    t = [(0, 2), (1, 0), (5, 5)]
    parts = _triangle_parts(r, s, t)
    result = join([X, Y, Z], parts, {}, [X, Y, Z])
    assert result.to_set() == {(0, 1, 2), (1, 2, 0)}


@pytest.mark.parametrize("join", JOINS)
def test_two_way_join(join):
    r = [(1, 10), (2, 20)]
    s = [(10, 100), (20, 200), (30, 300)]
    parts = [_participant(r, (X, Y), "r"), _participant(s, (Y, Z), "s")]
    result = join([X, Y, Z], parts, {}, [X, Y, Z])
    assert result.to_set() == {(1, 10, 100), (2, 20, 200)}


@pytest.mark.parametrize("join", JOINS)
def test_selection_first_order(join):
    rows = [(5, 1), (5, 2), (6, 3)]
    a = Variable("a")
    parts = [_participant(rows, (a, X), "r")]
    result = join([a, X], parts, {a: 5}, [X])
    assert result.to_set() == {(1,), (2,)}


@pytest.mark.parametrize("join", JOINS)
def test_selection_last_order(join):
    rows = [(1, 5), (2, 5), (3, 6)]
    a = Variable("a")
    parts = [_participant(rows, (X, a), "r")]
    result = join([X, a], parts, {a: 5}, [X])
    assert result.to_set() == {(1,), (2,)}


@pytest.mark.parametrize("join", JOINS)
def test_failed_selection_empty(join):
    parts = [_participant([(1, 2)], (X, Variable("a")), "r")]
    result = join([X, Variable("a")], parts, {Variable("a"): 99}, [X])
    assert result.num_rows == 0


@pytest.mark.parametrize("join", JOINS)
def test_empty_participant_empty_result(join):
    parts = [
        _participant([(1, 2)], (X, Y), "r"),
        _participant([], (Y, Z), "s"),
    ]
    result = join([X, Y, Z], parts, {}, [X, Y, Z])
    assert result.num_rows == 0


@pytest.mark.parametrize("join", JOINS)
def test_cross_product_of_unary_participants(join):
    parts = [
        _participant([(1,), (2,)], (X,), "r"),
        _participant([(7,), (8,)], (Y,), "s"),
    ]
    result = join([X, Y], parts, {}, [X, Y])
    assert result.to_set() == {(1, 7), (1, 8), (2, 7), (2, 8)}


@pytest.mark.parametrize("join", JOINS)
def test_boolean_query_sentinel(join):
    a, b = Variable("a"), Variable("b")
    parts = [_participant([(1, 2)], (a, b), "r")]
    satisfied = join([a, b], parts, {a: 1, b: 2}, [])
    assert satisfied.num_rows == 1
    assert satisfied.attributes == ("__exists__",)
    missing = join([a, b], parts, {a: 1, b: 3}, [])
    assert missing.num_rows == 0


def test_plan_attribute_list_truncates_free_tail():
    parts = [
        _participant([(1, 2)], (X, Y), "r"),
        _participant([(1, 3)], (X, Z), "s"),
    ]
    kept = plan_attribute_list([X, Y, Z], parts, {}, [X])
    assert kept == [X]


def test_plan_attribute_list_keeps_shared_attrs():
    parts = [
        _participant([(1, 2)], (X, Y), "r"),
        _participant([(2, 3)], (Y, Z), "s"),
    ]
    kept = plan_attribute_list([X, Y, Z], parts, {}, [X])
    # Y is shared by two participants, so it cannot be dropped; Z can.
    assert kept == [X, Y]


def test_truncated_participant_still_guards_emptiness():
    parts = [
        _participant([(1,)], (X,), "r"),
        _participant([], (Y,), "empty"),
    ]
    result = generic_join([X, Y], parts, {}, [X])
    assert result.num_rows == 0


@pytest.mark.parametrize("join", JOINS)
def test_three_started_participants(join):
    """Three relations all constraining the same second attribute."""
    r = [(1, 5), (1, 6), (2, 5)]
    s = [(1, 5), (1, 7), (2, 5)]
    t = [(1, 5), (1, 6), (2, 9)]
    parts = [
        _participant(r, (X, Y), "r"),
        _participant(s, (X, Y), "s"),
        _participant(t, (X, Y), "t"),
    ]
    result = join([X, Y], parts, {}, [X, Y])
    assert result.to_set() == {(1, 5)}


def test_frontier_matches_recursive_on_triangle_with_selection():
    a = Variable("a")
    r = [(0, 1), (1, 2), (0, 3), (2, 2)]
    s = [(1, 2), (2, 0), (3, 0), (2, 2)]
    t = [(0, 2), (1, 0), (2, 2)]
    types = [(0, 7), (2, 7), (1, 8)]
    parts = _triangle_parts(r, s, t) + [_participant(types, (X, a), "ty")]
    args = ([X, Y, Z, a], parts, {a: 7}, [X, Y, Z])
    fast = generic_join(*args)
    slow = generic_join_recursive(*args)
    assert fast.to_set() == slow.to_set()
