"""Unit tests for block-wise execution: left-outer extend, NULL padding,
NULL-aware filters and ordering."""

import numpy as np
import pytest

from repro.core.blocks import block_queries, left_outer_extend
from repro.core.modifiers import apply_filters, apply_order
from repro.core.query import (
    Atom,
    BoundBlock,
    BoundOptional,
    BoundUnion,
    Comparison,
    Constant,
    OrderKey,
    Variable,
)
from repro.storage.dictionary import Dictionary
from repro.storage.relation import NULL_KEY, Relation

X, Y, N = Variable("x"), Variable("y"), Variable("n")


@pytest.fixture
def dictionary():
    d = Dictionary()
    for term in ("<a>", "<b>", "<c>", '"1"', '"2"', '"3"'):
        d.encode(term)
    return d


def rel(attrs, rows):
    return Relation.from_rows("t", attrs, rows)


# ---------------------------------------------------------------------------
# left_outer_extend
# ---------------------------------------------------------------------------
def test_left_outer_extends_matching_rows(dictionary):
    left = rel(["x"], [(0,), (1,)])
    right = rel(["x", "n"], [(0, 3)])
    out = left_outer_extend(left, [right], (), dictionary)
    assert out.attributes == ("x", "n")
    assert out.to_set() == {(0, 3), (1, NULL_KEY)}


def test_left_outer_no_shared_vars_cross_extends(dictionary):
    left = rel(["x"], [(0,)])
    right = rel(["n"], [(3,), (4,)])
    out = left_outer_extend(left, [right], (), dictionary)
    assert out.to_set() == {(0, 3), (0, 4)}


def test_left_outer_empty_right_pads_all(dictionary):
    left = rel(["x"], [(0,), (1,)])
    right = Relation.empty("o", ["x", "n"])
    out = left_outer_extend(left, [right], (), dictionary)
    assert out.to_set() == {(0, NULL_KEY), (1, NULL_KEY)}


def test_left_outer_union_of_variants(dictionary):
    left = rel(["x"], [(0,), (1,), (2,)])
    part1 = rel(["x", "n"], [(0, 3)])
    part2 = rel(["x", "n"], [(1, 4)])
    out = left_outer_extend(left, [part1, part2], (), dictionary)
    assert out.to_set() == {(0, 3), (1, 4), (2, NULL_KEY)}


def test_left_outer_filter_failing_rows_fall_back_to_null(dictionary):
    # n decodes to "1"/"2"; filter keeps only n > 1, so x=0 falls back.
    left = rel(["x"], [(0,), (1,)])
    right = rel(["x", "n"], [(0, 3), (1, 4)])
    comparison = Comparison(N, ">", Constant(1.0))
    out = left_outer_extend(left, [right], (comparison,), dictionary)
    assert out.to_set() == {(0, NULL_KEY), (1, 4)}


def test_left_outer_unbound_key_adopts_right_binding(dictionary):
    # SPARQL compatibility join: a NULL key (an earlier OPTIONAL that
    # did not match) is compatible with any extension and adopts its
    # binding; a *bound* key still joins by equality.
    left = rel(["x", "y"], [(0, 1), (2, NULL_KEY), (6, 7)])
    right = rel(["y", "n"], [(1, 3), (5, 4)])
    out = left_outer_extend(left, [right], (), dictionary)
    assert out.to_set() == {
        (0, 1, 3),  # bound key, equality match
        (2, 1, 3),  # unbound key adopts y=1
        (2, 5, 4),  # ... and y=5 (one row per compatible extension)
        (6, 7, NULL_KEY),  # bound key, no match: padded
    }


def test_left_outer_unbound_key_without_match_stays_padded(dictionary):
    left = rel(["x", "y"], [(2, NULL_KEY)])
    right = Relation.empty("o", ["y", "n"])
    out = left_outer_extend(left, [right], (), dictionary)
    assert out.to_set() == {(2, NULL_KEY, NULL_KEY)}


def test_left_outer_unbound_key_with_no_new_columns_still_extends(dictionary):
    # The extension binds no *new* variable, but it can still bind a
    # shared variable an earlier OPTIONAL left NULL.
    left = rel(["x", "y"], [(0, 1), (2, NULL_KEY)])
    right = rel(["y"], [(1,), (5,)])
    out = left_outer_extend(left, [right], (), dictionary)
    assert out.to_set() == {(0, 1), (2, 1), (2, 5)}


def test_left_outer_no_new_columns_keeps_rows(dictionary):
    left = rel(["x", "y"], [(0, 1)])
    right = rel(["y"], [(2,)])  # shares y, binds nothing new
    out = left_outer_extend(left, [right], (), dictionary)
    assert out.to_set() == {(0, 1)}


# ---------------------------------------------------------------------------
# NULL-aware filters
# ---------------------------------------------------------------------------
def test_filters_exclude_null_rows_under_every_operator(dictionary):
    relation = rel(["x", "n"], [(0, 3), (1, NULL_KEY)])
    for op in ("=", "!=", "<", "<=", ">", ">="):
        out = apply_filters(
            relation, [Comparison(N, op, Constant(1.0))], dictionary
        )
        assert (1, NULL_KEY) not in out.to_set(), op


def test_not_equals_unknown_term_keeps_only_bound_rows(dictionary):
    relation = rel(["x", "n"], [(0, 3), (1, NULL_KEY)])
    out = apply_filters(
        relation, [Comparison(N, "!=", Constant('"zzz"'))], dictionary
    )
    assert out.to_set() == {(0, 3)}


def test_var_var_comparison_excludes_null(dictionary):
    relation = rel(["x", "n"], [(3, 3), (NULL_KEY, 3)])
    out = apply_filters(
        relation, [Comparison(X, "=", N)], dictionary
    )
    assert out.to_set() == {(3, 3)}


# ---------------------------------------------------------------------------
# NULL-aware ordering
# ---------------------------------------------------------------------------
def test_order_by_sorts_unbound_first(dictionary):
    relation = rel(["n"], [(4,), (NULL_KEY,), (3,)])
    out = apply_order(relation, [OrderKey(N)], dictionary)
    assert list(out.iter_rows()) == [(NULL_KEY,), (3,), (4,)]


def test_order_by_desc_sorts_unbound_last(dictionary):
    relation = rel(["n"], [(4,), (NULL_KEY,), (3,)])
    out = apply_order(relation, [OrderKey(N, descending=True)], dictionary)
    assert list(out.iter_rows()) == [(4,), (3,), (NULL_KEY,)]


# ---------------------------------------------------------------------------
# Block query planning (the warm path)
# ---------------------------------------------------------------------------
def test_block_queries_enumerates_required_and_variants():
    bound = BoundUnion(
        blocks=(
            BoundBlock(
                atoms=(Atom("a", (X, Y)),),
                optionals=(
                    BoundOptional(
                        variants=(
                            (Atom("n", (X, N)),),
                            (Atom("m", (X, N)),),
                        )
                    ),
                ),
            ),
            BoundBlock(atoms=(Atom("b", (X, Y)),)),
        ),
        projection=(X, N),
    )
    queries = block_queries(bound)
    assert [q.atoms[0].relation for q in queries] == ["a", "n", "m", "b"]
    # Required query projects the join key and projected vars only.
    assert set(queries[0].projection) == {X}
    assert set(queries[1].projection) == {X, N}


def test_block_queries_are_deterministic():
    bound = BoundUnion(
        blocks=(BoundBlock(atoms=(Atom("a", (X, Y)),)),),
        projection=(Y, X),
    )
    first = block_queries(bound)
    second = block_queries(bound)
    assert first == second
