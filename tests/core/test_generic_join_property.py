"""Property tests: both generic-join implementations agree with a
brute-force evaluator on random databases and random join shapes."""

from itertools import product

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generic_join import (
    Participant,
    generic_join,
    generic_join_recursive,
)
from repro.core.query import Variable
from repro.trie.trie import Trie

V = {name: Variable(name) for name in "wxyz"}

# A join shape: list of (attr names per relation). Attribute processing
# order is alphabetical. Shapes cover paths, stars, triangles, and
# higher-arity edges.
SHAPES = [
    ["xy", "yz"],
    ["xy", "xz"],
    ["xy", "yz", "xz"],          # triangle
    ["xy", "yz", "zw"],          # path
    ["xy", "xz", "xw"],          # star
    ["xyz", "zw"],               # ternary edge
    ["xyz", "yzw"],
    ["x", "xy"],
    ["wxyz"],
]

rows_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6), st.integers(0, 6),
              st.integers(0, 6)),
    max_size=40,
)


def _build_participants(shape, table_rows):
    participants = []
    tables = []
    for attrs, rows in zip(shape, table_rows):
        arity = len(attrs)
        trimmed = sorted({r[:arity] for r in rows})
        # The trie's level order must be the processing order
        # (alphabetical) restricted to this relation's attributes.
        order = sorted(attrs)
        perm = [attrs.index(a) for a in order]
        reordered = [tuple(r[p] for p in perm) for r in trimmed]
        cols = [
            np.array([r[i] for r in reordered], dtype=np.uint32)
            for i in range(arity)
        ] if reordered else [
            np.empty(0, dtype=np.uint32) for _ in range(arity)
        ]
        trie = Trie.build(cols, tuple(order))
        participants.append(
            Participant(
                trie=trie,
                attrs=tuple(V[a] for a in order),
                label=attrs,
            )
        )
        tables.append((attrs, trimmed))
    return participants, tables


def _brute_force(shape, tables, all_attrs, selections):
    domain = range(0, 7)
    results = set()
    for combo in product(domain, repeat=len(all_attrs)):
        binding = dict(zip(all_attrs, combo))
        if any(binding[a] != v for a, v in selections.items()):
            continue
        ok = True
        for attrs, rows in tables:
            needed = tuple(binding[a] for a in attrs)
            if needed not in set(rows):
                ok = False
                break
        if ok:
            results.add(tuple(binding[a] for a in all_attrs))
    return results


@given(
    st.sampled_from(SHAPES),
    st.lists(rows_strategy, min_size=9, max_size=9),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_generic_join_matches_brute_force(shape, all_rows, with_selection):
    participants, tables = _build_participants(shape, all_rows)
    all_attrs = sorted({a for attrs in shape for a in attrs})
    attr_vars = [V[a] for a in all_attrs]

    selections = {}
    if with_selection:
        selections[all_attrs[-1]] = 3

    sel_vars = {V[a]: v for a, v in selections.items()}
    output = [V[a] for a in all_attrs if a not in selections]

    expected_full = _brute_force(shape, tables, all_attrs, selections)
    keep = [i for i, a in enumerate(all_attrs) if a not in selections]
    expected = {tuple(row[i] for i in keep) for row in expected_full}

    fast = generic_join(attr_vars, participants, sel_vars, output)
    assert fast.to_set() == expected

    slow = generic_join_recursive(attr_vars, participants, sel_vars, output)
    assert slow.to_set() == expected


@given(
    st.lists(rows_strategy, min_size=3, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_triangle_output_within_agm_bound(all_rows):
    """The generic join's output on a triangle never exceeds the AGM
    bound (N1 * N2 * N3) ** 0.5."""
    shape = ["xy", "yz", "xz"]
    participants, tables = _build_participants(shape, all_rows)
    sizes = [len(rows) for _, rows in tables]
    result = generic_join(
        [V["x"], V["y"], V["z"]],
        participants,
        {},
        [V["x"], V["y"], V["z"]],
    )
    bound = (max(sizes[0], 1) * max(sizes[1], 1) * max(sizes[2], 1)) ** 0.5
    assert result.num_rows <= bound + 1e-9


@given(
    st.sampled_from(SHAPES),
    st.lists(rows_strategy, min_size=9, max_size=9),
    st.integers(0, 3),
    st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_truncated_attributes_under_selections(
    shape, all_rows, selection_slot, with_selection
):
    """Both implementations agree with brute force when trailing
    attributes are truncated (projected away) while a selection is
    active — the plan_attribute_list interaction the GHD executor
    relies on for selective queries."""
    participants, tables = _build_participants(shape, all_rows)
    all_attrs = sorted({a for attrs in shape for a in attrs})
    attr_vars = [V[a] for a in all_attrs]

    selections = {}
    if with_selection:
        selections[all_attrs[selection_slot % len(all_attrs)]] = 3
    # Project only the first unselected attribute: every trailing
    # attribute becomes a truncation candidate.
    out_attrs = [a for a in all_attrs if a not in selections][:1]
    output = [V[a] for a in out_attrs]
    sel_vars = {V[a]: v for a, v in selections.items()}

    expected_full = _brute_force(shape, tables, all_attrs, selections)
    keep = [all_attrs.index(a) for a in out_attrs]
    expected = {tuple(row[i] for i in keep) for row in expected_full}

    fast = generic_join(attr_vars, participants, sel_vars, output)
    slow = generic_join_recursive(attr_vars, participants, sel_vars, output)
    assert fast.to_set() == expected
    assert slow.to_set() == expected
