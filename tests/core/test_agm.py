"""AGM bound and fractional edge covers (Section II-B)."""

import math

import pytest

from repro.core.agm import agm_bound, cover_number, fractional_edge_cover
from repro.core.hypergraph import Hypergraph
from repro.core.query import Atom, ConjunctiveQuery, Variable, normalize
from repro.errors import PlanningError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _edges(*atoms):
    q = normalize(
        ConjunctiveQuery(
            tuple(atoms),
            tuple(sorted({v for a in atoms for v in a.variables},
                         key=lambda v: v.name)),
        )
    )
    return Hypergraph.from_query(q).edges


def test_triangle_cover_number_is_1_5():
    """The classic result: the triangle's fractional edge cover number
    is 3/2, giving the O(N^{3/2}) bound of Section I."""
    edges = _edges(
        Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X))
    )
    assert cover_number({X, Y, Z}, edges) == pytest.approx(1.5)


def test_triangle_cover_weights_are_half_each():
    edges = _edges(
        Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X))
    )
    weights, value = fractional_edge_cover({X, Y, Z}, edges)
    assert value == pytest.approx(1.5)
    for w in weights.values():
        assert w == pytest.approx(0.5)


def test_single_edge_cover_is_one():
    edges = _edges(Atom("r", (X, Y)))
    assert cover_number({X, Y}, edges) == pytest.approx(1.0)


def test_path_cover_is_two():
    edges = _edges(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    assert cover_number({X, Y, Z}, edges) == pytest.approx(2.0)


def test_partial_cover_subset():
    edges = _edges(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    assert cover_number({Y}, edges) == pytest.approx(1.0)
    assert cover_number(set(), edges) == pytest.approx(0.0)


def test_uncovered_vertex_raises():
    edges = _edges(Atom("r", (X, Y)))
    with pytest.raises(PlanningError):
        cover_number({Z}, edges)


def test_no_edges_raises():
    with pytest.raises(PlanningError):
        cover_number({X}, [])


def test_agm_bound_triangle():
    """AGM bound for a triangle over three N-row relations is N^{3/2}."""
    edges = _edges(
        Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X))
    )
    n = 10_000
    bound = agm_bound(edges, {0: n, 1: n, 2: n})
    assert bound == pytest.approx(n ** 1.5, rel=1e-6)


def test_agm_bound_uses_cheapest_cover():
    """With one tiny relation covering everything, the bound follows it."""
    edges = _edges(Atom("big", (X, Y)), Atom("small", (X, Y)))
    bound = agm_bound(edges, {0: 10**9, 1: 10})
    assert bound == pytest.approx(10.0, rel=1e-6)


def test_agm_bound_zero_for_empty_relation():
    edges = _edges(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    assert agm_bound(edges, {0: 0, 1: 100}) == 0.0


def test_agm_bound_cartesian_product():
    edges = _edges(Atom("r", (X,)), Atom("s", (Y,)))
    bound = agm_bound(edges, {0: 30, 1: 40})
    assert bound == pytest.approx(1200.0, rel=1e-6)


def test_agm_bound_dominates_true_output_on_triangle():
    """The bound is an upper bound: check against a worst-case instance
    (complete bipartite-style star) where triangle output is maximal."""
    import itertools

    k = 8
    pairs = list(itertools.product(range(k), range(k)))
    n = len(pairs)
    true_triangles = sum(
        1
        for (a, b) in pairs
        for c in range(k)
        if (b, c) in set(pairs) and (c, a) in set(pairs)
    )
    edges = _edges(
        Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X))
    )
    bound = agm_bound(edges, {0: n, 1: n, 2: n})
    # The bound is exactly tight on this instance; allow LP epsilon.
    assert bound * (1 + 1e-9) >= true_triangles
    assert bound == pytest.approx(math.pow(n, 1.5), rel=1e-6)
