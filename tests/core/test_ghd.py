"""GHD structure and Definition 1 validity checks."""

import pytest

from repro.core.ghd import GHD, GHDNode
from repro.core.hypergraph import Hypergraph
from repro.core.query import Atom, ConjunctiveQuery, Variable, normalize
from repro.errors import PlanningError

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


def _query(*atoms):
    return normalize(
        ConjunctiveQuery(
            tuple(atoms),
            tuple(sorted({v for a in atoms for v in a.variables},
                         key=lambda v: v.name)),
        )
    )


def _path_query():
    return _query(Atom("r", (X, Y)), Atom("s", (Y, Z)))


def _path_ghd():
    root = GHDNode(0, frozenset({X, Y}), (0,), children=[1])
    child = GHDNode(1, frozenset({Y, Z}), (1,), parent=0)
    return GHD(nodes=[root, child], root=0)


def test_valid_path_decomposition():
    ghd = _path_ghd()
    hypergraph = Hypergraph.from_query(_path_query())
    ghd.check_valid(hypergraph)  # does not raise


def test_depth_height_traversals():
    ghd = _path_ghd()
    assert ghd.depth(0) == 0
    assert ghd.depth(1) == 1
    assert ghd.height == 1
    assert [n.node_id for n in ghd.preorder()] == [0, 1]
    assert [n.node_id for n in ghd.postorder()] == [1, 0]
    assert [n.node_id for n in ghd.bfs_order()] == [0, 1]


def test_edge_not_covered_fails():
    # Child chi misses z, so edge s(y,z) is not covered anywhere.
    root = GHDNode(0, frozenset({X, Y}), (0,), children=[1])
    child = GHDNode(1, frozenset({Y}), (1,), parent=0)
    ghd = GHD(nodes=[root, child], root=0)
    with pytest.raises(PlanningError):
        ghd.check_valid(Hypergraph.from_query(_path_query()))


def test_running_intersection_violation_fails():
    # y appears in two non-adjacent nodes of a 3-node path.
    query = _query(Atom("r", (X, Y)), Atom("s", (X, Z)), Atom("t", (Y, Z)))
    a = GHDNode(0, frozenset({X, Y}), (0,), children=[1])
    b = GHDNode(1, frozenset({X, Z}), (1,), parent=0, children=[2])
    c = GHDNode(2, frozenset({Y, Z}), (2,), parent=1)
    ghd = GHD(nodes=[a, b, c], root=0)
    with pytest.raises(PlanningError):
        ghd.check_valid(Hypergraph.from_query(query))


def test_chi_not_covered_by_lambda_fails():
    root = GHDNode(0, frozenset({X, Y, Z}), (0,), children=[1])
    child = GHDNode(1, frozenset({Y, Z}), (1,), parent=0)
    ghd = GHD(nodes=[root, child], root=0)
    with pytest.raises(PlanningError):
        ghd.check_valid(Hypergraph.from_query(_path_query()))


def test_broken_tree_links_fail():
    root = GHDNode(0, frozenset({X, Y}), (0,), children=[1])
    child = GHDNode(1, frozenset({Y, Z}), (1,), parent=None)  # wrong parent
    ghd = GHD(nodes=[root, child], root=0)
    with pytest.raises(PlanningError):
        ghd.check_valid(Hypergraph.from_query(_path_query()))


def test_width_of_single_triangle_node():
    query = _query(
        Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X))
    )
    node = GHDNode(0, frozenset({X, Y, Z}), (0, 1, 2))
    ghd = GHD(nodes=[node], root=0)
    hypergraph = Hypergraph.from_query(query)
    ghd.check_valid(hypergraph)
    assert ghd.width(hypergraph) == pytest.approx(1.5)


def test_width_with_cover_restriction():
    query = _query(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    node = GHDNode(0, frozenset({X, Y, Z}), (0, 1))
    ghd = GHD(nodes=[node], root=0)
    hypergraph = Hypergraph.from_query(query)
    assert ghd.width(hypergraph) == pytest.approx(2.0)
    assert ghd.width(hypergraph, frozenset({Y})) == pytest.approx(1.0)


def test_selection_depth_counts_deepest_holder():
    a = Variable("a")
    root = GHDNode(0, frozenset({X}), (0,), children=[1])
    mid = GHDNode(1, frozenset({X, a}), (1,), parent=0, children=[2])
    leaf = GHDNode(2, frozenset({X, a}), (2,), parent=1)
    ghd = GHD(nodes=[root, mid, leaf], root=0)
    assert ghd.selection_depth({a}) == 2
    assert ghd.selection_depth(set()) == 0
    assert ghd.selection_depth({Variable("missing")}) == 0
