"""Figure 2 of the paper: the GHD chosen for LUBM query 2.

The paper shows a root node holding the triangle
(undergraduateDegreeFrom, memberOf, subOrganizationOf) with three
children holding the type selections, and reports fhw = 1.5.
"""

import pytest

from repro.core.config import OptimizationConfig
from repro.core.ghd_optimizer import GHDOptimizer
from repro.core.hypergraph import Hypergraph
from repro.core.query import Constant, normalize
from repro.lubm.queries import lubm_query
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query


@pytest.fixture(scope="module")
def query2():
    parsed = sparql_to_query(parse_sparql(lubm_query(2)), name="q2")
    # Bind constants to dummy encoded values for planning.
    from repro.core.query import Atom, ConjunctiveQuery

    atoms = tuple(
        Atom(
            a.relation,
            tuple(
                Constant(i) if isinstance(t, Constant) else t
                for i, t in enumerate(a.terms)
            ),
        )
        for a in parsed.atoms
    )
    return normalize(ConjunctiveQuery(atoms, parsed.projection, "q2"))


def test_figure2_root_is_the_triangle(query2):
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query2)
    root = ghd.root_node
    root_relations = sorted(
        query2.atoms[i].relation for i in root.atom_indices
    )
    assert root_relations == [
        "memberOf",
        "subOrganizationOf",
        "undergraduateDegreeFrom",
    ]


def test_figure2_type_selections_are_children(query2):
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query2)
    root = ghd.root_node
    assert len(root.children) == 3
    for child_id in root.children:
        child = ghd.node(child_id)
        assert len(child.atom_indices) == 1
        assert query2.atoms[child.atom_indices[0]].relation == "type"


def test_figure2_fhw_is_1_5(query2):
    hypergraph = Hypergraph.from_query(query2)
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query2)
    assert ghd.width(hypergraph) == pytest.approx(1.5)
    assert GHDOptimizer().fhw(query2) == pytest.approx(1.5)


def test_figure2_same_shape_without_pushdown(query2):
    """Table I marks +GHD as '-' for query 2: pushdown does not change
    its plan — the baseline criteria already produce Figure 2."""
    baseline = GHDOptimizer(
        OptimizationConfig.all_on().but(ghd_selection_pushdown=False)
    ).decompose(query2)
    root_relations = sorted(
        query2.atoms[i].relation for i in baseline.root_node.atom_indices
    )
    assert root_relations == [
        "memberOf",
        "subOrganizationOf",
        "undergraduateDegreeFrom",
    ]
    assert len(baseline.root_node.children) == 3
