"""Planner: plan assembly, node orders, pipelining rule."""

import pytest

from repro.core.config import OptimizationConfig
from repro.core.planner import Planner
from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
)
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


@pytest.fixture()
def catalog():
    c = Catalog()
    c.register(
        Relation.from_rows(
            "r", ("s", "o"), [(1, 10), (2, 20), (3, 30)]
        )
    )
    c.register(
        Relation.from_rows("s", ("s", "o"), [(1, 100), (2, 200)])
    )
    c.register(
        Relation.from_rows("t", ("s", "o"), [(1, 7), (2, 7), (3, 8)])
    )
    return c


def test_plan_basic_structure(catalog):
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (X, Z))), (X, Y, Z)
    )
    plan = Planner(catalog).plan(query)
    assert set(plan.node_orders) == {
        n.node_id for n in plan.ghd.nodes
    }
    assert {v.name for v in plan.global_order} == {"x", "y", "z"}
    assert plan.width == pytest.approx(1.0)


def test_plan_explain_is_readable(catalog):
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (X, Z))), (X, Y, Z)
    )
    text = Planner(catalog).plan(query).explain()
    assert "global order" in text
    assert "node 0" in text


def test_pipelineable_pair_detected(catalog):
    """Example 3 of the paper: two nodes sharing prefix x are fused."""
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (X, Z))), (X, Y, Z)
    )
    plan = Planner(catalog, OptimizationConfig.all_on()).plan(query)
    if len(plan.ghd.nodes) == 2:  # two-node plan: must be pipelineable
        assert plan.pipelined_child is not None
        child_order = plan.unselected_node_order(plan.pipelined_child)
        root_order = plan.unselected_node_order(plan.ghd.root)
        assert child_order[0] == root_order[0] == X


def test_pipelining_disabled_by_config(catalog):
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (X, Z))), (X, Y, Z)
    )
    plan = Planner(
        catalog, OptimizationConfig.all_on().but(pipelining=False)
    ).plan(query)
    assert plan.pipelined_child is None


def test_non_prefix_share_not_pipelined(catalog):
    """Nodes joining on an attribute that is not a prefix of both trie
    orders must not fuse (Definition 2)."""
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (Y, Z))), (X, Y, Z)
    )
    plan = Planner(catalog, OptimizationConfig.all_on()).plan(query)
    root_order = plan.unselected_node_order(plan.ghd.root)
    if plan.pipelined_child is not None:
        child_order = plan.unselected_node_order(plan.pipelined_child)
        shared = [v for v in root_order if v in child_order]
        k = len(shared)
        assert root_order[:k] == shared
        assert child_order[:k] == shared


def test_selection_cardinality_estimates(catalog):
    query = ConjunctiveQuery(
        (Atom("t", (X, Constant(7))), Atom("r", (X, Y))), (X, Y)
    )
    plan = Planner(catalog, OptimizationConfig.all_on()).plan(query)
    sel_var = next(iter(plan.query.selections))
    assert plan.cardinalities[sel_var] == 1
    assert plan.cardinalities[X] == 2  # two subjects with t.o = 7


def test_baseline_has_no_estimates(catalog):
    query = ConjunctiveQuery((Atom("r", (X, Y)),), (X, Y))
    plan = Planner(catalog, OptimizationConfig.all_off()).plan(query)
    assert plan.cardinalities == {}


def test_single_node_plan_when_ghd_disabled(catalog):
    query = ConjunctiveQuery(
        (Atom("r", (X, Y)), Atom("s", (X, Z))), (X, Y, Z)
    )
    plan = Planner(catalog, OptimizationConfig.all_off()).plan(query)
    assert len(plan.ghd.nodes) == 1
    assert plan.pipelined_child is None
