"""Query hypergraphs: structure, connectivity, acyclicity."""

from repro.core.hypergraph import Hypergraph
from repro.core.query import Atom, ConjunctiveQuery, Variable, normalize

X, Y, Z, W = (Variable(n) for n in "xyzw")


def _hypergraph(*atoms, projection=None):
    projection = projection or tuple(
        sorted({v for a in atoms for v in a.variables}, key=lambda v: v.name)
    )
    return Hypergraph.from_query(
        normalize(ConjunctiveQuery(tuple(atoms), projection))
    )


def test_vertex_and_edge_construction():
    h = _hypergraph(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    assert h.vertices == frozenset({X, Y, Z})
    assert len(h.edges) == 2
    assert h.edges[0].relation == "r"


def test_edges_containing():
    h = _hypergraph(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    assert len(h.edges_containing(Y)) == 2
    assert len(h.edges_containing(X)) == 1


def test_connected_and_components():
    h = _hypergraph(Atom("r", (X, Y)), Atom("s", (Z, W)))
    assert not h.is_connected()
    assert len(h.connected_components()) == 2
    h2 = _hypergraph(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    assert h2.is_connected()


def test_triangle_is_cyclic():
    h = _hypergraph(
        Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X))
    )
    assert h.has_cycle()


def test_path_is_acyclic():
    h = _hypergraph(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    assert not h.has_cycle()


def test_star_is_acyclic():
    h = _hypergraph(
        Atom("r", (X, Y)), Atom("s", (X, Z)), Atom("t", (X, W))
    )
    assert not h.has_cycle()


def test_single_edge_acyclic():
    assert not _hypergraph(Atom("r", (X, Y))).has_cycle()


def test_four_cycle_is_cyclic():
    h = _hypergraph(
        Atom("r", (X, Y)),
        Atom("s", (Y, Z)),
        Atom("t", (Z, W)),
        Atom("u", (W, X)),
    )
    assert h.has_cycle()


def test_triangle_with_pendant_edges_still_cyclic():
    h = _hypergraph(
        Atom("r", (X, Y)),
        Atom("s", (Y, Z)),
        Atom("t", (Z, X)),
        Atom("u", (X, W)),
    )
    assert h.has_cycle()
