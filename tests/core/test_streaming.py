"""Streaming execution: chunked enumeration, dedup, short-circuit.

The contract under test (see ``GHDExecutor.execute_iter``): streamed
chunks concatenate to exactly the materialized result's rows before the
final offset/limit slice, in canonical sorted-by-projection order, with
duplicates already removed — and a consumer that stops pulling stops
the enumeration (the top-k short-circuit the bench gate measures).
"""

import numpy as np
import pytest

from repro.core.executor import _drop_adjacent_duplicates
from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.storage.relation import Relation
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _engine(triples):
    return EmptyHeadedEngine(vertically_partition(triples))


def _drain(engine, text):
    query = engine.prepare_sparql(text)
    pages = list(engine.execute_iter(query))
    assert pages, "execute_iter must always yield at least one page"
    return [row for page in pages for row in engine.decode(page)]


def _star_triples(n):
    triples = []
    for i in range(n):
        triples.append((f"<{EX}s{i}>", f"<{EX}p>", f"<{EX}o{i % 7}>"))
        triples.append((f"<{EX}s{i}>", f"<{EX}q>", f"<{EX}v{i % 3}>"))
    return triples


# ---------------------------------------------------------------------------
# Streamed rows == materialized rows
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "text",
    [
        f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }} LIMIT 5",
        f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }} "
        "LIMIT 4 OFFSET 3",
        f"SELECT ?o ?s WHERE {{ ?s <{EX}p> ?o }} LIMIT 6",  # reordered proj
        f"SELECT ?s WHERE {{ ?s <{EX}p> ?o }} OFFSET 2",  # no limit
        f"SELECT ?v WHERE {{ ?s <{EX}p> <{EX}o1> . ?s <{EX}q> ?v }} LIMIT 2",
        f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }} ORDER BY ?o LIMIT 3",
        f"SELECT ?s WHERE {{ ?s <{EX}p> ?o . "
        f"FILTER(?o != <{EX}o1>) }} LIMIT 3",
        f"SELECT ?s WHERE {{ {{ ?s <{EX}p> <{EX}o1> }} UNION "
        f"{{ ?s <{EX}q> <{EX}v0> }} }} LIMIT 6 OFFSET 1",
        f"SELECT ?s ?v WHERE {{ ?s <{EX}p> ?o "
        f"OPTIONAL {{ ?s <{EX}q> ?v }} }} LIMIT 4",
    ],
)
def test_streamed_rows_match_materialized(text):
    engine = _engine(_star_triples(60))
    assert _drain(engine, text) == engine.decode(engine.execute_sparql(text))


def test_streamed_chunks_are_the_canonical_prefix():
    # Tiny chunks force many chunk boundaries; order must still be the
    # materialized (sorted, distinct) order, row for row.
    engine = _engine(_star_triples(200))
    text = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }}"
    bound = engine.bind(engine.prepare_sparql(text))
    stream = engine.executor.execute_iter(
        engine.plan_for(bound), chunk_rows=7
    )
    assert stream is not None
    rows = []
    for chunk in stream:
        rows.extend(chunk.iter_rows())
    materialized = engine.execute_sparql(text)
    assert rows == list(materialized.iter_rows())


# ---------------------------------------------------------------------------
# DISTINCT under streaming (duplicate-heavy projections and branches)
# ---------------------------------------------------------------------------
def test_short_circuit_counts_distinct_rows_not_enumerated_rows():
    # 120 matching rows project onto only 7 distinct ?o values: LIMIT
    # must be satisfied by *distinct* rows — 5 means 5 distinct, and
    # asking for more than exist yields them all, never padding.
    engine = _engine(_star_triples(120))
    base = f"SELECT ?o WHERE {{ ?s <{EX}p> ?o }}"
    assert len(_drain(engine, base + " LIMIT 5")) == 5
    assert len(set(_drain(engine, base + " LIMIT 5"))) == 5
    assert len(_drain(engine, base + " LIMIT 50")) == 7
    assert _drain(engine, base + " LIMIT 50") == engine.decode(
        engine.execute_sparql(base + " LIMIT 50")
    )


def test_union_merge_counts_distinct_rows_across_branches():
    # Both branches stream the same duplicate-heavy rows; the merge must
    # dedup across branches before counting toward the cap.
    engine = _engine(_star_triples(90))
    text = (
        f"SELECT ?o WHERE {{ {{ ?s <{EX}p> ?o }} UNION "
        f"{{ ?s <{EX}p> ?o }} }} LIMIT 5 OFFSET 1"
    )
    streamed = _drain(engine, text)
    assert streamed == engine.decode(engine.execute_sparql(text))
    assert len(streamed) == len(set(streamed)) == 5


def test_enumerated_tuples_bounded_by_cap_not_store_size():
    # The tentpole gate in miniature: the same LIMIT 10 query over a
    # 10x bigger store must not enumerate 10x the tuples.
    counts = {}
    for scale in (1, 8):
        engine = _engine(_star_triples(120 * scale))
        text = (
            f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }} "
            "LIMIT 10"
        )
        before = engine.executor_stats.enumerated_tuples
        rows = _drain(engine, text)
        counts[scale] = engine.executor_stats.enumerated_tuples - before
        assert len(rows) == 10
    assert counts[8] <= counts[1] * 2, counts


def test_materialized_path_counts_every_join_level():
    engine = _engine(_star_triples(50))
    text = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }}"
    before = engine.executor_stats.enumerated_tuples
    engine.execute_sparql(text)
    assert engine.executor_stats.enumerated_tuples > before


# ---------------------------------------------------------------------------
# Fallbacks and epoch pinning
# ---------------------------------------------------------------------------
def test_modifier_queries_fall_back_to_materialization():
    # ORDER BY / FILTER genuinely need the whole result; the iterator
    # then serves the materialized relation as one page.
    engine = _engine(_star_triples(30))
    text = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }} ORDER BY ?s LIMIT 4"
    query = engine.prepare_sparql(text)
    pages = list(engine.execute_iter(query))
    assert len(pages) == 1
    assert engine.decode(pages[0]) == engine.decode(
        engine.execute_sparql(text)
    )


def test_missing_table_streams_one_empty_page():
    engine = _engine(_star_triples(10))
    text = f"SELECT ?s WHERE {{ ?s <{EX}nosuch> ?o }} LIMIT 3"
    query = engine.prepare_sparql(text)
    pages = list(engine.execute_iter(query))
    assert len(pages) == 1 and pages[0].num_rows == 0
    assert pages[0].attributes == ("s",)


def test_open_stream_pins_its_epoch_across_updates():
    engine = _engine(_star_triples(40))
    store = engine.store
    text = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o }}"
    query = engine.prepare_sparql(text)
    before = engine.decode(engine.execute_sparql(text))
    stream = engine.execute_iter(query)
    first = next(stream)
    store.add_triples([(f"<{EX}zz>", f"<{EX}p>", f"<{EX}o0>")])
    store.remove_triples([(f"<{EX}s1>", f"<{EX}p>", f"<{EX}o{1 % 7}>")])
    rows = engine.decode(first) + [
        row for page in stream for row in engine.decode(page)
    ]
    assert rows == before
    # A fresh execution sees the new epoch.
    assert len(engine.decode(engine.execute_sparql(text))) == len(before)


def test_abandoned_stream_stops_enumerating():
    engine = _engine(_star_triples(500))
    text = f"SELECT ?s ?o WHERE {{ ?s <{EX}p> ?o . ?s <{EX}q> ?v }}"
    bound = engine.bind(engine.prepare_sparql(text))
    stream = engine.executor.execute_iter(
        engine.plan_for(bound), chunk_rows=16
    )
    before = engine.executor_stats.enumerated_tuples
    next(stream)
    stream.close()
    spent = engine.executor_stats.enumerated_tuples - before
    # One 16-row chunk was completed (plus its deeper bindings), far
    # from the 500-row frontier a full enumeration carries.
    assert spent < 100, spent


# ---------------------------------------------------------------------------
# The sorted-stream dedup helper
# ---------------------------------------------------------------------------
def _rel(rows):
    return Relation.from_rows("r", ["a", "b"], rows)


def test_drop_adjacent_duplicates_within_and_across_chunks():
    chunk, last = _drop_adjacent_duplicates(
        _rel([(1, 1), (1, 1), (1, 2), (2, 1), (2, 1)]), None
    )
    assert list(chunk.iter_rows()) == [(1, 1), (1, 2), (2, 1)]
    assert last == (2, 1)
    chunk, last = _drop_adjacent_duplicates(_rel([(2, 1), (3, 0)]), last)
    assert list(chunk.iter_rows()) == [(3, 0)]
    assert last == (3, 0)
    chunk, last = _drop_adjacent_duplicates(_rel([]), last)
    assert chunk.num_rows == 0 and last == (3, 0)
