"""Figure 3 of the paper: across-node selection pushdown on LUBM query 4.

Without the +GHD optimization the optimizer picks a flat star (height 1)
— selections sit directly under the root, and the unselected relations
materialize in full. With it, selected relations are pushed below all
other nodes, maximizing selection depth.
"""

import pytest

from repro.core.config import OptimizationConfig
from repro.core.ghd_optimizer import GHDOptimizer
from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    normalize,
)

X = Variable("x")
Y1, Y2, Y3 = Variable("y1"), Variable("y2"), Variable("y3")


@pytest.fixture(scope="module")
def query4():
    """R(x,y1) . S(x,a=c) . T(x,b=c) . U(x,y2) . V(x,y3)."""
    return normalize(
        ConjunctiveQuery(
            (
                Atom("R", (X, Y1)),
                Atom("S", (X, Constant(10))),
                Atom("T", (X, Constant(11))),
                Atom("U", (X, Y2)),
                Atom("V", (X, Y3)),
            ),
            (X, Y1, Y2, Y3),
        )
    )


def test_baseline_is_flat_star(query4):
    ghd = GHDOptimizer(
        OptimizationConfig.all_on().but(ghd_selection_pushdown=False)
    ).decompose(query4)
    assert ghd.height == 1
    assert len(ghd.nodes) == 5


def test_pushdown_moves_selections_below_everything(query4):
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query4)
    sel_vars = set(query4.selections)
    # Selected atoms (S and T) sit strictly deeper than every unselected
    # relation node.
    selected_nodes = [
        n
        for n in ghd.nodes
        if any(v in sel_vars for v in n.chi)
    ]
    unselected_nodes = [
        n
        for n in ghd.nodes
        if not any(v in sel_vars for v in n.chi)
    ]
    min_selected_depth = min(ghd.depth(n.node_id) for n in selected_nodes)
    max_unselected_depth = max(ghd.depth(n.node_id) for n in unselected_nodes)
    assert min_selected_depth > max_unselected_depth


def test_pushdown_maximizes_selection_depth(query4):
    on = GHDOptimizer(OptimizationConfig.all_on()).decompose(query4)
    off = GHDOptimizer(
        OptimizationConfig.all_on().but(ghd_selection_pushdown=False)
    ).decompose(query4)
    sel_vars = set(query4.selections)
    # The paper's chain (Figure 3 right) has selections at depths 3 and
    # 4; the flat star leaves them at depth <= 1 each.
    assert off.selection_depth(sel_vars) <= 2
    assert on.selection_depth(sel_vars) >= 6
    assert on.selection_depth(sel_vars) > off.selection_depth(sel_vars)


def test_unselected_relations_form_a_chain(query4):
    """Figure 3 (right): the unselected relations stack so selections can
    sink below all of them."""
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query4)
    sel_vars = set(query4.selections)
    unselected_nodes = [
        n for n in ghd.nodes if not any(v in sel_vars for v in n.chi)
    ]
    depths = sorted(ghd.depth(n.node_id) for n in unselected_nodes)
    assert depths == [0, 1, 2]  # a chain of the three unselected atoms


def test_pushdown_result_is_valid(query4):
    from repro.core.hypergraph import Hypergraph

    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query4)
    ghd.check_valid(Hypergraph.from_query(query4))
