"""Per-branch LIMIT pushdown for UNION queries."""

import pytest

from repro.core.blocks import branch_row_cap, required_query
from repro.core.query import bind_union
from repro.engines import ALL_ENGINES
from repro.rdf.vocabulary import RDF_TYPE
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _graph():
    triples = []
    for i in range(30):
        triples.append((f"<{EX}s{i:02}>", RDF_TYPE, f"<{EX}A>"))
        triples.append((f"<{EX}t{i:02}>", RDF_TYPE, f"<{EX}B>"))
        if i % 3 == 0:
            triples.append(
                (f"<{EX}s{i:02}>", f"<{EX}age>", f'"{i}"')
            )
    return triples


@pytest.fixture()
def store():
    return vertically_partition(_graph())


def _bound(store, text):
    tree = sparql_to_query(parse_sparql(text))
    return bind_union(tree, store.dictionary, store.table_names())


UNION_TEXT = (
    f"SELECT ?x WHERE {{ {{ ?x a <{EX}A> }} UNION {{ ?x a <{EX}B> }} }}"
)


def test_cap_is_offset_plus_limit(store):
    bound = _bound(store, UNION_TEXT + " LIMIT 5 OFFSET 2")
    assert branch_row_cap(bound) == 7


def test_no_cap_without_limit_or_with_order_by(store):
    assert branch_row_cap(_bound(store, UNION_TEXT)) is None
    ordered = _bound(store, UNION_TEXT + " ORDER BY ?x LIMIT 5")
    assert branch_row_cap(ordered) is None


def test_simple_blocks_carry_the_engine_level_limit(store):
    bound = _bound(store, UNION_TEXT + " LIMIT 5")
    for index, block in enumerate(bound.blocks):
        assert required_query(bound, block, index).limit == 5


def test_blocks_with_filters_or_optionals_get_no_engine_limit(store):
    text = (
        f"SELECT ?x WHERE {{ "
        f"{{ ?x a <{EX}A> . ?x <{EX}age> ?a FILTER(?a > 3) }} UNION "
        f"{{ ?x a <{EX}B> . OPTIONAL {{ ?x <{EX}age> ?b }} }} }} LIMIT 4"
    )
    bound = _bound(store, text)
    for index, block in enumerate(bound.blocks):
        assert required_query(bound, block, index).limit is None


def test_order_by_queries_keep_unlimited_branches(store):
    bound = _bound(store, UNION_TEXT + " ORDER BY ?x LIMIT 5")
    for index, block in enumerate(bound.blocks):
        assert required_query(bound, block, index).limit is None


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
@pytest.mark.parametrize(
    "modifiers",
    ["LIMIT 5", "LIMIT 5 OFFSET 3", "LIMIT 100", "OFFSET 2 LIMIT 1"],
)
def test_pushdown_preserves_answers(engine_cls, store, modifiers):
    """The capped union returns exactly the uncapped union's slice."""
    engine = engine_cls(store)
    full = engine.execute_sparql(UNION_TEXT)
    limited = engine.execute_sparql(f"{UNION_TEXT} {modifiers}")
    tokens = modifiers.split()
    values = {
        tokens[i]: int(tokens[i + 1]) for i in range(0, len(tokens), 2)
    }
    offset = values.get("OFFSET", 0)
    limit = values["LIMIT"]
    expected = list(full.iter_rows())[offset : offset + limit]
    assert list(limited.iter_rows()) == expected


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_pushdown_with_filtered_branches(engine_cls, store):
    engine = engine_cls(store)
    text = (
        f"SELECT ?x WHERE {{ "
        f"{{ ?x a <{EX}A> . ?x <{EX}age> ?a FILTER(?a > 3) }} UNION "
        f"{{ ?x a <{EX}B> }} }}"
    )
    full = engine.execute_sparql(text)
    limited = engine.execute_sparql(text + " LIMIT 6 OFFSET 1")
    assert list(limited.iter_rows()) == list(full.iter_rows())[1:7]
