"""GHD enumeration and selection criteria."""

import pytest

from repro.core.config import OptimizationConfig
from repro.core.ghd_optimizer import GHDOptimizer, prufer_trees, set_partitions
from repro.core.hypergraph import Hypergraph
from repro.core.query import Atom, ConjunctiveQuery, Variable, normalize

X, Y, Z, W = (Variable(n) for n in "xyzw")


def _query(*atoms, projection=None):
    projection = projection or tuple(
        sorted({v for a in atoms for v in a.variables}, key=lambda v: v.name)
    )
    return normalize(ConjunctiveQuery(tuple(atoms), projection))


def test_set_partitions_bell_numbers():
    assert len(set_partitions([1])) == 1
    assert len(set_partitions([1, 2])) == 2
    assert len(set_partitions([1, 2, 3])) == 5
    assert len(set_partitions([1, 2, 3, 4])) == 15
    assert len(set_partitions(list(range(6)))) == 203


def test_prufer_cayley_counts():
    assert len(prufer_trees(1)) == 1
    assert len(prufer_trees(2)) == 1
    assert len(prufer_trees(3)) == 3
    assert len(prufer_trees(4)) == 16
    # Every decoded edge list is a tree: k-1 edges, connected.
    for edges in prufer_trees(4):
        assert len(edges) == 3
        nodes = {n for e in edges for n in e}
        assert nodes == set(range(4))


def test_triangle_gets_single_node():
    query = _query(Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X)))
    ghd = GHDOptimizer().decompose(query)
    # The triangle cannot be decomposed; it lives in one node of width 1.5.
    triangle_nodes = [n for n in ghd.nodes if len(n.atom_indices) == 3]
    assert len(triangle_nodes) == 1
    assert ghd.width(Hypergraph.from_query(query)) == pytest.approx(1.5)


def test_path_splits_into_width_one_nodes():
    query = _query(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    ghd = GHDOptimizer().decompose(query)
    assert len(ghd.nodes) == 2
    assert ghd.width(Hypergraph.from_query(query)) == pytest.approx(1.0)


def test_single_atom_single_node():
    query = _query(Atom("r", (X, Y)))
    ghd = GHDOptimizer().decompose(query)
    assert len(ghd.nodes) == 1
    assert ghd.nodes[0].atom_indices == (0,)


def test_fhw_triangle():
    query = _query(Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X)))
    assert GHDOptimizer().fhw(query) == pytest.approx(1.5)


def test_fhw_acyclic_is_one():
    query = _query(Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, W)))
    assert GHDOptimizer().fhw(query) == pytest.approx(1.0)


def test_single_node_mode():
    config = OptimizationConfig.all_off()
    query = _query(Atom("r", (X, Y)), Atom("s", (Y, Z)))
    ghd = GHDOptimizer(config).decompose(query)
    assert len(ghd.nodes) == 1
    assert ghd.nodes[0].atom_indices == (0, 1)


def test_every_emitted_ghd_is_valid():
    queries = [
        _query(Atom("r", (X, Y)), Atom("s", (Y, Z)), Atom("t", (Z, X))),
        _query(Atom("r", (X, Y)), Atom("s", (X, Z)), Atom("t", (X, W))),
        _query(Atom("r", (X, Y))),
        _query(
            Atom("r", (X, Y)),
            Atom("s", (Y, Z)),
            Atom("t", (Z, W)),
            Atom("u", (W, X)),
        ),
    ]
    for config in (
        OptimizationConfig.all_on(),
        OptimizationConfig.baseline_with_ghd(),
        OptimizationConfig.all_off(),
    ):
        for query in queries:
            ghd = GHDOptimizer(config).decompose(query)
            ghd.check_valid(Hypergraph.from_query(query))


def test_four_cycle_width():
    query = _query(
        Atom("r", (X, Y)),
        Atom("s", (Y, Z)),
        Atom("t", (Z, W)),
        Atom("u", (W, X)),
    )
    # fhw of a 4-cycle is 2 under edge-partition decompositions.
    fhw = GHDOptimizer().fhw(query)
    assert fhw == pytest.approx(2.0)


def test_selection_pushdown_places_selected_atoms_deepest():
    from repro.core.query import Constant

    # R(x,y1), S(x,a=c), T(x,b=c), U(x,y2), V(x,y3) — LUBM query 4's shape.
    y1, y2, y3 = Variable("y1"), Variable("y2"), Variable("y3")
    query = normalize(
        ConjunctiveQuery(
            (
                Atom("r", (X, y1)),
                Atom("s", (X, Constant(1))),
                Atom("t", (X, Constant(2))),
                Atom("u", (X, y2)),
                Atom("v", (X, y3)),
            ),
            (X, y1, y2, y3),
        )
    )
    on = GHDOptimizer(OptimizationConfig.all_on()).decompose(query)
    off = GHDOptimizer(
        OptimizationConfig.all_on().but(ghd_selection_pushdown=False)
    ).decompose(query)
    sel_vars = set(query.selections)
    assert on.selection_depth(sel_vars) > off.selection_depth(sel_vars)


def test_pushdown_retries_with_merged_base_when_rip_breaks():
    """A selected ternary atom whose two unselected variables live in
    *different* nodes of the min-width base used to abandon pushdown;
    the optimizer now re-decomposes with a must-cover constraint so one
    (wider) base node hosts the selected atom."""
    from repro.core.query import Constant

    query = _query(
        Atom("r", (X, Z)),
        Atom("q", (Y, Z)),
        Atom("t", (X, Y, Constant(5))),
    )
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query)
    sel_vars = set(query.selections)
    # The selected atom is pushed strictly below a base node covering
    # both of its unselected variables.
    assert ghd.selection_depth(sel_vars) >= 1
    selected_nodes = [n for n in ghd.nodes if sel_vars & n.chi]
    assert len(selected_nodes) == 1
    (node,) = selected_nodes
    assert node.parent is not None
    host = ghd.nodes[node.parent]
    assert {X, Y} <= host.chi


def test_pushdown_merged_base_still_beaten_by_plain_attach():
    """Shapes where plain attach already satisfies running intersection
    never take the merged-base retry (the base keeps min width)."""
    from repro.core.query import Constant

    query = _query(
        Atom("r", (X, Y)),
        Atom("s", (Y, Z)),
        Atom("t", (Y, Constant(3))),
    )
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query)
    hypergraph = Hypergraph.from_query(query)
    assert ghd.width(hypergraph) == pytest.approx(1.0)
    assert ghd.selection_depth(set(query.selections)) >= 1


def test_pushdown_falls_back_when_merging_cannot_help():
    """Selected atoms sharing a variable no unselected atom holds still
    fall back to the baseline decomposition (and stay valid)."""
    from repro.core.query import Constant

    w = Variable("w")
    query = _query(
        Atom("r", (X, Z)),
        Atom("q", (Y, Z)),
        Atom("t", (X, Y, Constant(5))),
        Atom("u", (X, Y, w, Constant(6))),
    )
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query)
    ghd.check_valid(Hypergraph.from_query(query))
