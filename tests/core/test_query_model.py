"""Conjunctive-query model: atoms, normalization, constant binding."""

import pytest

from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    bind_constants,
    normalize,
)
from repro.errors import PlanningError
from repro.storage.dictionary import Dictionary

X, Y = Variable("x"), Variable("y")


def test_atom_variables_and_constants():
    atom = Atom("r", (X, Constant(5)))
    assert atom.variables == (X,)
    assert atom.constants == (Constant(5),)
    assert atom.has_selection


def test_atom_requires_terms():
    with pytest.raises(PlanningError):
        Atom("r", ())


def test_query_validates_projection():
    with pytest.raises(PlanningError):
        ConjunctiveQuery((Atom("r", (X,)),), (Y,))


def test_query_requires_atoms():
    with pytest.raises(PlanningError):
        ConjunctiveQuery((), (X,))


def test_query_variables_and_is_full():
    q = ConjunctiveQuery((Atom("r", (X, Y)),), (X,))
    assert q.variables() == {X, Y}
    assert not q.is_full()
    assert ConjunctiveQuery((Atom("r", (X, Y)),), (X, Y)).is_full()


def test_normalize_extracts_selections():
    q = ConjunctiveQuery(
        (Atom("r", (X, Constant(7))), Atom("s", (Constant(3), Y))),
        (X, Y),
    )
    n = normalize(q)
    assert len(n.selections) == 2
    assert set(n.selections.values()) == {7, 3}
    # Every atom term is now a variable.
    for atom in n.atoms:
        assert all(isinstance(t, Variable) for t in atom.terms)
    assert n.unselected_variables() == {X, Y}


def test_normalize_gives_fresh_variable_per_occurrence():
    q = ConjunctiveQuery(
        (Atom("r", (X, Constant(7))), Atom("s", (X, Constant(7)))),
        (X,),
    )
    n = normalize(q)
    sel_vars = list(n.selections)
    assert len(sel_vars) == 2
    assert sel_vars[0] != sel_vars[1]


def test_normalize_rejects_unbound_string_constants():
    q = ConjunctiveQuery((Atom("r", (X, Constant("<iri>"))),), (X,))
    with pytest.raises(PlanningError):
        normalize(q)


def test_bind_constants_encodes_known_terms():
    d = Dictionary()
    d.encode("<iri>")
    q = ConjunctiveQuery((Atom("r", (X, Constant("<iri>"))),), (X,))
    bound = bind_constants(q, d)
    assert bound is not None
    assert bound.atoms[0].terms[1] == Constant(0)


def test_bind_constants_returns_none_for_unknown_terms():
    q = ConjunctiveQuery((Atom("r", (X, Constant("<never-seen>"))),), (X,))
    assert bind_constants(q, Dictionary()) is None


def test_bind_constants_keeps_integer_constants():
    d = Dictionary()
    q = ConjunctiveQuery((Atom("r", (X, Constant(9))),), (X,))
    bound = bind_constants(q, d)
    assert bound.atoms[0].terms[1] == Constant(9)
