"""Post-join FILTER / ORDER BY / LIMIT semantics over decoded terms."""

import numpy as np
import pytest

from repro.core.modifiers import (
    apply_filters,
    apply_order,
    apply_slice,
    term_value,
)
from repro.core.query import Comparison, Constant, OrderKey, Variable
from repro.storage.dictionary import Dictionary
from repro.storage.relation import Relation

X, Y = Variable("x"), Variable("y")


@pytest.fixture()
def dictionary():
    return Dictionary()


def encoded(dictionary, attrs, lexical_rows):
    """A Relation from rows of lexical terms, encoded on the fly."""
    rows = [
        tuple(dictionary.encode(term) for term in row)
        for row in lexical_rows
    ]
    return Relation.from_rows("t", attrs, rows)


def decoded(dictionary, relation):
    return {
        tuple(dictionary.decode(v) for v in row)
        for row in relation.iter_rows()
    }


# ---------------------------------------------------------------------------
# term_value
# ---------------------------------------------------------------------------
def test_term_value_numeric_literal():
    assert term_value('"42"') == (0, 42.0)
    assert term_value('"-3.5"') == (0, -3.5)


def test_term_value_string_literal_strips_quotes():
    assert term_value('"Alice"') == (1, "Alice")


def test_term_value_language_tag_ignored_for_comparison():
    assert term_value('"chat"@fr') == (1, "chat")


def test_term_value_iri_is_full_lexical():
    assert term_value("<http://x>") == (1, "<http://x>")


def test_numbers_sort_before_strings():
    assert term_value('"9"') < term_value('"Alice"')


# ---------------------------------------------------------------------------
# apply_filters
# ---------------------------------------------------------------------------
def test_string_equality_is_lexical_identity(dictionary):
    rel = encoded(
        dictionary, ["x"], [('"Alice"',), ('"Alice"@en',), ('"Bob"',)]
    )
    out = apply_filters(
        rel, [Comparison(X, "=", Constant('"Alice"'))], dictionary
    )
    assert decoded(dictionary, out) == {('"Alice"',)}


def test_numeric_equality_matches_by_value(dictionary):
    rel = encoded(
        dictionary, ["x"], [('"42"',), ('"42.0"',), ('"7"',), ('"n/a"',)]
    )
    out = apply_filters(rel, [Comparison(X, "=", Constant(42.0))], dictionary)
    assert decoded(dictionary, out) == {('"42"',), ('"42.0"',)}


def test_numeric_inequality_excludes_non_numeric_rows(dictionary):
    rel = encoded(dictionary, ["x"], [('"1"',), ('"10"',), ('"abc"',)])
    out = apply_filters(rel, [Comparison(X, "<", Constant(5.0))], dictionary)
    assert decoded(dictionary, out) == {('"1"',)}


def test_not_equals_unknown_constant_keeps_all(dictionary):
    rel = encoded(dictionary, ["x"], [('"a"',), ('"b"',)])
    out = apply_filters(
        rel, [Comparison(X, "!=", Constant('"never-seen"'))], dictionary
    )
    assert out.num_rows == 2


def test_equals_unknown_constant_drops_all(dictionary):
    rel = encoded(dictionary, ["x"], [('"a"',), ('"b"',)])
    out = apply_filters(
        rel, [Comparison(X, "=", Constant('"never-seen"'))], dictionary
    )
    assert out.num_rows == 0


def test_variable_variable_equality_on_keys(dictionary):
    rel = encoded(
        dictionary,
        ["x", "y"],
        [('"a"', '"a"'), ('"a"', '"b"'), ('"c"', '"c"')],
    )
    eq = apply_filters(rel, [Comparison(X, "=", Y)], dictionary)
    ne = apply_filters(rel, [Comparison(X, "!=", Y)], dictionary)
    assert decoded(dictionary, eq) == {('"a"', '"a"'), ('"c"', '"c"')}
    assert decoded(dictionary, ne) == {('"a"', '"b"')}


def test_variable_variable_ordering_by_value(dictionary):
    rel = encoded(
        dictionary,
        ["x", "y"],
        [('"2"', '"10"'), ('"10"', '"2"'), ('"2"', '"abc"')],
    )
    out = apply_filters(rel, [Comparison(X, "<", Y)], dictionary)
    # "2" < "10" numerically; the mixed numeric/string row is excluded.
    assert decoded(dictionary, out) == {('"2"', '"10"')}


def test_string_ordering_lexicographic(dictionary):
    rel = encoded(dictionary, ["x"], [('"apple"',), ('"pear"',)])
    out = apply_filters(
        rel, [Comparison(X, "<", Constant('"m"'))], dictionary
    )
    assert decoded(dictionary, out) == {('"apple"',)}


def test_constant_constant_static_evaluation(dictionary):
    rel = encoded(dictionary, ["x"], [('"a"',), ('"b"',)])
    kept = apply_filters(
        rel, [Comparison(Constant(1.0), "<", Constant(2.0))], dictionary
    )
    dropped = apply_filters(
        rel, [Comparison(Constant(2.0), "<", Constant(1.0))], dictionary
    )
    assert kept.num_rows == 2
    assert dropped.num_rows == 0


def test_conjunction_of_filters(dictionary):
    rel = encoded(dictionary, ["x"], [('"1"',), ('"5"',), ('"9"',)])
    out = apply_filters(
        rel,
        [
            Comparison(X, ">", Constant(2.0)),
            Comparison(X, "<", Constant(8.0)),
        ],
        dictionary,
    )
    assert decoded(dictionary, out) == {('"5"',)}


# ---------------------------------------------------------------------------
# apply_order / apply_slice
# ---------------------------------------------------------------------------
def test_order_numbers_before_strings(dictionary):
    rel = encoded(
        dictionary, ["x"], [('"beta"',), ('"10"',), ('"2"',), ('"alpha"',)]
    )
    out = apply_order(rel, [OrderKey(X)], dictionary)
    ordered = [
        dictionary.decode(v) for (v,) in out.iter_rows()
    ]
    assert ordered == ['"2"', '"10"', '"alpha"', '"beta"']


def test_order_descending(dictionary):
    rel = encoded(dictionary, ["x"], [('"1"',), ('"3"',), ('"2"',)])
    out = apply_order(rel, [OrderKey(X, descending=True)], dictionary)
    assert [dictionary.decode(v) for (v,) in out.iter_rows()] == [
        '"3"',
        '"2"',
        '"1"',
    ]


def test_order_multi_key_stable(dictionary):
    rel = encoded(
        dictionary,
        ["x", "y"],
        [('"b"', '"1"'), ('"a"', '"2"'), ('"a"', '"1"')],
    )
    out = apply_order(rel, [OrderKey(X), OrderKey(Y)], dictionary)
    rows = [
        tuple(dictionary.decode(v) for v in row) for row in out.iter_rows()
    ]
    assert rows == [('"a"', '"1"'), ('"a"', '"2"'), ('"b"', '"1"')]


def test_slice_offset_and_limit(dictionary):
    rel = Relation.from_rows("t", ["x"], [(i,) for i in range(10)])
    out = apply_slice(rel, 3, 4)
    assert list(out.column("x")) == [3, 4, 5, 6]
    assert apply_slice(rel, 0, None) is rel
    assert apply_slice(rel, 8, 5).num_rows == 2


# ---------------------------------------------------------------------------
# Unified (in)equality semantics: values for numbers, lexical identity
# otherwise, IRI-vs-number definitively unequal
# ---------------------------------------------------------------------------
def test_variable_variable_numeric_equality_by_value(dictionary):
    rel = encoded(
        dictionary,
        ["x", "y"],
        [('"42"', '"42.0"'), ('"42"', '"7"'), ('"a"', '"a"')],
    )
    eq = apply_filters(rel, [Comparison(X, "=", Y)], dictionary)
    # "42" = "42.0" numerically, consistent with FILTER(?x = 42).
    assert decoded(dictionary, eq) == {
        ('"42"', '"42.0"'),
        ('"a"', '"a"'),
    }
    ne = apply_filters(rel, [Comparison(X, "!=", Y)], dictionary)
    assert decoded(dictionary, ne) == {('"42"', '"7"')}


def test_not_equals_number_keeps_iri_rows(dictionary):
    """An IRI and a number are unequal, not a type error (SPARQL
    RDFterm-equal): FILTER(?x != 42) must keep IRI bindings."""
    rel = encoded(
        dictionary, ["x"], [("<http://o1>",), ('"42"',), ('"7"',)]
    )
    out = apply_filters(
        rel, [Comparison(X, "!=", Constant(42.0))], dictionary
    )
    assert decoded(dictionary, out) == {("<http://o1>",), ('"7"',)}


def test_equals_number_excludes_iri_rows(dictionary):
    rel = encoded(dictionary, ["x"], [("<http://o1>",), ('"42"',)])
    out = apply_filters(
        rel, [Comparison(X, "=", Constant(42.0))], dictionary
    )
    assert decoded(dictionary, out) == {('"42"',)}


def test_not_equals_number_excludes_non_numeric_literals(dictionary):
    """A non-numeric *literal* against a number is a type error: the
    row is excluded under both = and !=."""
    rel = encoded(dictionary, ["x"], [('"abc"',), ('"7"',)])
    ne = apply_filters(
        rel, [Comparison(X, "!=", Constant(42.0))], dictionary
    )
    assert decoded(dictionary, ne) == {('"7"',)}
    eq = apply_filters(
        rel, [Comparison(X, "=", Constant(7.0))], dictionary
    )
    assert decoded(dictionary, eq) == {('"7"',)}


def test_variable_variable_iri_vs_number_not_equal(dictionary):
    rel = encoded(
        dictionary,
        ["x", "y"],
        [("<http://o1>", '"42"'), ('"42"', '"42"'), ('"abc"', '"42"')],
    )
    ne = apply_filters(rel, [Comparison(X, "!=", Y)], dictionary)
    # IRI vs number: unequal (kept); literal "abc" vs number: type
    # error (excluded); "42" vs "42": equal (excluded).
    assert decoded(dictionary, ne) == {("<http://o1>", '"42"')}
