"""Global attribute order heuristics (Sections II-C, III-B1)."""

from repro.core.attribute_order import (
    appearance_order,
    global_attribute_order,
    node_attribute_order,
)
from repro.core.config import OptimizationConfig
from repro.core.ghd_optimizer import GHDOptimizer
from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Variable,
    normalize,
)

X, A = Variable("x"), Variable("a")


def _example1_query():
    """LUBM query 14: select x from R where a = 'University'."""
    return normalize(
        ConjunctiveQuery((Atom("type", (X, Constant(42))),), (X,))
    )


def test_example1_baseline_order_is_x_then_a():
    """Example 1 of the paper: without the heuristic the trie order is
    [x, a] — probing the second level for every x."""
    query = _example1_query()
    ghd = GHDOptimizer(OptimizationConfig.all_off()).decompose(query)
    order = global_attribute_order(query, ghd, reorder_selections=False)
    assert [v.name for v in order] == ["x", "_sel0"]


def test_example1_optimized_order_is_a_then_x():
    """With +Attribute the selection comes first: [a, x]."""
    query = _example1_query()
    ghd = GHDOptimizer(OptimizationConfig.all_on()).decompose(query)
    order = global_attribute_order(query, ghd, reorder_selections=True)
    assert [v.name for v in order] == ["_sel0", "x"]


def test_appearance_order_follows_bfs():
    y, z = Variable("y"), Variable("z")
    query = normalize(
        ConjunctiveQuery(
            (Atom("r", (X, y)), Atom("s", (y, z))), (X, y, z)
        )
    )
    ghd = GHDOptimizer().decompose(query)
    order = appearance_order(query, ghd)
    assert set(order) == {X, y, z}
    # The root node's attributes come first.
    root_vars = ghd.root_node.chi
    assert set(order[: len(root_vars)]) == root_vars


def test_small_cardinality_promotion():
    y = Variable("y")
    query = normalize(
        ConjunctiveQuery((Atom("r", (X, y)),), (X, y))
    )
    ghd = GHDOptimizer().decompose(query)
    order = global_attribute_order(
        query,
        ghd,
        reorder_selections=True,
        cardinalities={X: 100_000, y: 3},
    )
    assert order[0] == y


def test_promotion_respects_threshold():
    y = Variable("y")
    query = normalize(
        ConjunctiveQuery((Atom("r", (X, y)),), (X, y))
    )
    ghd = GHDOptimizer().decompose(query)
    order = global_attribute_order(
        query,
        ghd,
        reorder_selections=True,
        cardinalities={X: 100, y: 50},  # both above the threshold
    )
    assert order[0] == X  # appearance order preserved


def test_node_attribute_order_restricts_global():
    y, z = Variable("y"), Variable("z")
    global_order = [z, X, y]
    assert node_attribute_order(frozenset({X, y}), global_order) == [X, y]


def test_lubm_query2_order_selections_first():
    """Section III-B1: the order chosen for LUBM query 2 puts the three
    type selections before x, y, z."""
    from repro.core.planner import Planner
    from repro.storage.catalog import Catalog
    from repro.storage.relation import Relation

    catalog = Catalog()
    catalog.register(
        Relation.from_rows("type", ("s", "o"), [(1, 10), (2, 11), (3, 12)])
    )
    catalog.register(
        Relation.from_rows("udf", ("s", "o"), [(1, 2)])
    )
    catalog.register(Relation.from_rows("mem", ("s", "o"), [(1, 3)]))
    catalog.register(Relation.from_rows("sub", ("s", "o"), [(3, 2)]))
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    query = ConjunctiveQuery(
        (
            Atom("type", (x, Constant(10))),
            Atom("type", (y, Constant(11))),
            Atom("type", (z, Constant(12))),
            Atom("mem", (x, z)),
            Atom("sub", (z, y)),
            Atom("udf", (x, y)),
        ),
        (x, y, z),
    )
    plan = Planner(catalog, OptimizationConfig.all_on()).plan(query)
    names = [v.name for v in plan.global_order]
    # All three selection variables precede all of x, y, z.
    sel_positions = [i for i, n in enumerate(names) if n.startswith("_sel")]
    var_positions = [i for i, n in enumerate(names) if n in "xyz"]
    assert max(sel_positions) < min(var_positions)
