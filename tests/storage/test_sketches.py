"""Frequency-sketch lifecycle: incremental maintenance through
``apply_delta`` must equal a from-scratch rebuild byte-for-byte, on the
store, in the engines, and across cluster workers after replay catch-up
(the planner's statistics are part of the replicated state)."""

import numpy as np
import pytest

from repro.core.sketch import (
    FrequencySketch,
    build_table_sketches,
)
from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.storage.vertical import (
    TRIPLES_RELATION,
    DeltaConfig,
    VerticallyPartitionedStore,
    vertically_partition,
)

EX = "http://ex/"


def _triples(n=40):
    return [
        (
            f"<{EX}s{i % 9}>",
            f"<{EX}p{i % 3}>",
            f"<{EX}o{i % 5}>" if i % 4 else f'"lit{i}"',
        )
        for i in range(n)
    ]


def _store(compact_fraction=100.0):
    store = vertically_partition(_triples())
    store.delta_config = DeltaConfig(compact_fraction=compact_fraction)
    return store


def _sketch_bytes(sketches):
    return {
        name: {attr: sk.to_bytes() for attr, sk in columns.items()}
        for name, columns in sketches.items()
    }


def _rebuilt(store):
    """From-scratch registry over the store's current merged tables."""
    return {
        name: build_table_sketches(
            relation.attributes,
            [relation.column(a) for a in relation.attributes],
        )
        for name, relation in store.tables.items()
    }


# ----------------------------------------------------------------------
# FrequencySketch unit behavior
# ----------------------------------------------------------------------
class TestFrequencySketch:
    def test_from_column_counts(self):
        column = np.array([5, 3, 5, 5, 7, 3], dtype=np.uint32)
        sketch = FrequencySketch.from_column(column)
        assert sketch.total == 6
        assert sketch.distinct == 3
        assert sketch.count(5) == 3
        assert sketch.count(3) == 2
        assert sketch.count(99) == 0
        assert sketch.max_count == 3

    def test_top_and_residual(self):
        column = np.array([1] * 5 + [2] * 3 + [3, 4], dtype=np.uint32)
        sketch = FrequencySketch.from_column(column)
        assert sketch.top(2) == [(1, 5), (2, 3)]
        assert sketch.residual(2) == (2, 2)  # values {3,4}, 2 rows

    def test_merge_equals_rebuild(self):
        base = np.array([1, 1, 2, 3], dtype=np.uint32)
        sketch = FrequencySketch.from_column(base)
        merged = sketch.merge(
            np.array([2, 4], dtype=np.uint32),
            np.array([1], dtype=np.uint32),
        )
        rebuilt = FrequencySketch.from_column(
            np.array([1, 2, 3, 2, 4], dtype=np.uint32)
        )
        assert merged.to_bytes() == rebuilt.to_bytes()

    def test_bytes_roundtrip(self):
        sketch = FrequencySketch.from_column(
            np.array([9, 9, 1], dtype=np.uint32)
        )
        assert FrequencySketch.from_bytes(sketch.to_bytes()) == sketch


# ----------------------------------------------------------------------
# Store registry lifecycle
# ----------------------------------------------------------------------
class TestStoreRegistry:
    def test_lazy_build_matches_rebuild(self):
        store = _store()
        assert _sketch_bytes(store.column_sketches()) == _sketch_bytes(
            _rebuilt(store)
        )

    def test_incremental_add_remove_equals_rebuild(self):
        store = _store()
        store.column_sketches()  # materialize the registry
        store.add_triples(
            [
                (f"<{EX}s0>", f"<{EX}p0>", f"<{EX}onew>"),
                (f"<{EX}x>", f"<{EX}pnew>", f"<{EX}y>"),
            ]
        )
        store.remove_triples([(f"<{EX}s0>", f"<{EX}p0>", f"<{EX}o0>")])
        assert store.compactions == 1  # the delta-born pnew table
        assert _sketch_bytes(store.column_sketches()) == _sketch_bytes(
            _rebuilt(store)
        )

    def test_compaction_rebuild_equals_rebuild(self):
        store = _store(compact_fraction=0.001)
        store.column_sketches()
        store.add_triples([(f"<{EX}s0>", f"<{EX}p0>", f"<{EX}onew>")])
        assert store.compactions >= 1
        assert _sketch_bytes(store.column_sketches()) == _sketch_bytes(
            _rebuilt(store)
        )

    def test_table_emptied_drops_from_registry(self):
        triples = [
            (f"<{EX}a>", f"<{EX}p0>", f"<{EX}b>"),
            (f"<{EX}c>", f"<{EX}p1>", f"<{EX}d>"),
        ]
        store = vertically_partition(triples)
        store.column_sketches()
        store.remove_triples([triples[0]])
        assert "p0" not in store.column_sketches()
        assert "p1" in store.column_sketches()

    def test_snapshot_roundtrip_is_byte_identical(self):
        store = _store()
        snapshot = store.export_snapshot()
        assert snapshot.sketches is not None
        clone = VerticallyPartitionedStore.from_snapshot(snapshot)
        assert _sketch_bytes(clone.column_sketches()) == _sketch_bytes(
            store.column_sketches()
        )


# ----------------------------------------------------------------------
# Engine-side maintenance
# ----------------------------------------------------------------------
class TestEngineSketches:
    def test_engine_delta_merge_tracks_store_registry(self):
        store = _store()
        engine = EmptyHeadedEngine(store)
        store.add_triples(
            [
                (f"<{EX}s0>", f"<{EX}p0>", f"<{EX}onew>"),
                (f"<{EX}x>", f"<{EX}pnew>", f"<{EX}y>"),
            ]
        )
        store.remove_triples([(f"<{EX}s0>", f"<{EX}p0>", f"<{EX}o0>")])
        engine.check_data_version()
        engine_sketches = {
            name: columns
            for name, columns in engine._structures.sketches.items()
            if name != TRIPLES_RELATION
        }
        assert _sketch_bytes(engine_sketches) == _sketch_bytes(
            store.column_sketches()
        )

    def test_derived_triples_sketches_follow_updates(self):
        store = _store()
        engine = EmptyHeadedEngine(store)
        query = f"SELECT ?p WHERE {{ <{EX}s0> ?p <{EX}o0> }}"
        engine.execute_sparql(query)  # registers the view + its sketches
        before = engine._structures.sketches[TRIPLES_RELATION]
        assert before["predicate"].total == store.num_triples

        store.add_triples([(f"<{EX}s0>", f"<{EX}p0>", f"<{EX}onew>")])
        engine.check_data_version()
        after = engine._structures.sketches[TRIPLES_RELATION]
        assert after["predicate"].total == store.num_triples
        assert after["object"].count(
            store.dictionary.require(f"<{EX}onew>")
        ) == 1


# ----------------------------------------------------------------------
# Cluster workers: replay catch-up determinism
# ----------------------------------------------------------------------
class TestWorkerReplayDeterminism:
    def test_workers_identical_after_replay(self):
        """Two workers cloned from the published snapshot and caught up
        through the replay log hold byte-identical sketch registries —
        and both match the publisher's (identical planning fleet-wide)."""
        parent = _store()
        snapshot = parent.export_snapshot()
        replay = [
            (
                [
                    (f"<{EX}s0>", f"<{EX}p0>", f"<{EX}onew>"),
                    (f"<{EX}x>", f"<{EX}pnew>", f"<{EX}y>"),
                ],
                [],
            ),
            ([], [(f"<{EX}s0>", f"<{EX}p0>", f"<{EX}o0>")]),
        ]
        workers = [
            VerticallyPartitionedStore.from_snapshot(snapshot)
            for _ in range(2)
        ]
        for add, remove in replay:
            if add:
                parent.add_triples(add)
            if remove:
                parent.remove_triples(remove)
            for worker in workers:
                if add:
                    worker.add_triples(add)
                if remove:
                    worker.remove_triples(remove)

        reference = _sketch_bytes(parent.column_sketches())
        for worker in workers:
            assert _sketch_bytes(worker.column_sketches()) == reference


try:  # shm coverage only where the sandbox allows it
    from repro.service.cluster.shm import shm_supported
except Exception:  # pragma: no cover - cluster tier always importable
    shm_supported = lambda: False  # noqa: E731


@pytest.mark.skipif(
    not shm_supported(), reason="shared memory unavailable in this sandbox"
)
def test_sketches_ride_shared_segment():
    from repro.service.cluster.shm import (
        attach_snapshot,
        detach,
        publish_snapshot,
        unlink_segment,
    )

    store = _store()
    segment = publish_snapshot(store.export_snapshot(), "repro-testsk-ride")
    try:
        attached, handle = attach_snapshot("repro-testsk-ride")
        try:
            assert attached.sketches is not None
            clone = VerticallyPartitionedStore.from_snapshot(attached)
            assert _sketch_bytes(clone.column_sketches()) == _sketch_bytes(
                store.column_sketches()
            )
        finally:
            detach(handle)
    finally:
        segment.close()
        unlink_segment(segment)
