"""Relation: columnar operations."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.relation import Relation


@pytest.fixture()
def rel():
    return Relation.from_rows(
        "r", ("a", "b"), [(1, 10), (2, 20), (1, 30), (2, 20)]
    )


def test_from_rows_and_iter(rel):
    assert rel.num_rows == 4
    assert list(rel.iter_rows())[0] == (1, 10)


def test_arity_and_len(rel):
    assert rel.arity == 2
    assert len(rel) == 4


def test_empty_relation():
    r = Relation.empty("e", ("x",))
    assert r.num_rows == 0
    assert list(r.iter_rows()) == []


def test_schema_validation():
    with pytest.raises(StorageError):
        Relation("bad", ("a",), [np.zeros(1, np.uint32), np.zeros(1, np.uint32)])
    with pytest.raises(StorageError):
        Relation("bad", ("a", "a"), [np.zeros(1, np.uint32)] * 2)
    with pytest.raises(StorageError):
        Relation(
            "bad",
            ("a", "b"),
            [np.zeros(1, np.uint32), np.zeros(2, np.uint32)],
        )


def test_from_rows_arity_mismatch():
    with pytest.raises(StorageError):
        Relation.from_rows("bad", ("a", "b"), [(1,)])


def test_column_access(rel):
    assert list(rel.column("b")) == [10, 20, 30, 20]
    with pytest.raises(StorageError):
        rel.column("nope")


def test_project(rel):
    p = rel.project(["b"])
    assert p.attributes == ("b",)
    assert list(p.column("b")) == [10, 20, 30, 20]


def test_select_equals(rel):
    s = rel.select_equals("a", 2)
    assert s.to_set() == {(2, 20)}
    assert s.num_rows == 2  # selection does not dedup


def test_distinct(rel):
    d = rel.distinct()
    assert d.num_rows == 3
    assert d.to_set() == {(1, 10), (1, 30), (2, 20)}


def test_distinct_empty():
    r = Relation.empty("e", ("a", "b"))
    assert r.distinct().num_rows == 0


def test_sort_by(rel):
    s = rel.sort_by(["b", "a"])
    assert list(s.iter_rows()) == [(1, 10), (2, 20), (2, 20), (1, 30)]


def test_take_and_filter(rel):
    taken = rel.take(np.array([0, 0, 3]))
    assert taken.num_rows == 3
    mask = np.array([True, False, False, True])
    assert rel.filter(mask).to_set() == {(1, 10), (2, 20)}


def test_rename(rel):
    renamed = rel.rename(name="s", attributes=("x", "y"))
    assert renamed.name == "s"
    assert renamed.attributes == ("x", "y")
    # Shares column data with the original.
    assert renamed.columns[0] is rel.columns[0]


def test_concat(rel):
    other = Relation.from_rows("r2", ("a", "b"), [(9, 9)])
    merged = rel.concat(other.rename(attributes=("a", "b")))
    assert merged.num_rows == 5
    with pytest.raises(StorageError):
        rel.concat(Relation.from_rows("bad", ("x", "y"), [(1, 2)]))


def test_equals_content(rel):
    same = Relation.from_rows("other", ("x", "y"), [(2, 20), (1, 30), (1, 10)])
    assert rel.equals_content(same)
    different = Relation.from_rows("d", ("x", "y"), [(1, 10)])
    assert not rel.equals_content(different)
    narrower = Relation.from_rows("n", ("x",), [(1,)])
    assert not rel.equals_content(narrower)
