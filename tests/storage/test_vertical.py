"""Vertical partitioning of triples into per-predicate tables."""

from repro.storage.vertical import local_name, vertically_partition


def test_local_name_hash_iri():
    assert local_name("<http://example.org/ns#memberOf>") == "memberOf"


def test_local_name_slash_iri():
    assert local_name("<http://example.org/vocab/worksFor>") == "worksFor"


def test_local_name_rdf_type():
    assert (
        local_name("<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>")
        == "type"
    )


def test_local_name_sanitizes():
    assert local_name("<http://x.org/a-b.c>") == "a_b_c"


def test_local_name_bare_string():
    assert local_name("plainName") == "plainName"


def test_partition_groups_by_predicate():
    store = vertically_partition(
        [
            ("s1", "p1", "o1"),
            ("s2", "p2", "o2"),
            ("s3", "p1", "o3"),
        ]
    )
    assert set(store.tables) == {"p1", "p2"}
    assert store.tables["p1"].num_rows == 2
    assert store.num_triples == 3


def test_partition_deduplicates_triples():
    store = vertically_partition([("s", "p", "o")] * 5)
    assert store.tables["p"].num_rows == 1


def test_partition_shares_dictionary_across_tables():
    store = vertically_partition(
        [("alice", "knows", "bob"), ("bob", "likes", "alice")]
    )
    d = store.dictionary
    knows = store.tables["knows"]
    likes = store.tables["likes"]
    assert d.decode(int(knows.column("subject")[0])) == "alice"
    assert d.decode(int(likes.column("object")[0])) == "alice"


def test_predicate_iris_preserved():
    store = vertically_partition([("s", "<http://x#p>", "o")])
    assert store.predicate_iris["p"] == "<http://x#p>"
    assert store.relation_for_predicate("<http://x#p>").num_rows == 1
    assert store.relation_for_predicate("<http://x#q>") is None


def test_table_schema_is_subject_object():
    store = vertically_partition([("s", "p", "o")])
    assert store.tables["p"].attributes == ("subject", "object")
