"""VerticallyPartitionedStore.add_triples / remove_triples semantics."""

from repro.rdf.vocabulary import RDF_TYPE
from repro.storage.vertical import (
    TRIPLES_RELATION,
    vertically_partition,
)

EX = "http://ex/"

BASE = [
    (f"<{EX}a>", f"<{EX}knows>", f"<{EX}b>"),
    (f"<{EX}b>", f"<{EX}knows>", f"<{EX}c>"),
    (f"<{EX}a>", RDF_TYPE, f"<{EX}T>"),
]


def _store():
    return vertically_partition(BASE)


def test_add_bumps_version_and_extends_table():
    store = _store()
    assert store.data_version == 0
    added = store.add_triples([(f"<{EX}c>", f"<{EX}knows>", f"<{EX}a>")])
    assert added == 1
    assert store.data_version == 1
    assert store.tables["knows"].num_rows == 3
    assert store.num_triples == 4


def test_add_deduplicates_against_stored_triples():
    store = _store()
    added = store.add_triples(
        [
            (f"<{EX}a>", f"<{EX}knows>", f"<{EX}b>"),  # already stored
            (f"<{EX}a>", f"<{EX}knows>", f"<{EX}b>"),  # duplicate input
            (f"<{EX}c>", f"<{EX}knows>", f"<{EX}a>"),
        ]
    )
    assert added == 1
    assert store.tables["knows"].num_rows == 3


def test_add_creates_new_predicate_table():
    store = _store()
    store.add_triples([(f"<{EX}a>", f"<{EX}likes>", f"<{EX}c>")])
    assert "likes" in store.tables
    assert store.predicate_iris["likes"] == f"<{EX}likes>"
    # The predicate IRI is encoded so variable-predicate rows can bind.
    assert store.dictionary.lookup(f"<{EX}likes>") is not None
    assert "likes" in store.table_names()


def test_add_invalidates_triples_view():
    store = _store()
    before = store.triples_relation().num_rows
    store.add_triples([(f"<{EX}c>", f"<{EX}knows>", f"<{EX}a>")])
    after = store.triples_relation().num_rows
    assert (before, after) == (3, 4)


def test_remove_existing_triples():
    store = _store()
    removed = store.remove_triples(
        [(f"<{EX}a>", f"<{EX}knows>", f"<{EX}b>")]
    )
    assert removed == 1
    assert store.data_version == 1
    assert store.tables["knows"].num_rows == 1
    assert store.num_triples == 2


def test_remove_unknown_triples_is_a_noop():
    store = _store()
    removed = store.remove_triples(
        [
            (f"<{EX}zz>", f"<{EX}knows>", f"<{EX}b>"),  # unseen subject
            (f"<{EX}a>", f"<{EX}nosuch>", f"<{EX}b>"),  # unseen predicate
            (f"<{EX}a>", f"<{EX}knows>", f"<{EX}c>"),  # pair not stored
        ]
    )
    assert removed == 0
    assert store.data_version == 0  # nothing changed, no epoch bump
    assert store.tables["knows"].num_rows == 2


def test_removing_last_triple_drops_the_table():
    store = _store()
    store.remove_triples([(f"<{EX}a>", RDF_TYPE, f"<{EX}T>")])
    assert "type" not in store.tables
    assert "type" not in store.table_names()
    # Dictionary keys survive (other triples may reference the terms).
    assert store.dictionary.lookup(f"<{EX}T>") is not None


def test_empty_store_has_no_triples_view_name():
    store = _store()
    store.remove_triples(BASE)
    assert store.table_names() == set()
    assert store.num_triples == 0
    assert TRIPLES_RELATION not in store.table_names()


def test_add_then_remove_roundtrip_restores_answers():
    store = _store()
    extra = [(f"<{EX}x>", f"<{EX}knows>", f"<{EX}y>")]
    store.add_triples(extra)
    store.remove_triples(extra)
    assert store.tables["knows"].num_rows == 2
    assert store.data_version == 2
