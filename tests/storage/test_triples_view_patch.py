"""The ``__triples__`` union view is patched per batch, never rebuilt."""

import numpy as np

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.engines.pairwise import ColumnStoreEngine
from repro.storage.vertical import (
    TRIPLES_RELATION,
    build_triples_view,
    triples_view_delta,
    vertically_partition,
)

EX = "http://ex/"


def _triples(n=24):
    return [
        (f"<{EX}s{i}>", f"<{EX}p{i % 3}>", f"<{EX}o{i % 5}>")
        for i in range(n)
    ]


def _view_rows(view):
    if view.num_rows == 0:
        return []
    return sorted(map(tuple, np.stack(view.columns, axis=1).tolist()))


def test_store_view_is_patched_not_dropped():
    store = vertically_partition(_triples())
    store.triples_relation()  # build + cache
    assert store._triples_view is not None

    store.add_triples([(f"<{EX}new>", f"<{EX}p1>", f"<{EX}o9>")])
    assert store._triples_view is not None, "view was dropped"
    assert _view_rows(store.triples_relation()) == _view_rows(
        build_triples_view(store.tables, store.predicate_key)
    )

    store.remove_triples(
        [(f"<{EX}new>", f"<{EX}p1>", f"<{EX}o9>"), _triples()[0]]
    )
    assert store._triples_view is not None
    assert _view_rows(store.triples_relation()) == _view_rows(
        build_triples_view(store.tables, store.predicate_key)
    )


def test_unbuilt_view_stays_unbuilt():
    store = vertically_partition(_triples())
    assert store._triples_view is None
    store.add_triples([(f"<{EX}new>", f"<{EX}p1>", f"<{EX}o9>")])
    assert store._triples_view is None  # nobody asked for it yet


def test_view_patch_handles_created_and_dropped_tables():
    store = vertically_partition(_triples(6))
    store.triples_relation()
    # A brand-new predicate (created table).
    store.add_triples([(f"<{EX}a>", f"<{EX}brandnew>", f"<{EX}b>")])
    assert _view_rows(store.triples_relation()) == _view_rows(
        build_triples_view(store.tables, store.predicate_key)
    )
    # Empty that predicate again (dropped table).
    store.remove_triples([(f"<{EX}a>", f"<{EX}brandnew>", f"<{EX}b>")])
    assert _view_rows(store.triples_relation()) == _view_rows(
        build_triples_view(store.tables, store.predicate_key)
    )


def test_triples_view_delta_helper():
    store = vertically_partition(_triples(6))
    assert triples_view_delta({}, store.predicate_key) is None
    batch = store.tables
    delta = triples_view_delta(batch, store.predicate_key)
    assert delta is not None
    assert delta.attributes == ("subject", "predicate", "object")
    assert delta.num_rows == sum(r.num_rows for r in batch.values())


def _query_all(engine):
    return sorted(
        engine.decode(
            engine.execute_sparql("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
        )
    )


def test_engine_catalogs_keep_registered_view_across_updates():
    store = vertically_partition(_triples())
    engines = [EmptyHeadedEngine(store), ColumnStoreEngine(store)]
    for engine in engines:
        _query_all(engine)  # registers the view in the catalog
        assert TRIPLES_RELATION in engine.catalog

    store.add_triples([(f"<{EX}new>", f"<{EX}p0>", f"<{EX}o0>")])
    for engine in engines:
        rows = _query_all(engine)  # applies the delta incrementally
        assert (f"<{EX}new>", f"<{EX}p0>", f"<{EX}o0>") in rows
        assert TRIPLES_RELATION in engine.catalog, (
            f"{engine.name}: view was dropped instead of patched"
        )

    store.remove_triples([_triples()[3]])
    for engine in engines:
        rows = _query_all(engine)
        assert len(rows) == 24  # 24 + 1 - 1
        assert TRIPLES_RELATION in engine.catalog


def test_emptyheaded_view_tries_survive_updates():
    store = vertically_partition(_triples())
    engine = EmptyHeadedEngine(store)
    # A selective variable-predicate query probes a trie over the view.
    text = f"SELECT ?p ?o WHERE {{ <{EX}s1> ?p ?o }}"
    before = sorted(engine.decode(engine.execute_sparql(text)))
    trie_keys_before = {
        key
        for key in engine.catalog._trie_cache
        if key[0] == TRIPLES_RELATION
    }
    assert trie_keys_before, "expected a cached trie over the view"

    store.add_triples([(f"<{EX}s1>", f"<{EX}p2>", f"<{EX}fresh>")])
    after = sorted(engine.decode(engine.execute_sparql(text)))
    assert after != before
    assert (f"<{EX}p2>", f"<{EX}fresh>") in {
        (p, o) for p, o in after
    }
    # The spliced tries are still registered (no wholesale rebuild).
    trie_keys_after = {
        key
        for key in engine.catalog._trie_cache
        if key[0] == TRIPLES_RELATION
    }
    assert trie_keys_before <= trie_keys_after
