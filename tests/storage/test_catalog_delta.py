"""Catalog.apply_delta: patched copies share what updates don't touch,
and both relations and tries are derived from the delta rows alone (so
batch-by-batch application walks committed epochs exactly)."""

import pytest

from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.vertical import SUBJECT, OBJECT


def _relation(name: str, rows: list[tuple[int, int]]) -> Relation:
    return Relation.from_rows(name, (SUBJECT, OBJECT), rows)


@pytest.fixture
def catalog():
    catalog = Catalog()
    catalog.register(_relation("knows", [(1, 2), (3, 4)]))
    catalog.register(_relation("likes", [(5, 6)]))
    return catalog


def test_apply_delta_shares_unaffected_entries(catalog):
    knows_trie = catalog.trie("knows", (SUBJECT, OBJECT))
    likes_trie = catalog.trie("likes", (SUBJECT, OBJECT))
    patched = catalog.apply_delta({"knows": _relation("knows", [(9, 9)])}, {})
    # The original catalog is untouched (readers keep their snapshot).
    assert catalog.get("knows").to_set() == {(1, 2), (3, 4)}
    assert catalog.trie("knows", (SUBJECT, OBJECT)) is knows_trie
    # The copy shares the unaffected entries and patched the affected
    # relation + trie from the delta rows.
    assert patched.get("likes") is catalog.get("likes")
    assert patched.trie("likes", (SUBJECT, OBJECT)) is likes_trie
    assert patched.get("knows").to_set() == {(1, 2), (3, 4), (9, 9)}
    assert list(patched.trie("knows", (SUBJECT, OBJECT)).iter_tuples()) == [
        (1, 2),
        (3, 4),
        (9, 9),
    ]


def test_apply_delta_patches_every_cached_order(catalog):
    catalog.trie("knows", (SUBJECT, OBJECT))
    catalog.trie("knows", (OBJECT, SUBJECT))
    patched = catalog.apply_delta({}, {"knows": _relation("knows", [(1, 2)])})
    assert patched.get("knows").to_set() == {(3, 4)}
    assert list(patched.trie("knows", (SUBJECT, OBJECT)).iter_tuples()) == [
        (3, 4)
    ]
    assert list(patched.trie("knows", (OBJECT, SUBJECT)).iter_tuples()) == [
        (4, 3)
    ]


def test_apply_delta_registers_new_and_drops_dead_tables(catalog):
    catalog.trie("likes", (SUBJECT, OBJECT))
    patched = catalog.apply_delta(
        {"born": _relation("born", [(7, 8)])},
        {},
        dropped=("likes",),
    )
    assert "likes" not in patched
    assert patched.get("born").num_rows == 1
    # A never-cached trie for the new table builds on demand.
    assert list(patched.trie("born", (SUBJECT, OBJECT)).iter_tuples()) == [
        (7, 8)
    ]
    # The old catalog still serves its snapshot of the dropped table.
    assert catalog.get("likes").num_rows == 1


def test_batchwise_application_walks_epochs_exactly(catalog):
    """Relations are patched from the delta, not taken from any live
    store — so each intermediate catalog is one committed epoch."""
    step1 = catalog.apply_delta({"knows": _relation("knows", [(9, 9)])}, {})
    step2 = step1.apply_delta(
        {"likes": _relation("likes", [(8, 8)])},
        {"knows": _relation("knows", [(1, 2)])},
    )
    # step1 shows epoch 1 only: batch 2's changes are absent.
    assert step1.get("knows").to_set() == {(1, 2), (3, 4), (9, 9)}
    assert step1.get("likes").to_set() == {(5, 6)}
    # step2 shows both batches.
    assert step2.get("knows").to_set() == {(3, 4), (9, 9)}
    assert step2.get("likes").to_set() == {(5, 6), (8, 8)}
