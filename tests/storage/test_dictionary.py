"""Dictionary encoding tests."""

import pytest

from repro.errors import DictionaryError
from repro.storage.dictionary import Dictionary


def test_encode_assigns_dense_keys():
    d = Dictionary()
    assert d.encode("a") == 0
    assert d.encode("b") == 1
    assert d.encode("a") == 0  # idempotent
    assert len(d) == 2


def test_decode_roundtrip():
    d = Dictionary()
    terms = [f"term{i}" for i in range(100)]
    keys = [d.encode(t) for t in terms]
    assert [d.decode(k) for k in keys] == terms


def test_encode_many_returns_uint32():
    d = Dictionary()
    arr = d.encode_many(["x", "y", "x"])
    assert arr.dtype.name == "uint32"
    assert list(arr) == [0, 1, 0]


def test_lookup_returns_none_for_unknown():
    d = Dictionary()
    d.encode("known")
    assert d.lookup("known") == 0
    assert d.lookup("unknown") is None


def test_require_raises_for_unknown():
    d = Dictionary()
    with pytest.raises(DictionaryError):
        d.require("nope")


def test_decode_out_of_range_raises():
    d = Dictionary()
    d.encode("only")
    with pytest.raises(DictionaryError):
        d.decode(5)


def test_decode_many():
    d = Dictionary()
    d.encode("a"), d.encode("b")
    assert d.decode_many([1, 0]) == ["b", "a"]
    with pytest.raises(DictionaryError):
        d.decode_many([7])


def test_contains():
    d = Dictionary()
    d.encode("here")
    assert "here" in d
    assert "gone" not in d


def test_items_in_key_order():
    d = Dictionary()
    for term in ("z", "a", "m"):
        d.encode(term)
    assert list(d.items()) == [("z", 0), ("a", 1), ("m", 2)]
