"""Catalog: registration, lookup, trie caching."""

import pytest

from repro.errors import (
    ArityMismatchError,
    StorageError,
    UnknownRelationError,
)
from repro.sets.base import SetLayout
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation


@pytest.fixture()
def catalog():
    c = Catalog()
    c.register(Relation.from_rows("r", ("a", "b"), [(1, 2), (3, 4)]))
    c.register(Relation.from_rows("s", ("x",), [(5,)]))
    return c


def test_get_known(catalog):
    assert catalog.get("r").num_rows == 2


def test_get_unknown_raises_with_hint(catalog):
    with pytest.raises(UnknownRelationError) as excinfo:
        catalog.get("missing")
    assert "missing" in str(excinfo.value)
    assert "r" in excinfo.value.known


def test_double_register_rejected(catalog):
    with pytest.raises(StorageError):
        catalog.register(Relation.empty("r", ("a", "b")))


def test_replace_invalidates_trie_cache(catalog):
    t1 = catalog.trie("r", ("a", "b"))
    catalog.register(
        Relation.from_rows("r", ("a", "b"), [(9, 9)]), replace=True
    )
    t2 = catalog.trie("r", ("a", "b"))
    assert t1 is not t2
    assert list(t2.iter_tuples()) == [(9, 9)]


def test_check_arity(catalog):
    assert catalog.check_arity("r", 2).name == "r"
    with pytest.raises(ArityMismatchError):
        catalog.check_arity("r", 3)


def test_trie_cache_by_order_and_layout(catalog):
    a = catalog.trie("r", ("a", "b"))
    b = catalog.trie("r", ("a", "b"))
    c = catalog.trie("r", ("b", "a"))
    d = catalog.trie("r", ("a", "b"), force_layout=SetLayout.UINT_ARRAY)
    assert a is b
    assert a is not c
    assert a is not d


def test_names_and_iteration(catalog):
    assert catalog.names() == ["r", "s"]
    assert {rel.name for rel in catalog} == {"r", "s"}
    assert "r" in catalog


def test_stats(catalog):
    assert catalog.stats() == {"r": 2, "s": 1}
    assert catalog.total_rows() == 3
