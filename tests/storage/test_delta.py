"""Main+delta segment semantics of VerticallyPartitionedStore.

The public add/remove semantics are covered by test_updates.py; this
module exercises the delta machinery underneath: insert/tombstone
segments, threshold compaction (a logical no-op), the delta log behind
``changes_since``, and the no-op-update epoch guarantees.
"""

import numpy as np

from repro.storage.vertical import (
    DeltaConfig,
    vertically_partition,
)

EX = "http://ex/"


def _triple(i: int, predicate: str = "knows") -> tuple[str, str, str]:
    return (f"<{EX}s{i}>", f"<{EX}{predicate}>", f"<{EX}o{i}>")


def _store(n: int = 20):
    return vertically_partition([_triple(i) for i in range(n)])


def test_add_lands_in_insert_delta_not_main():
    store = _store()
    store.add_triples([_triple(100)])
    stats = store.delta_stats()["tables"]["knows"]
    assert stats == {
        "main_rows": 20,
        "insert_rows": 1,
        "tombstone_rows": 0,
    }
    assert store.tables["knows"].num_rows == 21


def test_remove_of_main_row_becomes_tombstone():
    store = _store()
    store.remove_triples([_triple(3)])
    stats = store.delta_stats()["tables"]["knows"]
    assert stats["main_rows"] == 20  # main is immutable
    assert stats["tombstone_rows"] == 1
    assert store.tables["knows"].num_rows == 19


def test_remove_of_delta_insert_cancels_it():
    store = _store()
    store.add_triples([_triple(100)])
    store.remove_triples([_triple(100)])
    stats = store.delta_stats()["tables"]["knows"]
    assert stats["insert_rows"] == 0
    assert stats["tombstone_rows"] == 0
    assert store.tables["knows"].num_rows == 20


def test_re_adding_tombstoned_row_revives_it():
    store = _store()
    store.remove_triples([_triple(3)])
    store.add_triples([_triple(3)])
    stats = store.delta_stats()["tables"]["knows"]
    assert stats["insert_rows"] == 0  # revived, not re-inserted
    assert stats["tombstone_rows"] == 0
    assert store.tables["knows"].num_rows == 20


def test_threshold_compaction_merges_delta_into_main():
    store = _store()
    store.delta_config = DeltaConfig(compact_fraction=0.1)
    version_before = store.data_version
    store.add_triples([_triple(100 + i) for i in range(5)])  # 25% > 10%
    stats = store.delta_stats()["tables"]["knows"]
    assert stats == {
        "main_rows": 25,
        "insert_rows": 0,
        "tombstone_rows": 0,
    }
    assert store.compactions == 1
    # Compaction is physical only: exactly the one update epoch passed.
    assert store.data_version == version_before + 1
    assert store.tables["knows"].num_rows == 25


def test_forced_compaction_is_a_logical_noop():
    store = _store()
    store.add_triples([_triple(100)])
    store.remove_triples([_triple(0)])
    rows_before = store.tables["knows"].to_set()
    version = store.data_version
    assert store.compact() == 1
    assert store.data_version == version
    assert store.tables["knows"].to_set() == rows_before
    stats = store.delta_stats()["tables"]["knows"]
    assert stats["insert_rows"] == 0 and stats["tombstone_rows"] == 0


def test_merged_view_is_replaced_not_mutated():
    store = _store()
    before = store.tables
    before_knows = before["knows"]
    store.add_triples([_triple(100)])
    assert store.tables is not before  # wholesale dict swap
    assert before["knows"] is before_knows  # old snapshot untouched
    assert before_knows.num_rows == 20


def test_changes_since_returns_batches_in_order():
    store = _store()
    store.add_triples([_triple(100)])
    store.remove_triples([_triple(0), _triple(1)])
    batches = store.changes_since(0)
    assert [b.version for b in batches] == [1, 2]
    assert batches[0].added["knows"].num_rows == 1
    assert not batches[0].removed
    assert batches[1].removed["knows"].num_rows == 2
    assert store.changes_since(2) == []


def test_changes_since_respects_max_rows():
    store = _store()
    store.add_triples([_triple(100 + i) for i in range(4)])
    assert store.changes_since(0, max_rows=3) is None
    assert store.changes_since(0, max_rows=4) is not None


def test_changes_since_truncated_log_returns_none():
    store = _store()
    store.delta_config = DeltaConfig(log_limit=2)
    for i in range(4):
        store.add_triples([_triple(100 + i)])
    assert store.changes_since(0) is None  # log no longer reaches back
    assert store.changes_since(2) is not None
    assert len(store.changes_since(2)) == 2


def test_created_and_dropped_tables_are_recorded():
    store = _store()
    store.add_triples([_triple(0, "likes")])
    batch = store.changes_since(store.data_version - 1)[0]
    assert batch.created_tables == frozenset({"likes"})
    store.remove_triples([_triple(0, "likes")])
    batch = store.changes_since(store.data_version - 1)[0]
    assert batch.dropped_tables == frozenset({"likes"})
    assert "likes" not in store.tables


def test_noop_add_and_remove_leave_epoch_and_log_alone():
    store = _store()
    log_before = len(store.changes_since(0) or [])
    assert store.add_triples([_triple(3)]) == 0  # duplicate
    assert store.remove_triples([_triple(999)]) == 0  # absent
    assert store.remove_triples([]) == 0
    assert store.data_version == 0
    assert len(store.changes_since(0) or []) == log_before


def test_merged_view_matches_naive_reconstruction():
    rng = np.random.default_rng(0)
    store = _store(30)
    expected = {(f"<{EX}s{i}>", f"<{EX}knows>", f"<{EX}o{i}>") for i in range(30)}
    for step in range(10):
        adds = [_triple(int(i)) for i in rng.integers(0, 60, 3)]
        removes = [_triple(int(i)) for i in rng.integers(0, 60, 2)]
        store.add_triples(adds)
        expected |= set(adds)
        store.remove_triples(removes)
        expected -= set(removes)
        decode = store.dictionary.decode
        got = {
            (decode(s), f"<{EX}knows>", decode(o))
            for s, o in store.tables["knows"].iter_rows()
        }
        assert got == expected, step
