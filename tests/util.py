"""Test helpers: tiny hand-built stores and a brute-force CQ evaluator."""

from __future__ import annotations

from itertools import product

from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    NormalizedQuery,
    Variable,
    normalize,
)
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation
from repro.storage.vertical import vertically_partition


def build_store(triples):
    """A VerticallyPartitionedStore from (s, p, o) string triples."""
    return vertically_partition(triples)


def catalog_of(relations: dict[str, list[tuple[int, ...]]]) -> Catalog:
    """A catalog from {name: [rows]} over integer-encoded values.

    Column names are ``c0, c1, ...`` per relation.
    """
    catalog = Catalog()
    for name, rows in relations.items():
        arity = len(rows[0]) if rows else 2
        attrs = [f"c{i}" for i in range(arity)]
        catalog.register(Relation.from_rows(name, attrs, rows))
    return catalog


def brute_force(
    catalog: Catalog, query: ConjunctiveQuery | NormalizedQuery
) -> frozenset[tuple[int, ...]]:
    """Evaluate a conjunctive query by exhaustive enumeration.

    The executable specification every engine is checked against. Atom
    rows are matched via nested loops with a binding dictionary —
    obviously correct, exponentially slow, only for tiny inputs.
    """
    if isinstance(query, ConjunctiveQuery):
        atoms = query.atoms
        projection = query.projection
    else:
        # Re-substitute selections back into the atoms as constants.
        atoms = []
        for atom in query.atoms:
            terms = []
            for term in atom.terms:
                if isinstance(term, Variable) and term in query.selections:
                    terms.append(Constant(query.selections[term]))
                else:
                    terms.append(term)
            atoms.append(Atom(atom.relation, tuple(terms)))
        projection = query.projection

    rows_per_atom = [
        list(catalog.get(atom.relation).iter_rows()) for atom in atoms
    ]
    results: set[tuple[int, ...]] = set()
    for combo in product(*rows_per_atom):
        binding: dict[str, int] = {}
        ok = True
        for atom, row in zip(atoms, combo):
            for term, value in zip(atom.terms, row):
                if isinstance(term, Constant):
                    if term.value != value:
                        ok = False
                        break
                else:
                    bound = binding.get(term.name)
                    if bound is None:
                        binding[term.name] = value
                    elif bound != value:
                        ok = False
                        break
            if not ok:
                break
        if ok:
            results.add(tuple(binding[v.name] for v in projection))
    return frozenset(results)


def run_query(
    catalog: Catalog, query: ConjunctiveQuery, config=None
) -> frozenset[tuple[int, ...]]:
    """Plan and execute a CQ with the GHD machinery; rows as a frozenset."""
    from repro.core.config import OptimizationConfig
    from repro.core.executor import GHDExecutor
    from repro.core.planner import Planner

    config = config if config is not None else OptimizationConfig()
    planner = Planner(catalog, config)
    plan = planner.plan(normalize(query))
    return GHDExecutor(catalog).execute(plan).to_set()
