"""Failure injection: malformed queries, schema misuse, bad configs."""

import pytest

from repro.core.query import Atom, ConjunctiveQuery, Variable
from repro.errors import (
    ArityMismatchError,
    ParseError,
    ReproError,
    UnknownRelationError,
)

X, Y = Variable("x"), Variable("y")


@pytest.mark.parametrize(
    "bad_query",
    [
        "",                                           # empty
        "SELECT",                                     # no variables
        "SELECT ?x",                                  # no where
        "SELECT ?x WHERE { }",                        # empty pattern
        "SELECT ?x WHERE { ?x <p> }",                 # incomplete triple
        "SELECT ?x WHERE { ?x <p> ?y",                # unterminated block
        "SELECT ?x WHERE { ?x nope:p ?y }",           # unknown prefix
        "SELECT ?z WHERE { ?x <p:q> ?y }",            # unbound projection
        "SELECT ?x WHERE { ?x 5 ?y }",                # numeric predicate
        "FOO ?x WHERE { ?x <p:q> ?y }",               # bad keyword
        "SELECT ?x WHERE { { ?x <p:q> ?y } UNION }",  # dangling UNION
        "SELECT ?x WHERE { OPTIONAL { ?x <p:q> ?y } }",  # OPTIONAL only
        # nested OPTIONAL inside OPTIONAL is outside the subset
        "SELECT ?x WHERE { ?x <p:q> ?y OPTIONAL { OPTIONAL { ?x <p:r> ?z } } }",
    ],
)
def test_bad_sparql_raises_parse_error(emptyheaded, bad_query):
    with pytest.raises(ParseError):
        emptyheaded.execute_sparql(bad_query)


def test_parse_errors_are_repro_errors(emptyheaded):
    with pytest.raises(ReproError):
        emptyheaded.execute_sparql("SELECT")


def test_unknown_relation_in_direct_cq(emptyheaded):
    query = ConjunctiveQuery((Atom("noSuchTable", (X, Y)),), (X,))
    with pytest.raises(UnknownRelationError):
        emptyheaded.execute(query)


def test_arity_mismatch_in_direct_cq(emptyheaded):
    query = ConjunctiveQuery((Atom("type", (X, Y, Variable("z"))),), (X,))
    with pytest.raises(ArityMismatchError):
        emptyheaded.execute(query)


def test_error_messages_name_the_problem(emptyheaded):
    query = ConjunctiveQuery((Atom("noSuchTable", (X, Y)),), (X,))
    with pytest.raises(UnknownRelationError) as excinfo:
        emptyheaded.execute(query)
    assert "noSuchTable" in str(excinfo.value)


def test_engines_survive_queries_after_errors(all_engines, queries):
    """An error must not corrupt engine state for later queries."""
    for engine in all_engines.values():
        with pytest.raises(ParseError):
            engine.execute_sparql("SELECT")
        result = engine.execute_sparql(queries[14])
        assert result.num_rows > 0
