"""Randomized differential harness: random graphs, random queries,
five engines plus an independent reference evaluator must all agree.

Each seed deterministically generates a small RDF graph and a batch of
queries mixing UNION, OPTIONAL, variable predicates, FILTER (comparisons
plus the ``bound()``/``regex()`` functions), ORDER BY, and
LIMIT/OFFSET. The generator emits each query twice: as SPARQL text
(fed to the engines' full parse->translate->bind->execute pipeline) and
as a structured spec (fed to a naive bindings-based evaluator written
directly against the subset's documented semantics — matching by
lexical identity, numeric literals by candidate forms, unbound
comparisons as type errors, left-outer OPTIONAL with in-group filters,
sort-dedup UNION). Every query must return identical rows on all five
engines (including row order — engine output is canonically sorted) and
match the reference evaluator's row set. Any disagreement fails with
the offending seed + query text, so failures reproduce exactly.
"""

import random

import pytest

from repro.engines import ALL_ENGINES
from repro.rdf.vocabulary import XSD_INTEGER
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


# ---------------------------------------------------------------------------
# Random graph generation
# ---------------------------------------------------------------------------
def _make_graph(rng: random.Random) -> list[tuple[str, str, str]]:
    subjects = [f"<{EX}s{i}>" for i in range(rng.randint(4, 7))]
    predicates = [f"<{EX}p{i}>" for i in range(rng.randint(3, 5))]
    literals = ['"alpha"', '"beta"', '"gamma"', '"x y"@en']
    numbers = [
        '"3"', f'"3"^^<{XSD_INTEGER}>', '"7"', f'"5"^^<{XSD_INTEGER}>',
        '"4.5"',
    ]
    objects = subjects + literals + numbers
    triples = set()
    for _ in range(rng.randint(18, 45)):
        triples.add(
            (
                rng.choice(subjects),
                rng.choice(predicates),
                rng.choice(objects),
            )
        )
    return sorted(triples)


# ---------------------------------------------------------------------------
# Random query generation (text + structured spec)
#
# A spec is:
#   {"branches": [branch...], "filters": [(lhs, op, rhs)...],
#    "projection": [var...], "order": (var, desc) | None,
#    "limit": int | None, "offset": int}
# and a branch is:
#   {"patterns": [(s, p, o)...],
#    "optionals": [{"pattern": (s, p, o), "filters": [...]}, ...]}
# where every token is SPARQL surface syntax (?var, <iri>, "lit", 42).
# ---------------------------------------------------------------------------
class _QueryGen:
    def __init__(self, rng: random.Random, graph) -> None:
        self.rng = rng
        self.subjects = sorted({s for s, _, _ in graph})
        self.predicates = sorted({p for _, p, _ in graph})
        self.literals = sorted(
            {o for _, _, o in graph if not o.startswith("<")}
        )

    def _branch(self, node_vars: list[str]) -> dict:
        """One conjunctive branch: patterns chained over node variables."""
        rng = self.rng
        patterns = []
        introduced = [node_vars[0]]
        for i in range(rng.randint(1, 3)):
            subject = (
                introduced[0]
                if i == 0
                else rng.choice(introduced + self.subjects[:1])
            )
            if rng.random() < 0.25:
                predicate = rng.choice(["?q0", "?q1"])
            else:
                predicate = rng.choice(self.predicates)
            roll = rng.random()
            if roll < 0.45 and len(introduced) < len(node_vars):
                obj = node_vars[len(introduced)]
                introduced.append(obj)
            elif roll < 0.6:
                obj = rng.choice(self.subjects)
            elif roll < 0.8 and self.literals:
                obj = rng.choice(self.literals)
            else:
                obj = rng.choice(["3", "7", "5"])
            patterns.append((subject, predicate, obj))
        optionals = []
        if rng.random() < 0.5:
            opt_var = f"?o{rng.randint(0, 1)}"
            predicate = (
                "?q2" if rng.random() < 0.2 else rng.choice(self.predicates)
            )
            filters = []
            if rng.random() < 0.3:
                filters.append((opt_var, ">", str(rng.randint(1, 4))))
            optionals.append(
                {
                    "pattern": (introduced[0], predicate, opt_var),
                    "filters": filters,
                }
            )
            if rng.random() < 0.4:
                # A second OPTIONAL sharing ?oN without a required
                # binding: SPARQL compatibility-join semantics (a row
                # where the first OPTIONAL left ?oN unbound is
                # compatible with, and adopts, any binding here).
                optionals.append(
                    {
                        "pattern": (
                            opt_var,
                            rng.choice(self.predicates),
                            "?o2",
                        ),
                        "filters": [],
                    }
                )
        return {"patterns": patterns, "optionals": optionals}

    #: Safe regex patterns over the generated literal vocabulary
    #: (alpha/beta/gamma/"x y"/numbers), with optional "i" flag.
    _REGEX_PATTERNS = (
        ("al", ""),
        ("BET", "i"),
        ("gam", ""),
        ("^a", ""),
        ("a$", ""),
        ("3", ""),
        ("x y", ""),
    )

    def _comparison(self, variables: list[str]) -> tuple:
        """One random filter leaf over ``variables``: a comparison, a
        ``bound()`` test, a ``regex()`` match, a ``str()``/``lang()``
        operand comparison, or a ``!``-negated leaf."""
        rng = self.rng
        var = rng.choice(variables)
        kind = rng.random()
        if kind < 0.12:
            return ("bound", var)
        if kind < 0.24:
            pattern, flags = rng.choice(self._REGEX_PATTERNS)
            return ("regex", var, pattern, flags)
        if kind < 0.32:
            content = rng.choice(["alpha", "3", "http://ex/s0", "x y"])
            return ("str", var, rng.choice(("=", "!=")), content)
        if kind < 0.4:
            return ("lang", var, "=", rng.choice(["en", ""]))
        if kind < 0.48:
            return ("not", self._comparison(variables))
        if kind < 0.65:
            return (var, ">", str(rng.randint(1, 6)))
        if kind < 0.85:
            return (var, "!=", rng.choice(self.subjects))
        if self.literals:
            return (var, "=", rng.choice(self.literals))
        return (var, ">", str(rng.randint(1, 6)))

    @staticmethod
    def _branch_vars(branch: dict) -> set[str]:
        out = set()
        for pattern in branch["patterns"]:
            out.update(t for t in pattern if t.startswith("?"))
        for optional in branch["optionals"]:
            out.update(
                t for t in optional["pattern"] if t.startswith("?")
            )
        return out

    def spec(self) -> dict:
        rng = self.rng
        node_vars = ["?v0", "?v1", "?v2"]
        branches = [self._branch(node_vars)]
        if rng.random() < 0.5:
            other = (
                node_vars if rng.random() < 0.6 else ["?w0", "?w1", "?w2"]
            )
            branches.append(self._branch(other))

        variables = sorted(
            set().union(*(self._branch_vars(b) for b in branches))
        )
        filters = []
        if rng.random() < 0.4:
            comparison = self._comparison(variables)
            if rng.random() < 0.45:
                # Boolean connectives: two comparisons under && or ||.
                connective = "or" if rng.random() < 0.6 else "and"
                filters.append(
                    (connective, comparison, self._comparison(variables))
                )
            else:
                filters.append(comparison)

        count = rng.randint(1, min(3, len(variables)))
        projection = sorted(rng.sample(variables, count))
        order = None
        limit = None
        offset = 0
        if rng.random() < 0.4:
            order = (rng.choice(projection), rng.random() < 0.3)
            if rng.random() < 0.6:
                limit = rng.randint(1, 5)
                if rng.random() < 0.4:
                    offset = rng.randint(0, 3)
        return {
            "branches": branches,
            "filters": filters,
            "projection": projection,
            "order": order,
            "limit": limit,
            "offset": offset,
        }

    @classmethod
    def leaf_text(cls, spec_filter: tuple) -> str:
        """SPARQL surface syntax of one filter leaf."""
        if spec_filter[0] == "bound":
            return f"bound({spec_filter[1]})"
        if spec_filter[0] == "regex":
            _, var, pattern, flags = spec_filter
            if flags:
                return f'regex({var}, "{pattern}", "{flags}")'
            return f'regex({var}, "{pattern}")'
        if spec_filter[0] in ("str", "lang"):
            fn, var, op, content = spec_filter
            return f'{fn}({var}) {op} "{content}"'
        if spec_filter[0] == "not":
            return f"!({cls.leaf_text(spec_filter[1])})"
        lhs, op, rhs = spec_filter
        return f"{lhs} {op} {rhs}"

    @classmethod
    def filter_text(cls, spec_filter: tuple) -> str:
        """SPARQL surface syntax of one (possibly connective) filter."""
        if spec_filter[0] in ("or", "and"):
            symbol = "||" if spec_filter[0] == "or" else "&&"
            return (
                f"{cls.leaf_text(spec_filter[1])} {symbol} "
                f"{cls.leaf_text(spec_filter[2])}"
            )
        return cls.leaf_text(spec_filter)

    @classmethod
    def text(cls, spec: dict) -> str:
        def branch_text(branch: dict) -> str:
            parts = [" . ".join(" ".join(p) for p in branch["patterns"])]
            for optional in branch["optionals"]:
                inner = " ".join(optional["pattern"])
                for lhs, op, rhs in optional["filters"]:
                    inner += f" . FILTER({lhs} {op} {rhs})"
                parts.append(f"OPTIONAL {{ {inner} }}")
            return " ".join(parts)

        if len(spec["branches"]) == 2:
            first, second = spec["branches"]
            body = (
                f"{{ {branch_text(first)} }} UNION "
                f"{{ {branch_text(second)} }}"
            )
        else:
            body = branch_text(spec["branches"][0])
        for spec_filter in spec["filters"]:
            body += f" FILTER({cls.filter_text(spec_filter)})"
        text = (
            f"SELECT {' '.join(spec['projection'])} WHERE {{ {body} }}"
        )
        if spec["order"] is not None:
            key, descending = spec["order"]
            text += (
                f" ORDER BY DESC({key})" if descending
                else f" ORDER BY {key}"
            )
        if spec["limit"] is not None:
            text += f" LIMIT {spec['limit']}"
        if spec["offset"]:
            text += f" OFFSET {spec['offset']}"
        return text


# ---------------------------------------------------------------------------
# Independent reference evaluator (naive, bindings-based)
# ---------------------------------------------------------------------------
def _numeric_content(lexical: str):
    if lexical.startswith('"'):
        content = lexical[1 : lexical.rfind('"')]
        try:
            return float(content)
        except ValueError:
            return None
    return None


def _term_forms(token: str) -> list[str]:
    """Stored lexical forms a concrete query term matches."""
    if token.startswith("<") or token.startswith('"'):
        return [token]
    datatype = "decimal" if "." in token else "integer"
    return [
        f'"{token}"',
        f'"{token}"^^<http://www.w3.org/2001/XMLSchema#{datatype}>',
    ]


def _match(pattern, triple, binding):
    out = dict(binding)
    for token, value in zip(pattern, triple):
        if token.startswith("?"):
            if out.get(token, value) != value:
                return None
            out[token] = value
        elif value not in _term_forms(token):
            return None
    return out


#: Tri-state filter results: True, False, or _ERROR (SPARQL type error).
_ERROR = object()


def _filter_true(binding, lhs, op, rhs):
    """One comparison under the subset's semantics (tri-state)."""
    value = binding.get(lhs)
    if value is None:
        return _ERROR
    if rhs.startswith("?"):
        other = binding.get(rhs)
        if other is None:
            return _ERROR
        lnum, rnum = _numeric_content(value), _numeric_content(other)
        if op == "=":
            if lnum is not None and rnum is not None:
                return lnum == rnum
            one_numeric = (lnum is None) != (rnum is None)
            if one_numeric:
                non_numeric = value if lnum is None else other
                if not non_numeric.startswith("<"):
                    return _ERROR  # number vs non-numeric literal
            return value == other
        # op == "!=": a numeric literal against a non-numeric *literal*
        # is a type error (excluded); against an IRI, definitively
        # unequal (kept).
        one_numeric = (lnum is None) != (rnum is None)
        if one_numeric:
            non_numeric = value if lnum is None else other
            return True if non_numeric.startswith("<") else _ERROR
        if lnum is not None:
            return lnum != rnum
        return value != other
    if rhs.startswith("<") or rhs.startswith('"'):
        return (value == rhs) if op == "=" else (value != rhs)
    number = float(rhs)
    num = _numeric_content(value)
    if op == ">":
        return num > number if num is not None else _ERROR
    if op == "=":
        return num == number if num is not None else _ERROR
    if num is not None:
        return num != number
    # IRI != number: kept; non-numeric literal vs number: type error.
    return True if value.startswith("<") else _ERROR


def _str_lang_value(fn: str, value: str):
    """The content ``str()``/``lang()`` maps a bound term to."""
    if fn == "str":
        if value.startswith("<"):
            return value[1:-1]
        return value[1 : value.rfind('"')]
    if not value.startswith('"'):
        return _ERROR  # lang() of an IRI: type error
    rest = value[value.rfind('"') + 1 :]
    return rest[1:].lower() if rest.startswith("@") else ""


def _filter_holds(binding, spec_filter: tuple):
    """One (possibly connective) filter, under SPARQL's three-valued
    logic: returns True, False, or _ERROR."""
    if spec_filter[0] == "or":
        arms = [
            _filter_holds(binding, spec_filter[1]),
            _filter_holds(binding, spec_filter[2]),
        ]
        if True in arms:
            return True
        return False if arms == [False, False] else _ERROR
    if spec_filter[0] == "and":
        arms = [
            _filter_holds(binding, spec_filter[1]),
            _filter_holds(binding, spec_filter[2]),
        ]
        if False in arms:
            return False
        return True if arms == [True, True] else _ERROR
    if spec_filter[0] == "not":
        inner = _filter_holds(binding, spec_filter[1])
        return _ERROR if inner is _ERROR else not inner
    if spec_filter[0] == "bound":
        return binding.get(spec_filter[1]) is not None
    if spec_filter[0] == "regex":
        import re as _re

        _, var, pattern, flags = spec_filter
        value = binding.get(var)
        if value is None or not value.startswith('"'):
            return _ERROR  # unbound or non-literal: type error
        content = value[1 : value.rfind('"')]
        return (
            _re.search(
                pattern, content, _re.IGNORECASE if "i" in flags else 0
            )
            is not None
        )
    if spec_filter[0] in ("str", "lang"):
        fn, var, op, expected = spec_filter
        value = binding.get(var)
        if value is None:
            return _ERROR
        mapped = _str_lang_value(fn, value)
        if mapped is _ERROR:
            return _ERROR
        # The mapped content compares like a literal with that content:
        # numeric content by value, otherwise by string identity.
        mnum, enum = _numeric_content(f'"{mapped}"'), _numeric_content(
            f'"{expected}"'
        )
        if mnum is not None and enum is not None:
            equal = mnum == enum
        elif (mnum is None) != (enum is None):
            return _ERROR  # number vs non-numeric literal: type error
        else:
            equal = mapped == expected
        return equal if op == "=" else not equal
    return _filter_true(binding, *spec_filter)


def _eval_branch(graph, branch: dict):
    solutions = [dict()]
    for pattern in branch["patterns"]:
        solutions = [
            extended
            for binding in solutions
            for triple in graph
            if (extended := _match(pattern, triple, binding)) is not None
        ]
    for optional in branch["optionals"]:
        extended_solutions = []
        for binding in solutions:
            matches = []
            for triple in graph:
                extended = _match(optional["pattern"], triple, binding)
                if extended is not None and all(
                    _filter_true(extended, *f) is True
                    for f in optional["filters"]
                ):
                    matches.append(extended)
            extended_solutions.extend(matches if matches else [binding])
        solutions = extended_solutions
    return solutions


def _reference_rows(graph, spec: dict) -> set[tuple]:
    rows = set()
    for branch in spec["branches"]:
        for binding in _eval_branch(graph, branch):
            if all(
                _filter_holds(binding, f) is True
                for f in spec["filters"]
            ):
                rows.add(
                    tuple(binding.get(v) for v in spec["projection"])
                )
    return rows


# ---------------------------------------------------------------------------
# The harness
# ---------------------------------------------------------------------------
QUERIES_PER_SEED = 8


def _check_query(engines, graph, spec, text, context):
    """All engines agree with each other and the reference evaluator."""
    decoded = {}
    for name, engine in engines.items():
        result = engine.execute_sparql(text)
        decoded[name] = engine.decode(result)
    reference = decoded["emptyheaded"]
    for name, rows in decoded.items():
        assert rows == reference, (
            f"{context}: engine {name} returned {rows!r}, "
            f"emptyheaded returned {reference!r}"
        )

    expected = _reference_rows(graph, spec)
    if spec["limit"] is not None or spec["offset"]:
        remaining = max(0, len(expected) - spec["offset"])
        expected_count = (
            remaining
            if spec["limit"] is None
            else min(spec["limit"], remaining)
        )
        assert len(reference) == expected_count, (
            f"{context}: got {len(reference)} rows, expected "
            f"{expected_count} of {len(expected)} total"
        )
        assert set(reference) <= expected, context
    else:
        assert set(reference) == expected, (
            f"{context}: engines returned {set(reference)!r}, "
            f"reference evaluator {expected!r}"
        )


@pytest.mark.parametrize("seed", range(16))
def test_engines_agree_on_random_queries(seed):
    rng = random.Random(seed)
    graph = _make_graph(rng)
    store = vertically_partition(graph)
    engines = {cls.name: cls(store) for cls in ALL_ENGINES}
    gen = _QueryGen(rng, graph)
    for _ in range(QUERIES_PER_SEED):
        spec = gen.spec()
        text = gen.text(spec)
        _check_query(
            engines, graph, spec, text, f"seed={seed} query={text!r}"
        )


@pytest.mark.parametrize("seed", range(6))
def test_updates_interleaved_with_cached_execution(seed):
    """add/remove_triples between cached executions: every engine's
    QueryService must track the mutated graph exactly (reference
    evaluator re-run over the evolving triple list)."""
    from repro.service import QueryService

    rng = random.Random(1000 + seed)
    graph = list(_make_graph(rng))
    store = vertically_partition(graph)
    services = {
        cls.name: QueryService(cls(store)) for cls in ALL_ENGINES
    }
    gen = _QueryGen(rng, graph)
    specs = [gen.spec() for _ in range(3)]
    # Queries without LIMIT/OFFSET compare exactly against the
    # reference evaluator after every mutation.
    for spec in specs:
        spec["limit"] = None
        spec["offset"] = 0
    texts = [gen.text(spec) for spec in specs]

    subjects = sorted({s for s, _, _ in graph})
    predicates = sorted({p for _, p, _ in graph})

    def check(step: str) -> None:
        for spec, text in zip(specs, texts):
            expected = _reference_rows(graph, spec)
            for name, service in services.items():
                rows = set(
                    service.engine.decode(service.execute(text))
                )
                assert rows == expected, (
                    f"seed={seed} step={step} engine={name} "
                    f"query={text!r}: got {rows!r}, expected "
                    f"{expected!r}"
                )

    check("initial")  # caches are now warm for every text
    for step in range(3):
        additions = [
            (
                rng.choice(subjects),
                rng.choice(predicates),
                rng.choice(subjects),
            )
            for _ in range(rng.randint(1, 4))
        ]
        store.add_triples(additions)
        graph = sorted(set(graph) | set(additions))
        check(f"add{step}")
        removals = [
            graph[rng.randrange(len(graph))]
            for _ in range(rng.randint(1, 3))
        ]
        store.remove_triples(removals)
        graph = sorted(set(graph) - set(removals))
        check(f"remove{step}")


@pytest.mark.parametrize("seed", range(8))
def test_streamed_limit_offset_matches_materialized(seed):
    """Streamed execution must be row-for-row identical to materialized
    execution — same rows, same canonical order — on every engine, for
    random LIMIT/OFFSET queries (forced onto every spec)."""
    rng = random.Random(2000 + seed)
    graph = _make_graph(rng)
    store = vertically_partition(graph)
    engines = {cls.name: cls(store) for cls in ALL_ENGINES}
    gen = _QueryGen(rng, graph)
    for _ in range(QUERIES_PER_SEED):
        spec = gen.spec()
        if spec["limit"] is None:
            spec["limit"] = rng.randint(1, 6)
            spec["offset"] = rng.randint(0, 2)
        text = gen.text(spec)
        context = f"seed={seed} query={text!r}"
        for name, engine in engines.items():
            materialized = engine.decode(engine.execute_sparql(text))
            pages = list(engine.execute_iter(engine.prepare_sparql(text)))
            streamed = [
                row for page in pages for row in engine.decode(page)
            ]
            assert streamed == materialized, (
                f"{context}: engine {name} streamed {streamed!r}, "
                f"materialized {materialized!r}"
            )


@pytest.mark.parametrize("seed", range(4))
def test_open_streaming_cursors_survive_interleaved_updates(seed):
    """add/remove_triples against an *open* streaming cursor: the cursor
    keeps serving the epoch pinned at execute time on every engine, and
    a fresh streamed execute sees the mutated graph."""
    from repro.service import QueryService

    rng = random.Random(3000 + seed)
    graph = list(_make_graph(rng))
    store = vertically_partition(graph)
    services = {
        cls.name: QueryService(cls(store)) for cls in ALL_ENGINES
    }
    gen = _QueryGen(rng, graph)
    specs = [gen.spec() for _ in range(3)]
    for spec in specs:  # exact-comparison queries: no final slice
        spec["limit"] = None
        spec["offset"] = 0
    texts = [gen.text(spec) for spec in specs]
    subjects = sorted({s for s, _, _ in graph})
    predicates = sorted({p for _, p, _ in graph})

    for step, text in enumerate(texts):
        snapshots = {
            name: service.engine.decode(service.execute(text))
            for name, service in services.items()
        }
        cursors = {
            name: service.session().execute(
                text, page_size=2, stream=True
            )
            for name, service in services.items()
        }
        first = {name: cursor.fetch() for name, cursor in cursors.items()}
        additions = [
            (
                rng.choice(subjects),
                rng.choice(predicates),
                rng.choice(subjects),
            )
            for _ in range(rng.randint(1, 3))
        ]
        store.add_triples(additions)
        graph = sorted(set(graph) | set(additions))
        removals = [graph[rng.randrange(len(graph))]]
        store.remove_triples(removals)
        graph = sorted(set(graph) - set(removals))
        for name, cursor in cursors.items():
            rest = [] if first[name].done else cursor.fetch_all()
            rows = list(first[name].rows) + rest
            assert rows == snapshots[name], (
                f"seed={seed} step={step} engine={name} "
                f"query={text!r}: open cursor returned {rows!r}, "
                f"pre-update snapshot {snapshots[name]!r}"
            )
        # Fresh streamed executions see the mutated graph and agree
        # across engines.
        fresh = {
            name: service.session()
            .execute(text, stream=True)
            .fetch_all()
            for name, service in services.items()
        }
        reference = fresh["emptyheaded"]
        for name, rows in fresh.items():
            assert rows == reference, (
                f"seed={seed} step={step} engine={name}: post-update "
                f"stream returned {rows!r}, emptyheaded {reference!r}"
            )


# ---------------------------------------------------------------------------
# Zipf-skewed legs: data and parameter families with hot values, so the
# sketch-driven bound orders (and per-value re-optimized plans) differ
# from the uniform graphs above — plan diversity must never change rows.
# ---------------------------------------------------------------------------
def _make_skewed_graph(rng: random.Random) -> list[tuple[str, str, str]]:
    """Zipf-weighted term draws: a few hot subjects/predicates/objects
    dominate the graph, the tail is near-singleton."""
    subjects = [f"<{EX}s{i}>" for i in range(8)]
    predicates = [f"<{EX}p{i}>" for i in range(4)]
    literals = ['"alpha"', '"beta"', '"3"', f'"5"^^<{XSD_INTEGER}>']
    objects = subjects + literals
    exponent = 1.4
    subject_w = [1.0 / (r + 1) ** exponent for r in range(len(subjects))]
    predicate_w = [
        1.0 / (r + 1) ** exponent for r in range(len(predicates))
    ]
    object_w = [1.0 / (r + 1) ** exponent for r in range(len(objects))]
    triples = set()
    for _ in range(rng.randint(60, 120)):
        triples.add(
            (
                rng.choices(subjects, weights=subject_w)[0],
                rng.choices(predicates, weights=predicate_w)[0],
                rng.choices(objects, weights=object_w)[0],
            )
        )
    return sorted(triples)


@pytest.mark.parametrize("seed", range(8))
def test_engines_agree_on_zipf_skewed_graphs(seed):
    rng = random.Random(4000 + seed)
    graph = _make_skewed_graph(rng)
    store = vertically_partition(graph)
    engines = {cls.name: cls(store) for cls in ALL_ENGINES}
    gen = _QueryGen(rng, graph)
    for _ in range(QUERIES_PER_SEED):
        spec = gen.spec()
        text = gen.text(spec)
        _check_query(
            engines,
            graph,
            spec,
            text,
            f"zipf seed={seed} query={text!r}",
        )


@pytest.mark.parametrize("seed", range(4))
def test_prepared_zipf_parameters_stay_row_identical(seed):
    """A Zipf-sampled parameter stream through prepared statements on
    every engine: the per-value plans (structural-cached for the tail,
    re-optimized for the hot head on the EmptyHeaded family) must
    return exactly the one-shot execution's rows for each value, and
    all engines must agree."""
    from repro.service import QueryService

    rng = random.Random(4500 + seed)
    graph = _make_skewed_graph(rng)
    store = vertically_partition(graph)
    predicates = sorted({p for _, p, _ in graph})
    hot_pred, other_pred = predicates[0], predicates[1]
    template = (
        f"SELECT ?x ?y WHERE {{ ?x {hot_pred} $v . ?x {other_pred} ?y }}"
    )
    values = sorted(
        {o for _, p, o in graph if p == hot_pred and o.startswith("<")}
    )
    if not values:  # degenerate draw: probe a guaranteed-empty value
        values = [f"<{EX}s0>"]
    weights = [1.0 / (rank + 1) ** 1.4 for rank in range(len(values))]
    stream = rng.choices(values, weights=weights, k=10)

    services = {cls.name: QueryService(cls(store)) for cls in ALL_ENGINES}
    statements = {
        name: service.prepare(template)
        for name, service in services.items()
    }
    for value in stream:
        concrete = template.replace("$v", value)
        context = f"seed={seed} value={value}"
        rows = {}
        for name, service in services.items():
            engine = service.engine
            prepared = engine.decode(statements[name].execute(v=value))
            oneshot = engine.decode(engine.execute_sparql(concrete))
            assert prepared == oneshot, (
                f"{context}: engine {name} prepared {prepared!r}, "
                f"one-shot {oneshot!r}"
            )
            rows[name] = prepared
        reference = rows["emptyheaded"]
        for name, engine_rows in rows.items():
            assert engine_rows == reference, (
                f"{context}: engine {name} returned {engine_rows!r}, "
                f"emptyheaded returned {reference!r}"
            )


def test_harness_is_deterministic():
    """Same seed => same graph and same query batch (reproducibility)."""
    rng1, rng2 = random.Random(3), random.Random(3)
    graph1, graph2 = _make_graph(rng1), _make_graph(rng2)
    assert graph1 == graph2
    gen1, gen2 = _QueryGen(rng1, graph1), _QueryGen(rng2, graph2)
    assert [gen1.text(gen1.spec()) for _ in range(5)] == [
        gen2.text(gen2.spec()) for _ in range(5)
    ]


def test_generator_covers_all_constructs():
    """The random mix actually exercises every construct under test."""
    seen = {
        "union": False,
        "optional": False,
        "varpred": False,
        "filter": False,
        "connective": False,
        "order": False,
        "number": False,
        "optional_filter": False,
        "shared_optional": False,
        "bound": False,
        "regex": False,
        "str": False,
        "lang": False,
        "negation": False,
    }
    for seed in range(16):
        rng = random.Random(seed)
        graph = _make_graph(rng)
        gen = _QueryGen(rng, graph)
        for _ in range(QUERIES_PER_SEED):
            spec = gen.spec()
            text = gen.text(spec)
            seen["union"] |= len(spec["branches"]) == 2
            seen["optional"] |= any(
                b["optionals"] for b in spec["branches"]
            )
            seen["varpred"] |= "?q" in text
            seen["filter"] |= bool(spec["filters"])
            seen["connective"] |= any(
                f[0] in ("or", "and") for f in spec["filters"]
            )
            seen["order"] |= spec["order"] is not None
            seen["number"] |= any(
                p[2] in ("3", "7", "5")
                for b in spec["branches"]
                for p in b["patterns"]
            )
            seen["optional_filter"] |= any(
                o["filters"]
                for b in spec["branches"]
                for o in b["optionals"]
            )
            seen["shared_optional"] |= any(
                len(b["optionals"]) == 2 for b in spec["branches"]
            )
            seen["bound"] |= "bound(" in text
            seen["regex"] |= "regex(" in text
            seen["str"] |= "str(" in text
            seen["lang"] |= "lang(" in text
            seen["negation"] |= "!(" in text
    assert all(seen.values()), seen
