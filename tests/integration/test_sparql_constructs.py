"""Differential tests: every new SPARQL construct, every engine.

Five radically different physical designs execute the same expanded
grammar (numeric literals, ';'/',' lists, 'a', FILTER, ORDER BY,
LIMIT/OFFSET) over a small synthetic graph; identical decoded results
across all of them is strong evidence the shared front-end and the
engine-layer modifier semantics are correct.
"""

import pytest

from repro.engines import ALL_ENGINES
from repro.rdf.vocabulary import RDF_TYPE
from repro.storage.vertical import vertically_partition

EX = "http://ex/"
PERSON = f"<{EX}Person>"


def _iri(name):
    return f"<{EX}{name}>"


TRIPLES = [
    # types
    (_iri("alice"), RDF_TYPE, PERSON),
    (_iri("bob"), RDF_TYPE, PERSON),
    (_iri("carol"), RDF_TYPE, PERSON),
    (_iri("dave"), RDF_TYPE, PERSON),
    # ages: plain numeric literals, one junk value
    (_iri("alice"), _iri("age"), '"34"'),
    (_iri("bob"), _iri("age"), '"25"'),
    (_iri("carol"), _iri("age"), '"25"'),
    (_iri("dave"), _iri("age"), '"n/a"'),
    # names, one language-tagged
    (_iri("alice"), _iri("name"), '"Alice"'),
    (_iri("bob"), _iri("name"), '"Bob"'),
    (_iri("carol"), _iri("name"), '"Carol"@en'),
    # knows graph (includes a self-loop)
    (_iri("alice"), _iri("knows"), _iri("bob")),
    (_iri("bob"), _iri("knows"), _iri("carol")),
    (_iri("carol"), _iri("knows"), _iri("alice")),
    (_iri("carol"), _iri("knows"), _iri("carol")),
]


@pytest.fixture(scope="module")
def engines():
    store = vertically_partition(TRIPLES)
    return {cls.name: cls(store) for cls in ALL_ENGINES}


CONSTRUCT_QUERIES = {
    "numeric-literal-pattern": (
        f"SELECT ?x WHERE {{ ?x <{EX}age> 25 }}",
        {(f"<{EX}bob>",), (f"<{EX}carol>",)},
    ),
    "a-and-semicolon-list": (
        f"SELECT ?x ?y WHERE {{ ?x a {PERSON} ; <{EX}knows> ?y . }}",
        {
            (f"<{EX}alice>", f"<{EX}bob>"),
            (f"<{EX}bob>", f"<{EX}carol>"),
            (f"<{EX}carol>", f"<{EX}alice>"),
            (f"<{EX}carol>", f"<{EX}carol>"),
        },
    ),
    "object-comma-list": (
        f"SELECT ?x WHERE {{ ?x <{EX}knows> <{EX}bob> , <{EX}carol> }}",
        set(),  # nobody knows both bob and carol
    ),
    "filter-numeric-greater": (
        f"SELECT ?x WHERE {{ ?x <{EX}age> ?a . FILTER(?a > 30) }}",
        {(f"<{EX}alice>",)},  # "n/a" is a type error, excluded
    ),
    "filter-numeric-equality-by-value": (
        f"SELECT ?x WHERE {{ ?x <{EX}age> ?a . FILTER(?a = 25) }}",
        {(f"<{EX}bob>",), (f"<{EX}carol>",)},
    ),
    "filter-string-equality-pushdown": (
        f'SELECT ?x WHERE {{ ?x <{EX}name> ?n . FILTER(?n = "Alice") }}',
        {(f"<{EX}alice>",)},
    ),
    "filter-lang-tagged-equality": (
        f'SELECT ?x WHERE {{ ?x <{EX}name> ?n . FILTER(?n = "Carol"@en) }}',
        {(f"<{EX}carol>",)},
    ),
    "filter-var-var-inequality": (
        f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y . FILTER(?x != ?y) }}",
        {
            (f"<{EX}alice>", f"<{EX}bob>"),
            (f"<{EX}bob>", f"<{EX}carol>"),
            (f"<{EX}carol>", f"<{EX}alice>"),
        },
    ),
    "filter-join-combination": (
        f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y . ?y <{EX}age> ?a . "
        f"FILTER(?a < 30) }}",
        {
            (f"<{EX}alice>", f"<{EX}bob>"),
            (f"<{EX}bob>", f"<{EX}carol>"),
            (f"<{EX}carol>", f"<{EX}carol>"),
        },
    ),
    "not-equals-unknown-term-keeps-rows": (
        f'SELECT ?x WHERE {{ ?x <{EX}name> ?n . FILTER(?n != "ZZZ") }}',
        {(f"<{EX}alice>",), (f"<{EX}bob>",), (f"<{EX}carol>",)},
    ),
    "not-equals-number-keeps-iris": (
        # IRI vs number is definitively unequal, not a type error.
        f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y . FILTER(?y != 42) }}",
        {
            (f"<{EX}alice>", f"<{EX}bob>"),
            (f"<{EX}bob>", f"<{EX}carol>"),
            (f"<{EX}carol>", f"<{EX}alice>"),
            (f"<{EX}carol>", f"<{EX}carol>"),
        },
    ),
}


@pytest.mark.parametrize("label", sorted(CONSTRUCT_QUERIES))
def test_all_engines_agree_and_match_expected(label, engines):
    text, expected = CONSTRUCT_QUERIES[label]
    decoded = {}
    for name, engine in engines.items():
        result = engine.execute_sparql(text)
        decoded[name] = set(engine.decode(result))
    for name, rows in decoded.items():
        assert rows == expected, (
            f"{label}: engine {name} returned {rows!r}, "
            f"expected {expected!r}"
        )


ORDERED_QUERIES = {
    "order-by-subject-limit-offset": (
        f"SELECT ?x WHERE {{ ?x a {PERSON} }} ORDER BY ?x LIMIT 2 OFFSET 1",
        [(f"<{EX}bob>",), (f"<{EX}carol>",)],
    ),
    "order-by-desc-age-then-subject": (
        f"SELECT ?x ?a WHERE {{ ?x <{EX}age> ?a }} ORDER BY DESC(?a) ?x",
        [
            (f"<{EX}dave>", '"n/a"'),  # strings sort after numbers; DESC
            (f"<{EX}alice>", '"34"'),
            (f"<{EX}bob>", '"25"'),
            (f"<{EX}carol>", '"25"'),
        ],
    ),
    "plain-limit-is-deterministic": (
        f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y }} LIMIT 2",
        None,  # engines must agree exactly; order is canonical (sorted)
    ),
}


@pytest.mark.parametrize("label", sorted(ORDERED_QUERIES))
def test_ordered_results_identical_across_engines(label, engines):
    text, expected = ORDERED_QUERIES[label]
    rows_by_engine = {}
    for name, engine in engines.items():
        result = engine.execute_sparql(text)
        rows_by_engine[name] = engine.decode(result)
    reference = rows_by_engine["emptyheaded"]
    if expected is not None:
        assert reference == expected
    for name, rows in rows_by_engine.items():
        assert rows == reference, (
            f"{label}: engine {name} ordered rows differ from emptyheaded"
        )


def test_limit_zero_and_large_offset(engines):
    empty = f"SELECT ?x WHERE {{ ?x a {PERSON} }} LIMIT 0"
    beyond = f"SELECT ?x WHERE {{ ?x a {PERSON} }} OFFSET 100"
    for engine in engines.values():
        assert engine.execute_sparql(empty).num_rows == 0
        assert engine.execute_sparql(beyond).num_rows == 0


def test_lubm_queries_still_agree_with_limit(all_engines, queries):
    """LIMIT composes with the paper workload identically everywhere."""
    text = queries[2] + "\nLIMIT 5"
    rows = {
        name: engine.decode(engine.execute_sparql(text))
        for name, engine in all_engines.items()
    }
    reference = rows["emptyheaded"]
    assert len(reference) == 5
    for name, decoded_rows in rows.items():
        assert decoded_rows == reference, name
