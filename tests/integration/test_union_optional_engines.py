"""Differential tests for UNION / OPTIONAL / variable predicates.

Five radically different physical designs (WCOJ+GHD, plain WCOJ, column
store, six-permutation indexes, per-predicate matrices) answer the same
multi-block queries; identical decoded results across all of them is the
acceptance gate for the expanded grammar. Expected rows are written out
explicitly, so these also pin the *semantics* (NULL padding, filter
scope, sort-dedup union), not just cross-engine agreement.
"""

import pytest

from repro.engines import ALL_ENGINES
from repro.rdf.vocabulary import RDF_TYPE, XSD_INTEGER
from repro.service import QueryService
from repro.storage.vertical import vertically_partition

EX = "http://ex/"
PERSON = f"<{EX}Person>"
ROBOT = f"<{EX}Robot>"


def _iri(name):
    return f"<{EX}{name}>"


TRIPLES = [
    (_iri("alice"), RDF_TYPE, PERSON),
    (_iri("bob"), RDF_TYPE, PERSON),
    (_iri("carol"), RDF_TYPE, ROBOT),
    # ages: one plain literal, one typed, one junk
    (_iri("alice"), _iri("age"), '"34"'),
    (_iri("bob"), _iri("age"), f'"25"^^<{XSD_INTEGER}>'),
    (_iri("carol"), _iri("age"), '"n/a"'),
    # names: only alice and carol have one
    (_iri("alice"), _iri("name"), '"Alice"'),
    (_iri("carol"), _iri("name"), '"Carol"'),
    # knows graph
    (_iri("alice"), _iri("knows"), _iri("bob")),
    (_iri("bob"), _iri("knows"), _iri("carol")),
]

A, B, C = _iri("alice"), _iri("bob"), _iri("carol")


@pytest.fixture(scope="module")
def engines():
    store = vertically_partition(TRIPLES)
    return {cls.name: cls(store) for cls in ALL_ENGINES}


QUERIES = {
    "union-of-types": (
        f"SELECT ?x WHERE {{ {{ ?x a {PERSON} }} UNION {{ ?x a {ROBOT} }} }}",
        {(A,), (B,), (C,)},
    ),
    "union-dedups-overlap": (
        f"SELECT ?x WHERE {{ {{ ?x a {PERSON} }} UNION "
        f"{{ ?x <{EX}age> ?a }} }}",
        {(A,), (B,), (C,)},
    ),
    "union-unbound-branch-var": (
        f"SELECT ?x ?n WHERE {{ {{ ?x a {ROBOT} }} UNION "
        f"{{ ?x <{EX}name> ?n }} }}",
        {(C, None), (A, '"Alice"'), (C, '"Carol"')},
    ),
    "optional-name": (
        f"SELECT ?x ?n WHERE {{ ?x a {PERSON} . "
        f"OPTIONAL {{ ?x <{EX}name> ?n }} }}",
        {(A, '"Alice"'), (B, None)},
    ),
    "optional-chained": (
        f"SELECT ?x ?n ?a WHERE {{ ?x <{EX}knows> ?y . "
        f"OPTIONAL {{ ?x <{EX}name> ?n }} "
        f"OPTIONAL {{ ?x <{EX}age> ?a }} }}",
        {(A, '"Alice"', '"34"'), (B, None, '"25"^^<' + XSD_INTEGER + ">")},
    ),
    "optional-filter-inside": (
        # The filter lives inside OPTIONAL: failing it pads, never drops.
        f"SELECT ?x ?a WHERE {{ ?x a {PERSON} . "
        f"OPTIONAL {{ ?x <{EX}age> ?a . FILTER(?a > 30) }} }}",
        {(A, '"34"'), (B, None)},
    ),
    "filter-after-optional-drops-null": (
        # The filter lives outside: comparing unbound is a type error.
        f"SELECT ?x WHERE {{ ?x a {PERSON} . "
        f"OPTIONAL {{ ?x <{EX}name> ?n }} FILTER(?n = \"Alice\") }}",
        {(A,)},
    ),
    "optional-over-missing-predicate": (
        f"SELECT ?x ?z WHERE {{ ?x a {ROBOT} . "
        f"OPTIONAL {{ ?x <{EX}neverUsed> ?z }} }}",
        {(C, None)},
    ),
    "variable-predicate-all": (
        f"SELECT ?p WHERE {{ {A} ?p ?o }}",
        {(RDF_TYPE,), (f"<{EX}age>",), (f"<{EX}name>",), (f"<{EX}knows>",)},
    ),
    "variable-predicate-join": (
        f"SELECT ?x ?p ?z WHERE {{ ?x ?p ?y . ?y ?p ?z }}",
        {(A, f"<{EX}knows>", C)},
    ),
    "variable-predicate-object-bound": (
        f"SELECT ?x ?p WHERE {{ ?x ?p {C} }}",
        {(B, f"<{EX}knows>")},
    ),
    "variable-predicate-filter-pushdown": (
        f"SELECT ?x ?o WHERE {{ ?x ?p ?o . FILTER(?p = <{EX}name>) }}",
        {(A, '"Alice"'), (C, '"Carol"')},
    ),
    "typed-numeric-matches-typed-form": (
        f"SELECT ?x WHERE {{ ?x <{EX}age> 25 }}",
        {(B,)},
    ),
    "typed-numeric-matches-plain-form": (
        f"SELECT ?x WHERE {{ ?x <{EX}age> 34 }}",
        {(A,)},
    ),
    "union-with-variable-predicate-branch": (
        f"SELECT ?x WHERE {{ {{ ?x ?p {C} }} UNION {{ ?x a {ROBOT} }} }}",
        {(B,), (C,)},
    ),
}


@pytest.mark.parametrize("label", sorted(QUERIES))
def test_all_engines_agree_and_match_expected(label, engines):
    text, expected = QUERIES[label]
    for name, engine in engines.items():
        rows = set(engine.decode(engine.execute_sparql(text)))
        assert rows == expected, (
            f"{label}: engine {name} returned {rows!r}, "
            f"expected {expected!r}"
        )


ORDERED = {
    "union-order-null-first": (
        f"SELECT ?x ?n WHERE {{ {{ ?x a {PERSON} }} UNION {{ ?x a {ROBOT} }} "
        f"OPTIONAL {{ ?x <{EX}name> ?n }} }} ORDER BY ?n ?x",
        [(B, None), (A, '"Alice"'), (C, '"Carol"')],
    ),
    "union-limit-offset": (
        f"SELECT ?x WHERE {{ {{ ?x a {PERSON} }} UNION {{ ?x a {ROBOT} }} }} "
        "ORDER BY ?x LIMIT 2 OFFSET 1",
        [(B,), (C,)],
    ),
}


@pytest.mark.parametrize("label", sorted(ORDERED))
def test_ordered_multiblock_results(label, engines):
    text, expected = ORDERED[label]
    for name, engine in engines.items():
        rows = engine.decode(engine.execute_sparql(text))
        assert rows == expected, f"{label}: engine {name} returned {rows!r}"


def test_union_branch_dropped_at_bind_with_cross_branch_filter(engines):
    """A filter over a variable whose only branch drops at bind time
    (missing predicate table) empties the surviving branch (unbound
    comparison = type error) — it must not crash the conjunctive fast
    path."""
    text = (
        f"SELECT ?x WHERE {{ {{ ?x a {PERSON} }} UNION "
        f'{{ ?x <{EX}noSuchPredicate> ?y }} FILTER(?y != "z") }}'
    )
    for name, engine in engines.items():
        assert engine.decode(engine.execute_sparql(text)) == [], name


def test_plain_limit_on_union_is_canonical(engines):
    text = (
        f"SELECT ?x WHERE {{ {{ ?x a {PERSON} }} UNION {{ ?x a {ROBOT} }} }} "
        "LIMIT 2"
    )
    reference = None
    for engine in engines.values():
        rows = engine.decode(engine.execute_sparql(text))
        assert len(rows) == 2
        if reference is None:
            reference = rows
        assert rows == reference


def test_query_service_caches_multiblock_queries(engines):
    engine = engines["emptyheaded"]
    service = QueryService(engine)
    text = QUERIES["union-of-types"][0]
    expected = QUERIES["union-of-types"][1]
    assert set(service.execute_decoded(text)) == expected
    assert set(service.execute_decoded(text)) == expected
    assert service.stats.hits == 1
    assert service.warm([QUERIES["optional-name"][0]]) > 0


def test_lubm_union_optional_varpred_agree(all_engines, queries):
    """LUBM-style acceptance: UNION + OPTIONAL + variable predicate in
    one query parses, plans, and agrees on all five engines."""
    prefix = (
        "PREFIX ub: "
        "<http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>\n"
    )
    text = prefix + (
        "SELECT ?x ?e ?p WHERE {"
        " { ?x a ub:FullProfessor } UNION { ?x a ub:AssociateProfessor }"
        " OPTIONAL { ?x ub:emailAddress ?e }"
        " ?x ?p <http://www.Department0.University0.edu> ."
        "} ORDER BY ?x ?p LIMIT 25"
    )
    reference = None
    for name, engine in all_engines.items():
        rows = engine.decode(engine.execute_sparql(text))
        if reference is None:
            reference = rows
            assert rows, "expected non-empty LUBM result"
        assert rows == reference, name
