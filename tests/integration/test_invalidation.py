"""Update-safety across every engine and the serving tier.

After ``add_triples``/``remove_triples`` the next answer from any path
— direct ``execute_sparql``, cached ``QueryService`` execution, or a
bound ``PreparedStatement`` — must reflect the new data: no stale plan,
index, trie, ``__triples__`` view, or cached result may be served.
"""

import pytest

from repro.engines import ALL_ENGINES
from repro.rdf.vocabulary import RDF_TYPE
from repro.service import QueryService
from repro.storage.vertical import vertically_partition

EX = "http://ex/"

BASE = [
    (f"<{EX}a>", RDF_TYPE, f"<{EX}T>"),
    (f"<{EX}b>", RDF_TYPE, f"<{EX}T>"),
    (f"<{EX}a>", f"<{EX}knows>", f"<{EX}b>"),
    (f"<{EX}b>", f"<{EX}knows>", f"<{EX}a>"),
]

Q_TYPE = f"SELECT ?x WHERE {{ ?x a <{EX}T> }}"
Q_JOIN = (
    f"SELECT ?x ?y WHERE {{ ?x <{EX}knows> ?y . ?y a <{EX}T> }}"
)
Q_VARPRED = f"SELECT ?p ?o WHERE {{ <{EX}a> ?p ?o }}"
TEMPLATE = f"SELECT ?x WHERE {{ ?x <{EX}knows> $who }}"


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_every_engine_sees_updates_through_cached_paths(engine_cls):
    store = vertically_partition(BASE)
    engine = engine_cls(store)
    # Warm every cache: plans, tries, permutation indexes, matrices,
    # and the __triples__ view.
    assert engine.execute_sparql(Q_TYPE).num_rows == 2
    assert engine.execute_sparql(Q_JOIN).num_rows == 2
    assert engine.execute_sparql(Q_VARPRED).num_rows == 2

    store.add_triples(
        [
            (f"<{EX}c>", RDF_TYPE, f"<{EX}T>"),
            (f"<{EX}a>", f"<{EX}knows>", f"<{EX}c>"),
            (f"<{EX}a>", f"<{EX}likes>", f"<{EX}b>"),  # new predicate
        ]
    )
    assert engine.execute_sparql(Q_TYPE).num_rows == 3
    assert engine.execute_sparql(Q_JOIN).num_rows == 3
    assert engine.execute_sparql(Q_VARPRED).num_rows == 4
    assert (
        engine.execute_sparql(
            f"SELECT ?x WHERE {{ ?x <{EX}likes> ?y }}"
        ).num_rows
        == 1
    )

    store.remove_triples([(f"<{EX}c>", RDF_TYPE, f"<{EX}T>")])
    assert engine.execute_sparql(Q_TYPE).num_rows == 2
    assert engine.execute_sparql(Q_JOIN).num_rows == 2


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_service_and_statement_never_serve_stale_answers(engine_cls):
    store = vertically_partition(BASE)
    service = QueryService(engine_cls(store))
    statement = service.prepare(TEMPLATE)

    assert service.execute(Q_TYPE).num_rows == 2
    assert statement.execute(who=f"<{EX}b>").num_rows == 1

    store.add_triples(
        [
            (f"<{EX}c>", RDF_TYPE, f"<{EX}T>"),
            (f"<{EX}c>", f"<{EX}knows>", f"<{EX}b>"),
        ]
    )
    # Both the text-cached query and the bound template re-bind.
    assert service.execute(Q_TYPE).num_rows == 3
    assert sorted(statement.execute_decoded(who=f"<{EX}b>")) == [
        (f"<{EX}a>",),
        (f"<{EX}c>",),
    ]

    store.remove_triples([(f"<{EX}c>", f"<{EX}knows>", f"<{EX}b>")])
    assert statement.execute_decoded(who=f"<{EX}b>") == [(f"<{EX}a>",)]


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_provably_empty_becomes_nonempty_after_add(engine_cls):
    """A query over a predicate with no triples is cached as provably
    empty — adding the first triple of that predicate must revive it."""
    store = vertically_partition(BASE)
    service = QueryService(engine_cls(store))
    text = f"SELECT ?x WHERE {{ ?x <{EX}likes> ?y }}"
    assert service.execute(text).num_rows == 0
    store.add_triples([(f"<{EX}a>", f"<{EX}likes>", f"<{EX}b>")])
    assert service.execute(text).num_rows == 1


def test_warm_then_update_then_execute():
    """Warmed tries must not shadow the post-update data."""
    from repro.engines.emptyheaded import EmptyHeadedEngine

    store = vertically_partition(BASE)
    service = QueryService(EmptyHeadedEngine(store))
    service.warm([Q_TYPE, Q_JOIN])
    store.add_triples([(f"<{EX}c>", RDF_TYPE, f"<{EX}T>")])
    assert service.execute(Q_TYPE).num_rows == 3
