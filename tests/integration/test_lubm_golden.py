"""Golden output properties of the LUBM workload at seed 0, scale 1.

Absolute counts are locked for the fixed seed; structural properties
(Q11 = 0, Q14 = all undergraduates, Q8 = Q14 here) hold at any seed by
ontology construction and mirror the paper's Appendix B cardinalities.
"""

import pytest

from repro.rdf.vocabulary import UB


@pytest.fixture(scope="module")
def counts(emptyheaded, queries):
    return {
        qid: emptyheaded.execute_sparql(text).num_rows
        for qid, text in queries.items()
    }


def test_query11_is_empty_without_inference(counts):
    """Research groups are subOrganizationOf departments, never
    universities — the paper reports 0 tuples for query 11."""
    assert counts[11] == 0


def test_query14_counts_all_undergraduates(counts, dataset, emptyheaded):
    d = dataset.dictionary
    type_table = dataset.store.tables["type"]
    undergrad = d.require(UB.UndergraduateStudent)
    expected = int((type_table.column("object") == undergrad).sum())
    assert counts[14] == expected


def test_query8_equals_query14_at_single_university(counts):
    """With one university, every undergraduate belongs to University0,
    so Q8 (undergrads of University0 with email) matches Q14."""
    assert counts[8] == counts[14]


def test_small_selective_queries_nonempty(counts):
    for qid in (1, 3, 4, 5, 7, 12, 13):
        assert counts[qid] > 0, f"Q{qid} unexpectedly empty"


def test_cyclic_queries_nonempty(counts):
    assert counts[2] > 0
    assert counts[9] > 0


def test_query4_matches_dept0_associate_professors(counts, dataset):
    d = dataset.dictionary
    works_for = dataset.store.tables["worksFor"]
    dept0 = d.require("<http://www.Department0.University0.edu>")
    type_table = dataset.store.tables["type"]
    assoc = d.require(UB.AssociateProfessor)
    professors = {
        int(s)
        for s, o in type_table.iter_rows()
        if int(o) == assoc
    }
    in_dept0 = {
        int(s)
        for s, o in works_for.iter_rows()
        if int(o) == dept0 and int(s) in professors
    }
    assert counts[4] == len(in_dept0)


def test_golden_counts_seed0(counts):
    """Exact counts for (universities=1, seed=0) — regression lock.

    The table lives in :mod:`repro.bench.smoke` so this test and the
    ``smoke`` CLI gate can never drift apart. If the generator changes
    it must be re-derived; engine agreement (test_engine_agreement)
    distinguishes generator drift from engine bugs.
    """
    from repro.bench.smoke import GOLDEN_COUNTS_U1_SEED0

    assert counts == GOLDEN_COUNTS_U1_SEED0


def test_paper_cardinality_shapes(counts):
    """Relative shapes from the paper's Appendix B that survive scaling:
    Q14 is the largest result; Q8 next; point lookups are tiny."""
    assert counts[14] >= counts[8] >= counts[9]
    for small in (1, 3, 4):
        assert counts[small] < 20
