"""Every optimization configuration returns identical LUBM results.

Table I's ablations are only meaningful if toggling an optimization
never changes answers — this locks that invariant across all 2^5 flag
combinations on representative queries (the full 12-query sweep runs on
a subset of configs to keep the suite fast).
"""

from itertools import product

import pytest

from repro.core.config import OptimizationConfig
from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.lubm.queries import PAPER_QUERY_IDS

FLAG_NAMES = (
    "mixed_layouts",
    "reorder_selections",
    "ghd_selection_pushdown",
    "pipelining",
    "use_ghd",
)

ALL_CONFIGS = [
    OptimizationConfig(**dict(zip(FLAG_NAMES, flags)))
    for flags in product([False, True], repeat=len(FLAG_NAMES))
]

REPRESENTATIVE_QUERIES = (2, 4, 8, 14)  # cyclic, star, pipeline, scan


@pytest.mark.parametrize("query_id", REPRESENTATIVE_QUERIES)
def test_all_32_configs_agree(query_id, dataset, queries, emptyheaded):
    text = queries[query_id]
    reference = emptyheaded.execute_sparql(text).to_set()
    for config in ALL_CONFIGS:
        engine = EmptyHeadedEngine(dataset.store, config)
        assert engine.execute_sparql(text).to_set() == reference, config


SPOT_CONFIGS = [
    OptimizationConfig.all_on(),
    OptimizationConfig.all_off(),
    OptimizationConfig.baseline_with_ghd(),
    OptimizationConfig.all_on().but(pipelining=False),
]


@pytest.mark.parametrize("query_id", PAPER_QUERY_IDS)
def test_spot_configs_agree_on_all_queries(
    query_id, dataset, queries, emptyheaded
):
    text = queries[query_id]
    reference = emptyheaded.execute_sparql(text).to_set()
    for config in SPOT_CONFIGS:
        engine = EmptyHeadedEngine(dataset.store, config)
        assert engine.execute_sparql(text).to_set() == reference, config
