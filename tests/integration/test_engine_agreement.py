"""The five engines return identical results on every LUBM query.

This is the load-bearing correctness test of the reproduction: the
worst-case optimal engines (EmptyHeaded, LogicBlox-like) and the three
pairwise engines (MonetDB-, RDF-3X-, TripleBit-like) implement radically
different algorithms over different physical designs, so agreement on
all twelve queries over ~120k generated triples is strong evidence that
each one is correct.
"""

import pytest

from repro.lubm.queries import PAPER_QUERY_IDS


@pytest.mark.parametrize("query_id", PAPER_QUERY_IDS)
def test_all_engines_agree(query_id, all_engines, queries):
    text = queries[query_id]
    results = {
        name: engine.execute_sparql(text).to_set()
        for name, engine in all_engines.items()
    }
    reference = results["emptyheaded"]
    for name, rows in results.items():
        assert rows == reference, (
            f"engine {name} disagrees with emptyheaded on Q{query_id}: "
            f"{len(rows)} vs {len(reference)} rows"
        )


@pytest.mark.parametrize("query_id", PAPER_QUERY_IDS)
def test_result_schema_matches_projection(query_id, emptyheaded, queries):
    result = emptyheaded.execute_sparql(queries[query_id])
    assert all(not a.startswith("_") for a in result.attributes)
    # LUBM SELECT lists are uppercase single letters (X, Y, Z, Y1...).
    assert all(a[0].isupper() for a in result.attributes)


def test_decoded_results_are_lexical_terms(emptyheaded, queries):
    result = emptyheaded.execute_sparql(queries[5])
    decoded = emptyheaded.decode(result)
    assert decoded
    for (term,) in decoded:
        assert term.startswith("<http://")
