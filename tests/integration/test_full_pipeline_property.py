"""Property test of the whole stack: random conjunctive queries through
the planner and GHD executor, under every optimization configuration,
against the brute-force evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import OptimizationConfig
from repro.core.query import Atom, ConjunctiveQuery, Constant, Variable
from tests.util import brute_force, catalog_of, run_query

VARS = [Variable(n) for n in "wxyz"]

# Random join shapes over up to four binary relations.
SHAPES = [
    [("r", 0, 1), ("s", 1, 2)],
    [("r", 0, 1), ("s", 1, 2), ("t", 2, 0)],
    [("r", 0, 1), ("s", 0, 2), ("t", 0, 3)],
    [("r", 0, 1), ("s", 1, 2), ("t", 2, 3)],
    [("r", 0, 1), ("s", 1, 2), ("t", 2, 3), ("u", 3, 0)],
]

CONFIGS = [
    OptimizationConfig.all_on(),
    OptimizationConfig.all_off(),
    OptimizationConfig.baseline_with_ghd(),
]

rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=25
)


@given(
    shape=st.sampled_from(SHAPES),
    tables=st.lists(rows, min_size=4, max_size=4),
    selected_position=st.integers(0, 3),
    use_selection=st.booleans(),
    project_all=st.booleans(),
)
@settings(max_examples=40, deadline=None)
def test_planner_executor_matches_brute_force(
    shape, tables, selected_position, use_selection, project_all
):
    catalog = catalog_of(
        {
            name: tables[i]
            for i, (name, _, _) in enumerate(shape)
        }
    )
    atoms = []
    for i, (name, a, b) in enumerate(shape):
        terms = [VARS[a], VARS[b]]
        if use_selection and i == 0:
            terms[selected_position % 2] = Constant(3)
        atoms.append(Atom(name, tuple(terms)))
    body_vars = sorted(
        {t for atom in atoms for t in atom.variables},
        key=lambda v: v.name,
    )
    projection = tuple(body_vars) if project_all else tuple(body_vars[:1])
    query = ConjunctiveQuery(tuple(atoms), projection)

    expected = brute_force(catalog, query)
    for config in CONFIGS:
        assert run_query(catalog, query, config) == expected, config


@given(
    tables=st.lists(rows, min_size=3, max_size=3),
)
@settings(max_examples=25, deadline=None)
def test_triangle_all_configs(tables):
    catalog = catalog_of({"r": tables[0], "s": tables[1], "t": tables[2]})
    x, y, z = VARS[1], VARS[2], VARS[3]
    query = ConjunctiveQuery(
        (Atom("r", (x, y)), Atom("s", (y, z)), Atom("t", (x, z))),
        (x, y, z),
    )
    expected = brute_force(catalog, query)
    for config in CONFIGS:
        assert run_query(catalog, query, config) == expected
