"""Differential harness, sharded leg: every randomized query must
return *identical* rows (including canonical order) from a
:class:`~repro.distributed.engine.ShardedEngine` over subject-hash
partitioned stores (N=2 and N=3) and from the same inner engine over
the equivalent single store — the same generators, specs and SPARQL
surface as :mod:`tests.integration.test_differential_random`, so plan
diversity, UNION/OPTIONAL assembly, filters and slices all cross the
scatter-gather path. A second leg drives ``add_triples`` /
``remove_triples`` against *open* streaming cursors: the pinned
cross-shard epoch must keep serving the pre-update snapshot while
fresh executions see the mutated graph, row-for-row with the single
store.
"""

import random

import pytest

from repro.distributed import ShardedEngine, ShardedStore
from repro.engines import ALL_ENGINES
from repro.storage.vertical import vertically_partition

from tests.integration.test_differential_random import (
    _make_graph,
    _QueryGen,
)

SHARD_COUNTS = (2, 3)
QUERIES_PER_SEED = 6


def _single_engines(graph):
    store = vertically_partition(list(graph))
    return store, {cls.name: cls(store) for cls in ALL_ENGINES}


def _sharded_engines(graph):
    """One ShardedEngine per (shard count, inner engine name)."""
    stores = {
        count: ShardedStore.partition(list(graph), count)
        for count in SHARD_COUNTS
    }
    engines = {
        (count, cls.name): ShardedEngine(store, cls.name)
        for count, store in stores.items()
        for cls in ALL_ENGINES
    }
    return stores, engines


@pytest.mark.parametrize("seed", range(8))
def test_sharded_matches_single_store_on_random_queries(seed):
    rng = random.Random(7000 + seed)
    graph = _make_graph(rng)
    _, singles = _single_engines(graph)
    _, sharded = _sharded_engines(graph)
    gen = _QueryGen(rng, graph)
    for index in range(QUERIES_PER_SEED):
        spec = gen.spec()
        text = gen.text(spec)
        for name, engine in singles.items():
            expected = engine.decode(engine.execute_sparql(text))
            for count in SHARD_COUNTS:
                dist = sharded[(count, name)]
                rows = dist.decode(dist.execute_sparql(text))
                assert rows == expected, (
                    f"seed={seed} query#{index} engine={name} "
                    f"shards={count} query={text!r}: sharded returned "
                    f"{rows!r}, single store {expected!r}"
                )


@pytest.mark.parametrize("seed", range(4))
def test_sharded_open_cursors_pin_epoch_through_updates(seed):
    """Mid-stream updates: open sharded cursors keep the pinned epoch,
    fresh streamed executions see the new graph — both row-for-row
    with the single store applying the same batches."""
    from repro.service import QueryService

    rng = random.Random(8000 + seed)
    graph = list(_make_graph(rng))
    single_store, singles = _single_engines(graph)
    shard_stores, sharded = _sharded_engines(graph)
    services = {
        key: QueryService(engine) for key, engine in sharded.items()
    }
    single_services = {
        name: QueryService(engine) for name, engine in singles.items()
    }

    gen = _QueryGen(rng, graph)
    specs = [gen.spec() for _ in range(3)]
    for spec in specs:  # exact-comparison queries: no final slice
        spec["limit"] = None
        spec["offset"] = 0
    texts = [gen.text(spec) for spec in specs]
    subjects = sorted({s for s, _, _ in graph})
    predicates = sorted({p for _, p, _ in graph})

    for step, text in enumerate(texts):
        snapshots = {
            key: service.engine.decode(service.execute(text))
            for key, service in services.items()
        }
        cursors = {
            key: service.session().execute(
                text, page_size=2, stream=True
            )
            for key, service in services.items()
        }
        first = {key: cursor.fetch() for key, cursor in cursors.items()}

        additions = [
            (
                rng.choice(subjects),
                rng.choice(predicates),
                rng.choice(subjects),
            )
            for _ in range(rng.randint(1, 3))
        ]
        removals = [sorted(set(graph) | set(additions))[0]]
        added = single_store.add_triples(additions)
        removed = single_store.remove_triples(removals)
        for count, store in shard_stores.items():
            assert store.add_triples(additions) == added, (count, step)
            assert store.remove_triples(removals) == removed, (
                count,
                step,
            )
        graph = sorted((set(graph) | set(additions)) - set(removals))

        # Open cursors keep serving the pre-update cross-shard epoch.
        for key, cursor in cursors.items():
            rest = [] if first[key].done else cursor.fetch_all()
            rows = list(first[key].rows) + rest
            assert rows == snapshots[key], (
                f"seed={seed} step={step} engine={key}: open sharded "
                f"cursor returned {rows!r}, pre-update snapshot "
                f"{snapshots[key]!r}"
            )

        # Fresh streamed executions observe the new epoch and match
        # the single store exactly.
        for name, service in single_services.items():
            expected = (
                service.session().execute(text, stream=True).fetch_all()
            )
            for count in SHARD_COUNTS:
                rows = (
                    services[(count, name)]
                    .session()
                    .execute(text, stream=True)
                    .fetch_all()
                )
                assert rows == expected, (
                    f"seed={seed} step={step} engine={name} "
                    f"shards={count}: post-update stream returned "
                    f"{rows!r}, single store {expected!r}"
                )
