"""Trie construction: sorting, dedup, CSR structure."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.sets.base import SetLayout
from repro.storage.relation import Relation
from repro.trie.trie import Trie


def _trie(rows, attrs=("a", "b")):
    cols = (
        [np.array([r[i] for r in rows], dtype=np.uint32) for i in range(len(attrs))]
        if rows
        else [np.empty(0, dtype=np.uint32) for _ in attrs]
    )
    return Trie.build(cols, attrs)


def test_tuples_roundtrip_sorted():
    rows = [(3, 1), (1, 2), (1, 1), (2, 9)]
    t = _trie(rows)
    assert list(t.iter_tuples()) == sorted(rows)


def test_duplicates_removed():
    t = _trie([(1, 1), (1, 1), (2, 2)])
    assert t.num_tuples == 2
    assert list(t.iter_tuples()) == [(1, 1), (2, 2)]


def test_single_level_trie():
    t = Trie.build([np.array([3, 1, 3], dtype=np.uint32)], ("x",))
    assert t.num_levels == 1
    assert list(t.iter_tuples()) == [(1,), (3,)]


def test_three_level_trie():
    rows = [(1, 1, 1), (1, 1, 2), (1, 2, 1), (2, 1, 1)]
    cols = [np.array([r[i] for r in rows], dtype=np.uint32) for i in range(3)]
    t = Trie.build(cols, ("a", "b", "c"))
    assert t.num_levels == 3
    assert list(t.iter_tuples()) == rows


def test_empty_trie():
    t = _trie([])
    assert t.num_tuples == 0
    assert list(t.iter_tuples()) == []
    assert t.child_values(t.root).size == 0


def test_build_rejects_mismatched_columns():
    with pytest.raises(StorageError):
        Trie.build([np.array([1], dtype=np.uint32)], ("a", "b"))


def test_build_rejects_zero_attributes():
    with pytest.raises(StorageError):
        Trie.build([], ())


def test_build_rejects_ragged_columns():
    with pytest.raises(StorageError):
        Trie.build(
            [
                np.array([1, 2], dtype=np.uint32),
                np.array([1], dtype=np.uint32),
            ],
            ("a", "b"),
        )


def test_from_relation_permutes_columns():
    rel = Relation.from_rows("r", ("s", "o"), [(1, 10), (2, 20)])
    t = Trie.from_relation(rel, ("o", "s"))
    assert list(t.iter_tuples()) == [(10, 1), (20, 2)]
    assert t.attributes == ("o", "s")


def test_from_relation_rejects_non_permutation():
    rel = Relation.from_rows("r", ("s", "o"), [(1, 10)])
    with pytest.raises(StorageError):
        Trie.from_relation(rel, ("s", "x"))


def test_to_columns_expands_back():
    rows = [(1, 1), (1, 2), (3, 1), (3, 9), (3, 12)]
    t = _trie(rows)
    cols = t.to_columns()
    recovered = sorted(zip(*(c.tolist() for c in cols)))
    assert recovered == sorted(rows)


def test_forced_layout_propagates_to_sets():
    rows = [(1, i) for i in range(100)]
    dense = _trie(rows)
    # Dense child set: the optimizer would pick a bitset.
    assert dense.child_set(dense.descend(dense.root, 1)).layout is SetLayout.BITSET
    cols = [
        np.array([r[i] for r in rows], dtype=np.uint32) for i in range(2)
    ]
    forced = Trie.build(cols, ("a", "b"), force_layout=SetLayout.UINT_ARRAY)
    node = forced.descend(forced.root, 1)
    assert forced.child_set(node).layout is SetLayout.UINT_ARRAY


def test_memory_profile_reports_bytes():
    t = _trie([(1, 2), (3, 4)])
    profile = t.memory_profile()
    assert profile["total_bytes"] == (
        profile["values_bytes"] + profile["offsets_bytes"]
    )
    assert profile["values_bytes"] > 0
