"""Vectorized row-wise trie kernels used by the frontier executor."""

import numpy as np
import pytest

from repro.trie.trie import Trie


@pytest.fixture()
def trie():
    rows = [
        (1, 10), (1, 20),
        (2, 10),
        (4, 7), (4, 8), (4, 9),
        (5, 100),
    ]
    cols = [np.array([r[i] for r in rows], dtype=np.uint32) for i in range(2)]
    return Trie.build(cols, ("x", "y"))


def test_packed_level_zero_is_root_values(trie):
    packed = trie._packed_level(0)
    assert list(packed) == [1, 2, 4, 5]


def test_packed_level_one_sorted(trie):
    packed = trie._packed_level(1)
    assert list(packed) == sorted(packed)


def test_descend_rows_mixed_hits(trie):
    # Parents: positions of x values [1, 2, 4, 4] = [0, 1, 2, 2].
    parents = np.array([0, 1, 2, 2], dtype=np.int64)
    values = np.array([20, 10, 8, 99], dtype=np.uint32)
    found, child_pos = trie.descend_rows(0, parents, values)
    assert list(found) == [True, True, True, False]
    # Verify the found children point at the right level-1 values.
    level1 = trie.level_values(1)
    assert [int(level1[p]) for p, f in zip(child_pos, found) if f] == [
        20, 10, 8,
    ]


def test_descend_rows_root_level(trie):
    found, pos = trie.descend_rows(
        -1,
        np.zeros(3, dtype=np.int64),
        np.array([1, 3, 5], dtype=np.uint32),
    )
    assert list(found) == [True, False, True]


def test_probe_rows_constant(trie):
    parents = np.array([0, 1, 2], dtype=np.int64)  # x = 1, 2, 4
    found, _ = trie.probe_rows(0, parents, 10)
    assert list(found) == [True, True, False]


def test_child_counts(trie):
    parents = np.array([0, 1, 2, 3], dtype=np.int64)
    assert list(trie.child_counts(0, parents)) == [2, 1, 3, 1]


def test_expand_children(trie):
    parents = np.array([2, 0], dtype=np.int64)  # x = 4 then x = 1
    counts, values, positions = trie.expand_children(0, parents)
    assert list(counts) == [3, 2]
    assert list(values) == [7, 8, 9, 10, 20]
    level1 = trie.level_values(1)
    assert [int(level1[p]) for p in positions] == [7, 8, 9, 10, 20]


def test_root_positions(trie):
    values = np.array([2, 5], dtype=np.uint32)
    assert list(trie.root_positions(values)) == [1, 3]


def test_three_level_descend_rows():
    rows = [(1, 1, 5), (1, 2, 6), (2, 1, 7)]
    cols = [np.array([r[i] for r in rows], dtype=np.uint32) for i in range(3)]
    t = Trie.build(cols, ("a", "b", "c"))
    # Descend a=1 (pos 0), then b=2: level-1 position should be 1.
    found, pos = t.descend_rows(
        0, np.array([0], dtype=np.int64), np.array([2], dtype=np.uint32)
    )
    assert found[0]
    # Now c under (1, 2) must be [6].
    counts, values, _ = t.expand_children(1, pos)
    assert list(values) == [6]
