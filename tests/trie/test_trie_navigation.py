"""Trie navigation: descend, child sets, prefix membership."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.trie.trie import Trie


@pytest.fixture()
def trie():
    rows = [(1, 10), (1, 20), (2, 10), (4, 7), (4, 8), (4, 9)]
    cols = [np.array([r[i] for r in rows], dtype=np.uint32) for i in range(2)]
    return Trie.build(cols, ("x", "y"))


def test_root_children(trie):
    assert list(trie.child_values(trie.root)) == [1, 2, 4]


def test_descend_exists(trie):
    node = trie.descend(trie.root, 4)
    assert node is not None
    assert list(trie.child_values(node)) == [7, 8, 9]


def test_descend_missing_returns_none(trie):
    assert trie.descend(trie.root, 3) is None


def test_descend_on_leaf_raises(trie):
    node = trie.descend(trie.root, 1)
    leaf = trie.descend(node, 10)
    with pytest.raises(StorageError):
        trie.child_values(leaf)


def test_child_set_cached(trie):
    a = trie.child_set(trie.root)
    b = trie.child_set(trie.root)
    assert a is b


def test_descend_many_filters_missing(trie):
    values = np.array([1, 3, 4], dtype=np.uint32)
    found, idx = trie.descend_many(trie.root, values)
    assert list(found) == [1, 4]
    assert len(idx) == 2


def test_contains_prefix(trie):
    assert trie.contains_prefix([1])
    assert trie.contains_prefix([1, 20])
    assert not trie.contains_prefix([1, 30])
    assert not trie.contains_prefix([9])
    assert trie.contains_prefix([])  # empty prefix always present
