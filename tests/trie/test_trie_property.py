"""Property-based trie tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sets.base import SetLayout
from repro.trie.trie import Trie

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 30), st.integers(0, 30), st.integers(0, 30)
    ),
    max_size=120,
)


def _build(rows, arity, force_layout=None):
    trimmed = [r[:arity] for r in rows]
    cols = [
        np.array([r[i] for r in trimmed], dtype=np.uint32)
        for i in range(arity)
    ]
    attrs = tuple(f"a{i}" for i in range(arity))
    return Trie.build(cols, attrs, force_layout=force_layout), trimmed


@given(rows_strategy, st.integers(1, 3))
def test_roundtrip_is_sorted_distinct(rows, arity):
    trie, trimmed = _build(rows, arity)
    assert list(trie.iter_tuples()) == sorted(set(trimmed))
    assert trie.num_tuples == len(set(trimmed))


@given(rows_strategy, st.integers(2, 3))
@settings(max_examples=50)
def test_to_columns_roundtrip(rows, arity):
    trie, trimmed = _build(rows, arity)
    cols = trie.to_columns()
    recovered = list(zip(*(c.tolist() for c in cols))) if trie.num_tuples else []
    assert recovered == sorted(set(trimmed))


@given(rows_strategy)
@settings(max_examples=50)
def test_contains_prefix_matches_data(rows):
    trie, trimmed = _build(rows, 2)
    tuples = set(trimmed)
    prefixes = {(a,) for a, _ in tuples}
    for a in range(0, 31, 7):
        assert trie.contains_prefix([a]) == ((a,) in prefixes)
    for t in list(tuples)[:10]:
        assert trie.contains_prefix(t)


@given(rows_strategy)
@settings(max_examples=30)
def test_layouts_do_not_change_content(rows):
    t1, trimmed = _build(rows, 2, force_layout=SetLayout.UINT_ARRAY)
    t2, _ = _build(rows, 2, force_layout=SetLayout.BITSET)
    assert list(t1.iter_tuples()) == list(t2.iter_tuples())


@given(rows_strategy)
@settings(max_examples=30)
def test_descend_rows_agrees_with_descend(rows):
    trie, trimmed = _build(rows, 2)
    if trie.num_tuples == 0:
        return
    roots = trie.child_values(trie.root)
    parents = trie.root_positions(roots)
    probe = np.full(len(parents), 7, dtype=np.uint32)
    found, _ = trie.descend_rows(0, parents, probe)
    for value, hit in zip(roots, found):
        node = trie.descend(trie.root, int(value))
        expected = trie.descend(node, 7) is not None
        assert bool(hit) == expected
