"""Trie.apply_delta: patched tries must equal from-scratch rebuilds."""

import random

import numpy as np
import pytest

from repro.sets.base import SetLayout
from repro.trie.trie import Trie


def _columns(rows: list[tuple[int, ...]], arity: int) -> list[np.ndarray]:
    if not rows:
        return [np.empty(0, dtype=np.uint32) for _ in range(arity)]
    return [
        np.array([row[i] for row in rows], dtype=np.uint32)
        for i in range(arity)
    ]


@pytest.mark.parametrize("arity", [1, 2, 3])
@pytest.mark.parametrize("seed", range(4))
def test_apply_delta_equals_rebuild(arity, seed):
    rng = random.Random(100 * arity + seed)
    # Values above 2**16 exercise multi-byte key packing (the void-row
    # path for arity 3 must stay lexicographic across byte boundaries).
    rows = sorted(
        {
            tuple(rng.randrange(1 << 18) for _ in range(arity))
            for _ in range(rng.randint(0, 200))
        }
    )
    trie = Trie.build(_columns(rows, arity), [f"a{i}" for i in range(arity)])
    added = {
        tuple(rng.randrange(1 << 18) for _ in range(arity))
        for _ in range(rng.randint(0, 30))
    } | set(rng.sample(rows, min(len(rows), 3)))  # some already present
    removed = set(rng.sample(rows, min(len(rows), rng.randint(0, 20)))) | {
        tuple(rng.randrange(1 << 18) for _ in range(arity))  # absent rows
    }
    patched = trie.apply_delta(
        _columns(sorted(added), arity), _columns(sorted(removed), arity)
    )
    expected = sorted((set(rows) - removed) | added)
    assert list(patched.iter_tuples()) == expected
    assert patched.num_tuples == len(expected)
    # The original is untouched (concurrent probes keep a consistent index).
    assert list(trie.iter_tuples()) == rows


def test_apply_delta_none_and_empty_are_noops():
    rows = [(1, 2), (3, 4), (3, 7)]
    trie = Trie.build(_columns(rows, 2), ["a", "b"])
    empty = _columns([], 2)
    assert list(trie.apply_delta(None, None).iter_tuples()) == rows
    assert list(trie.apply_delta(empty, empty).iter_tuples()) == rows


def test_apply_delta_can_empty_and_refill():
    rows = [(1, 2), (3, 4)]
    trie = Trie.build(_columns(rows, 2), ["a", "b"])
    emptied = trie.apply_delta(None, _columns(rows, 2))
    assert emptied.num_tuples == 0
    refilled = emptied.apply_delta(_columns([(9, 9)], 2), None)
    assert list(refilled.iter_tuples()) == [(9, 9)]


def test_apply_delta_preserves_forced_layout():
    rows = [(i, i + 1) for i in range(50)]
    trie = Trie.build(
        _columns(rows, 2), ["a", "b"], force_layout=SetLayout.BITSET
    )
    patched = trie.apply_delta(_columns([(200, 1)], 2), None)
    assert patched._force_layout is SetLayout.BITSET
    assert patched.child_set(patched.root).layout is SetLayout.BITSET


def test_from_sorted_distinct_matches_build():
    rows = sorted({(i % 7, i % 5, i % 3) for i in range(60)})
    cols = _columns(rows, 3)
    built = Trie.build(cols, ["a", "b", "c"])
    direct = Trie.from_sorted_distinct(cols, ["a", "b", "c"])
    assert list(built.iter_tuples()) == list(direct.iter_tuples())
    assert built.num_tuples == direct.num_tuples
