"""Figure 1 of the paper: vertically partitioned relation -> dictionary
encoding -> trie.

The paper's example: a ``subOrganizationOf`` predicate relation

    subject       object
    University0   Department0
    University0   Department1
    Department0   Department1
    University1   Department1

dictionary-encodes to keys (first-seen order) University0=0,
Department0=1, Department1=2, University1=3 and groups into a two-level
trie: {0 -> {1, 2}, 1 -> {2}, 3 -> {2}}.
"""

from repro.storage.vertical import vertically_partition
from repro.trie.trie import Trie

FIGURE1_TRIPLES = [
    ("University0", "subOrganizationOf", "Department0"),
    ("University0", "subOrganizationOf", "Department1"),
    ("Department0", "subOrganizationOf", "Department1"),
    ("University1", "subOrganizationOf", "Department1"),
]


def test_figure1_transformation():
    store = vertically_partition(FIGURE1_TRIPLES)
    relation = store.tables["subOrganizationOf"]
    assert relation.attributes == ("subject", "object")
    assert relation.num_rows == 4

    dictionary = store.dictionary
    assert dictionary.encode("University0") == 0
    assert dictionary.encode("Department0") == 1
    assert dictionary.encode("Department1") == 2
    assert dictionary.encode("University1") == 3

    trie = Trie.from_relation(relation, ("subject", "object"))
    assert list(trie.child_values(trie.root)) == [0, 1, 3]

    uni0 = trie.descend(trie.root, 0)
    assert list(trie.child_values(uni0)) == [1, 2]
    dept0 = trie.descend(trie.root, 1)
    assert list(trie.child_values(dept0)) == [2]
    uni1 = trie.descend(trie.root, 3)
    assert list(trie.child_values(uni1)) == [2]


def test_figure1_decodes_back():
    store = vertically_partition(FIGURE1_TRIPLES)
    relation = store.tables["subOrganizationOf"]
    decoded = {
        (store.dictionary.decode(s), store.dictionary.decode(o))
        for s, o in relation.iter_rows()
    }
    assert decoded == {(s, o) for s, _, o in FIGURE1_TRIPLES}
