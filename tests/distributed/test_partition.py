"""Subject-hash routing and the load/update pre-encode order."""

from repro.distributed.partition import (
    pre_encode_add,
    pre_encode_load,
    route_triples,
    shard_of,
    subject_hash,
)
from repro.storage.dictionary import Dictionary
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _graph(n=40):
    return [
        (
            f"<{EX}s{i % 11}>",
            f"<{EX}p{i % 3}>",
            f"<{EX}o{i % 7}>" if i % 2 else f'"lit{i}"',
        )
        for i in range(n)
    ]


def test_subject_hash_is_stable_fnv1a():
    # Pinned FNV-1a 64-bit values: the partitioning must never drift
    # across processes or releases (Python's own hash() is salted).
    assert subject_hash("a") == 0xAF63DC4C8601EC8C
    assert subject_hash("") == 0xCBF29CE484222325
    assert subject_hash("a") != subject_hash("b")


def test_shard_of_is_in_range_and_deterministic():
    for subject in {s for s, _, _ in _graph()}:
        index = shard_of(subject, 3)
        assert 0 <= index < 3
        assert shard_of(subject, 3) == index
    assert shard_of("anything", 1) == 0


def test_route_triples_keeps_subjects_whole():
    graph = _graph()
    buckets = route_triples(graph, 3)
    assert sum(len(b) for b in buckets) == len(graph)
    owner: dict[str, int] = {}
    for index, bucket in enumerate(buckets):
        for s, _, _ in bucket:
            assert owner.setdefault(s, index) == index
    # Routing preserves the within-bucket stream order.
    for index, bucket in enumerate(buckets):
        assert bucket == [
            t for t in graph if shard_of(t[0], 3) == index
        ]


def test_pre_encode_load_matches_single_store_dictionary():
    graph = _graph()
    single = vertically_partition(list(graph))
    dictionary = Dictionary()
    pre_encode_load(dictionary, list(graph))
    assert list(dictionary.items()) == list(single.dictionary.items())


def test_pre_encode_add_matches_single_store_update_order():
    graph = _graph()
    single = vertically_partition(list(graph))
    dictionary = Dictionary()
    pre_encode_load(dictionary, list(graph))

    batch = [
        (f"<{EX}new0>", f"<{EX}freshPred>", f"<{EX}new1>"),
        (f"<{EX}s1>", f"<{EX}p0>", '"added"'),
        (f"<{EX}new2>", f"<{EX}freshPred>", f"<{EX}new0>"),
    ]
    known = frozenset(single.tables)
    single.add_triples(list(batch))
    pre_encode_add(dictionary, list(batch), known)
    assert list(dictionary.items()) == list(single.dictionary.items())


def test_pre_encode_add_skips_predicates_for_known_tables():
    """Two IRIs sharing a local name: when the table already exists the
    single store never encodes the second IRI — the pre-encode must
    reproduce that exactly (known_tables is the cross-shard union)."""
    graph = [(f"<{EX}s0>", f"<{EX}a/knows>", f"<{EX}s1>")]
    single = vertically_partition(list(graph))
    dictionary = Dictionary()
    pre_encode_load(dictionary, list(graph))

    batch = [(f"<{EX}s2>", f"<{EX}b/knows>", f"<{EX}s0>")]
    known = frozenset(single.tables)
    single.add_triples(list(batch))
    pre_encode_add(dictionary, list(batch), known)
    assert list(dictionary.items()) == list(single.dictionary.items())
