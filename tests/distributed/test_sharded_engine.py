"""ShardedEngine over LocalShardTransport: parity, explain, streaming."""

import pytest

from repro.distributed import ShardedEngine, ShardedStore
from repro.engines import ALL_ENGINES
from repro.errors import ConfigError
from repro.service import QueryService
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _graph():
    triples = []
    for i in range(30):
        s = f"<{EX}s{i}>"
        triples.append((s, f"<{EX}advisor>", f"<{EX}s{(i * 7) % 30}>"))
        if i % 2 == 0:
            triples.append((s, f"<{EX}memberOf>", f"<{EX}org{i % 4}>"))
        if i % 5 == 0:
            triples.append((s, f"<{EX}rank>", f'"{i % 6}"'))
    for j in range(4):
        triples.append(
            (f"<{EX}org{j}>", f"<{EX}worksFor>", f"<{EX}dept{j % 2}>")
        )
    return sorted(set(triples))


QUERIES = [
    f"SELECT ?x ?y WHERE {{ ?x <{EX}advisor> ?y }}",
    f"SELECT ?x ?y WHERE {{ ?x <{EX}advisor> ?y . "
    f"?x <{EX}memberOf> <{EX}org0> }}",
    f"SELECT ?x ?z WHERE {{ ?x <{EX}memberOf> ?y . "
    f"?y <{EX}worksFor> ?z }}",
    f"SELECT ?y WHERE {{ <{EX}s3> <{EX}advisor> ?y }}",
    f"SELECT ?x ?y ?z WHERE {{ ?x <{EX}advisor> ?y . "
    f"?x <{EX}memberOf> ?z }} ORDER BY ?y LIMIT 7 OFFSET 1",
    f"SELECT ?x WHERE {{ {{ ?x <{EX}rank> ?r }} UNION "
    f"{{ ?x <{EX}memberOf> <{EX}org1> }} }}",
    f"SELECT ?x ?r WHERE {{ ?x <{EX}memberOf> ?m . "
    f"OPTIONAL {{ ?x <{EX}rank> ?r }} }}",
]


@pytest.fixture(scope="module")
def stores():
    graph = _graph()
    return vertically_partition(list(graph)), ShardedStore.partition(
        list(graph), 3
    )


def test_requires_a_sharded_store():
    single = vertically_partition(_graph())
    with pytest.raises(ConfigError):
        ShardedEngine(single)


@pytest.mark.parametrize("engine_cls", ALL_ENGINES)
def test_rows_match_single_store_engine(stores, engine_cls):
    single_store, sharded_store = stores
    single = engine_cls(single_store)
    sharded = ShardedEngine(sharded_store, engine_cls.name)
    for text in QUERIES:
        expected = single.decode(single.execute_sparql(text))
        rows = sharded.decode(sharded.execute_sparql(text))
        assert rows == expected, (engine_cls.name, text)


def test_explain_reports_the_fragment_plan(stores):
    _, sharded_store = stores
    engine = ShardedEngine(sharded_store)
    explain = engine.explain_sparql(QUERIES[2])
    assert "scatter-gather plan" in explain
    assert "3 shard(s)" in explain
    assert "fragment 0" in explain
    union_explain = engine.explain_sparql(QUERIES[5])
    assert "union of 2 block(s)" in union_explain
    missing = engine.explain_sparql(
        f"SELECT ?x WHERE {{ ?x <{EX}advisor> <{EX}absent> }}"
    )
    assert "empty result" in missing


def test_streaming_pages_match_materialized(stores):
    single_store, sharded_store = stores
    single = QueryService(ALL_ENGINES[0](single_store))
    service = QueryService(ShardedEngine(sharded_store))
    for text in QUERIES[:3]:
        expected = single.engine.decode(single.execute(text))
        cursor = service.session().execute(
            text, page_size=3, stream=True
        )
        rows = []
        while True:
            page = cursor.fetch()
            rows.extend(page.rows)
            if page.done:
                break
        assert rows == expected, text


def test_queries_over_absent_predicates_are_empty(stores):
    _, sharded_store = stores
    engine = ShardedEngine(sharded_store)
    result = engine.execute_sparql(
        f"SELECT ?x WHERE {{ ?x <{EX}noSuchPred> ?y }}"
    )
    assert result.num_rows == 0


def test_service_surface_over_sharded_store(stores):
    _, sharded_store = stores
    service = QueryService(ShardedEngine(sharded_store))
    session = service.session()
    stats = session.stats()
    assert stats["triples"] == sharded_store.num_triples
    assert stats["tables"] == len(sharded_store.tables)
    assert stats["engine"] == "sharded"
    explain = session.explain(QUERIES[1])
    assert "partitioned" in explain
