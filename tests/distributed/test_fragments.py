"""Fragment compilation: grouping, dispositions, pushdown, explain."""

import pytest

from repro.distributed import ShardedEngine, ShardedStore
from repro.distributed.fragments import (
    BROADCAST,
    GATHER,
    PARTITIONED,
    TARGETED,
)

EX = "http://ex/"


def _graph():
    triples = []
    for i in range(24):
        s = f"<{EX}s{i}>"
        triples.append((s, f"<{EX}advisor>", f"<{EX}s{(i * 7) % 24}>"))
        if i % 2 == 0:
            triples.append((s, f"<{EX}memberOf>", f"<{EX}org{i % 3}>"))
    for j in range(3):
        triples.append(
            (f"<{EX}org{j}>", f"<{EX}worksFor>", f"<{EX}dept{j % 2}>")
        )
    return sorted(set(triples))


@pytest.fixture()
def engine():
    store = ShardedStore.partition(_graph(), 3)
    return ShardedEngine(store)


def _plan(engine, text, **overrides):
    if overrides:
        engine = ShardedEngine(
            engine.store, engine.engine_name, **overrides
        )
    query = engine.prepare_sparql(text)
    bound = engine.bind(query)
    assert bound is not None, text
    inner, _ = engine.split_modifiers(bound)
    return engine.plan_for(inner)


def test_single_subject_group_compiles_to_one_partitioned_fragment(
    engine,
):
    plan = _plan(
        engine,
        f"SELECT ?x ?y WHERE {{ ?x <{EX}advisor> ?y . "
        f"?x <{EX}memberOf> <{EX}org0> }}",
    )
    assert plan.single
    assert len(plan.fragments) == 1
    assert plan.fragments[0].disposition == PARTITIONED
    assert plan.shard_count == 3
    assert plan.probes == ()
    assert "partitioned" in plan.explain()
    assert "concat + distinct" in plan.explain()


def test_limit_pushdown_on_single_fragment_plans(engine):
    plan = _plan(
        engine,
        f"SELECT ?y WHERE {{ ?x <{EX}advisor> ?y }} LIMIT 5 OFFSET 2",
    )
    assert plan.single
    fragment = plan.fragments[0].query
    # Per-shard LIMIT offset+limit, OFFSET applied at the coordinator:
    # the global top-k is a subset of the union of per-shard top-ks.
    assert fragment.limit == 7
    assert fragment.offset == 0


def test_constant_subject_targets_one_shard(engine):
    plan = _plan(
        engine, f"SELECT ?y WHERE {{ <{EX}s3> <{EX}advisor> ?y }}"
    )
    fragment = plan.fragments[0]
    assert fragment.disposition == TARGETED
    assert fragment.targeted
    assert "targeted" in plan.explain()


def test_multi_group_plans_anchor_and_broadcast_by_estimate(engine):
    text = (
        f"SELECT ?x ?z WHERE {{ ?x <{EX}memberOf> ?y . "
        f"?y <{EX}worksFor> ?z }}"
    )
    plan = _plan(engine, text)
    assert not plan.single
    assert len(plan.fragments) == 2
    dispositions = {f.disposition for f in plan.fragments}
    # The bigger (memberOf) group anchors as partitioned; the tiny
    # worksFor group fits under the default broadcast threshold.
    assert dispositions == {PARTITIONED, BROADCAST}
    explain = plan.explain()
    assert "scatter-gather plan" in explain
    assert "natural join" in explain

    # Threshold 0 forces the small group to gather instead.
    gathered = _plan(engine, text, broadcast_rows=0)
    assert {f.disposition for f in gathered.fragments} == {
        PARTITIONED,
        GATHER,
    }


def test_variable_free_group_becomes_membership_probe(engine):
    plan = _plan(
        engine,
        f"SELECT ?x ?y WHERE {{ ?x <{EX}advisor> ?y . "
        f"<{EX}org0> <{EX}worksFor> <{EX}dept0> }}",
    )
    assert len(plan.probes) == 1
    assert len(plan.fragments) == 1
    assert plan.fragments[0].disposition == PARTITIONED


def test_fragment_queries_project_join_and_output_vars(engine):
    plan = _plan(
        engine,
        f"SELECT ?x WHERE {{ ?x <{EX}memberOf> ?y . "
        f"?y <{EX}worksFor> ?z }}",
    )
    by_subject = {
        fragment.subject.name: fragment for fragment in plan.fragments
    }
    x_names = [v.name for v in by_subject["x"].query.projection]
    y_names = [v.name for v in by_subject["y"].query.projection]
    assert "x" in x_names and "y" in x_names  # output + join var
    assert "y" in y_names  # join var kept; ?z existential-or-kept
