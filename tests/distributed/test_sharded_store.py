"""ShardedStore: dictionary identity, facade parity, unified epoch."""

import threading

import pytest

from repro.distributed.store import EpochLock, ShardedStore
from repro.errors import ConfigError
from repro.storage.dictionary import Dictionary
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def _graph(n=60):
    return [
        (
            f"<{EX}s{i % 13}>",
            f"<{EX}p{i % 4}>",
            f"<{EX}o{i % 6}>" if i % 3 else f'"lit{i}"',
        )
        for i in range(n)
    ]


def _rows(relation):
    return sorted(relation.iter_rows())


@pytest.fixture()
def pair():
    graph = _graph()
    return (
        vertically_partition(list(graph)),
        ShardedStore.partition(list(graph), 3),
    )


def test_partition_requires_positive_shard_count():
    with pytest.raises(ConfigError):
        ShardedStore.partition(_graph(), 0)


def test_shards_must_share_the_dictionary():
    single = vertically_partition(_graph())
    with pytest.raises(ConfigError):
        ShardedStore([single], Dictionary())
    with pytest.raises(ConfigError):
        ShardedStore([], Dictionary())


def test_dictionary_identical_to_single_store(pair):
    single, sharded = pair
    assert list(sharded.dictionary.items()) == list(
        single.dictionary.items()
    )


def test_facade_parity_with_single_store(pair):
    single, sharded = pair
    assert sharded.num_triples == single.num_triples
    assert sharded.table_names() == single.table_names()
    assert sharded.predicate_iris == single.predicate_iris
    for name, table in single.tables.items():
        assert _rows(sharded.tables[name]) == _rows(table), name


def test_column_sketches_merge_is_exact(pair):
    single, sharded = pair
    mine = sharded.column_sketches()
    theirs = single.column_sketches()
    assert set(mine) == set(theirs)
    for table in theirs:
        for attr in theirs[table]:
            combined = mine[table][attr]
            reference = theirs[table][attr]
            assert combined.total == reference.total, (table, attr)


def test_update_routing_matches_single_store(pair):
    single, sharded = pair
    add = [
        (f"<{EX}s1>", f"<{EX}p0>", '"fresh"'),
        (f"<{EX}ghost>", f"<{EX}brandNew>", f"<{EX}s2>"),
        (f"<{EX}s5>", f"<{EX}brandNew>", f"<{EX}ghost>"),
    ]
    remove = [add[0], _graph()[0]]
    assert sharded.add_triples(add) == single.add_triples(add)
    assert list(sharded.dictionary.items()) == list(
        single.dictionary.items()
    )
    assert sharded.remove_triples(remove) == single.remove_triples(remove)
    assert sharded.num_triples == single.num_triples
    for name, table in single.tables.items():
        assert _rows(sharded.tables[name]) == _rows(table), name


def test_noop_batches_do_not_bump_the_epoch(pair):
    _, sharded = pair
    before = sharded.data_version
    assert sharded.add_triples([_graph()[0]]) == 0  # already present
    assert sharded.remove_triples(
        [(f"<{EX}nope>", f"<{EX}p0>", f"<{EX}nada>")]
    ) == 0
    assert sharded.add_triples([]) == 0
    assert sharded.data_version == before


def test_update_hooks_fire_with_union_known_tables(pair):
    _, sharded = pair
    seen = []
    hook = seen.append
    sharded.add_update_hook(hook)
    known_before = frozenset(sharded.table_names())
    batch = [(f"<{EX}hooked>", f"<{EX}hookPred>", f"<{EX}s0>")]
    sharded.add_triples(batch)
    assert len(seen) == 1
    add, remove, known = seen[0]
    assert add == tuple(batch) and remove == ()
    assert known == known_before  # captured *before* the batch applied
    sharded.remove_update_hook(hook)
    sharded.remove_triples(batch)
    assert len(seen) == 1


def test_epoch_write_excludes_readers():
    lock = EpochLock()
    order: list[str] = []
    ready = threading.Event()
    release = threading.Event()

    def reader():
        with lock.read():
            order.append("read-start")
            ready.set()
            release.wait(timeout=10)
            order.append("read-end")

    thread = threading.Thread(target=reader)
    thread.start()
    assert ready.wait(timeout=10)

    def writer():
        with lock.write():
            order.append("write")

    wthread = threading.Thread(target=writer)
    wthread.start()
    # The writer must queue behind the open reader.
    wthread.join(timeout=0.3)
    assert wthread.is_alive()
    release.set()
    wthread.join(timeout=10)
    thread.join(timeout=10)
    assert order == ["read-start", "read-end", "write"]


def test_coordinator_membership_probes(pair):
    single, sharded = pair
    s, p, o = _graph()[0]
    s_key = sharded.dictionary.encode(s)
    p_key = sharded.dictionary.encode(p)
    o_key = sharded.dictionary.encode(o)
    with sharded.read_epoch():
        name = p.strip("<>").rsplit("/", 1)[-1]
        assert sharded.contains_pair_locked(name, s_key, o_key)
        assert not sharded.contains_pair_locked(name, o_key, s_key) or (
            (o, p, s) in _graph()
        )
        assert sharded.contains_triple_locked(s_key, p_key, o_key)
