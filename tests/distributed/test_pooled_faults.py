"""PooledShardTransport fault injection: real ``kill -9`` on real
worker processes mid-scatter. The unified read epoch plus the pool's
crash-retry must yield exactly one of two outcomes — the full, correct
merged rows (retried on a respawned/sibling worker) or a *typed*
``worker_crash`` / ``capacity`` / ``timeout`` error. A torn partial
merge (wrong rows, no error) is never acceptable.
"""

import os
import signal
import threading
import time

import pytest

from repro.distributed import (
    PooledShardTransport,
    ShardedEngine,
    ShardedStore,
)
from repro.engines import ENGINE_NAMES
from repro.errors import (
    CapacityError,
    ClusterError,
    QueryTimeoutError,
    WorkerCrashError,
)
from repro.service.cluster.shm import shm_supported
from repro.storage.vertical import vertically_partition

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="shared memory unavailable in this sandbox"
)

EX = "http://ex/"
PREFIX = "repro-shardfault"

QUERY = (
    f"SELECT ?x ?y WHERE {{ ?x <{EX}advisor> ?y . "
    f"?x <{EX}memberOf> <{EX}org0> }}"
)


def _graph():
    triples = []
    for i in range(40):
        s = f"<{EX}s{i}>"
        triples.append((s, f"<{EX}advisor>", f"<{EX}s{(i * 7) % 40}>"))
        if i % 2 == 0:
            triples.append((s, f"<{EX}memberOf>", f"<{EX}org{i % 3}>"))
    return sorted(set(triples))


def _wait_for(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def _expected_rows():
    store = vertically_partition(_graph())
    engine = ENGINE_NAMES["emptyheaded"](store)
    return engine.decode(engine.execute_sparql(QUERY))


@pytest.fixture()
def rig():
    store = ShardedStore.partition(_graph(), 2)
    transport = PooledShardTransport(
        store,
        workers_per_shard=2,
        prefix=PREFIX,
        allow_test_hooks=True,
    )
    engine = ShardedEngine(store, transport=transport)
    try:
        yield store, transport, engine
    finally:
        transport.close()


def test_pooled_rows_match_in_process(rig):
    _, transport, engine = rig
    assert engine.decode(engine.execute_sparql(QUERY)) == _expected_rows()
    stats = transport.stats()
    assert stats["shards"] == 2
    assert len(stats["pools"]) == 2


def test_updates_replicate_to_every_shard_worker(rig):
    store, _, engine = rig
    probe = f"SELECT ?o WHERE {{ <{EX}ghost> <{EX}advisor> ?o }}"
    assert engine.execute_sparql(probe).num_rows == 0
    store.add_triples([(f"<{EX}ghost>", f"<{EX}advisor>", f"<{EX}s1>")])
    # More requests than workers per shard: every replica must answer.
    for _ in range(5):
        assert engine.decode(engine.execute_sparql(probe)) == [
            (f"<{EX}s1>",)
        ]
    store.remove_triples(
        [(f"<{EX}ghost>", f"<{EX}advisor>", f"<{EX}s1>")]
    )
    for _ in range(5):
        assert engine.execute_sparql(probe).num_rows == 0


def test_kill9_mid_scatter_retries_never_tears_the_merge(rig):
    _, transport, engine = rig
    transport.test_delay_s = 1.2
    outcome: dict = {}

    def run():
        try:
            outcome["rows"] = engine.decode(engine.execute_sparql(QUERY))
        except (
            WorkerCrashError,
            CapacityError,
            QueryTimeoutError,
        ) as exc:
            outcome["error"] = exc
        except ClusterError as exc:
            outcome["error"] = exc

    thread = threading.Thread(target=run)
    thread.start()
    # Wait until the scatter is in flight (a worker checked out), then
    # kill one busy worker on each pool's shard.
    def busy_pids():
        pids = []
        for pool in transport.pools:
            with pool._update_lock:
                handles = list(pool._handles.values())
            free = {h.worker_id for h in list(pool._free.queue)}
            pids.extend(
                h.pid for h in handles if h.worker_id not in free
            )
        return pids

    assert _wait_for(lambda: len(busy_pids()) >= 1, timeout_s=10)
    os.kill(busy_pids()[0], signal.SIGKILL)
    thread.join(timeout=60)
    assert not thread.is_alive()

    if "rows" in outcome:
        # Retried on a sibling/respawned worker: complete, correct rows.
        assert outcome["rows"] == _expected_rows()
    else:
        # Or a typed taxonomy error — never a torn partial merge.
        assert isinstance(
            outcome["error"],
            (WorkerCrashError, CapacityError, QueryTimeoutError,
             ClusterError),
        )
    assert any(
        pool.retries >= 1 or pool.respawns >= 1
        for pool in transport.pools
    )


def test_fleet_heals_and_serves_after_kill(rig):
    _, transport, engine = rig
    victim_pool = transport.pools[0]
    victim = next(iter(victim_pool._handles.values()))
    os.kill(victim.pid, signal.SIGKILL)
    assert _wait_for(
        lambda: victim_pool.respawns >= 1
        and victim_pool.worker_count() == 2
    )
    for _ in range(4):
        assert (
            engine.decode(engine.execute_sparql(QUERY))
            == _expected_rows()
        )


def test_wedged_worker_surfaces_typed_timeout():
    store = ShardedStore.partition(_graph(), 2)
    transport = PooledShardTransport(
        store,
        workers_per_shard=1,
        prefix=f"{PREFIX}-to",
        request_timeout_s=0.3,
        allow_test_hooks=True,
    )
    engine = ShardedEngine(store, transport=transport)
    try:
        transport.test_delay_s = 2.0
        with pytest.raises(
            (QueryTimeoutError, WorkerCrashError, ClusterError)
        ):
            engine.execute_sparql(QUERY)
    finally:
        transport.close()
