"""Lock-discipline checker: guarded/unguarded mixes, helper inference,
and lock-order cycles — on known-bad and known-clean snippets."""

from repro.analysis.core import run_analysis
from repro.analysis.lock_discipline import LockDisciplineChecker


def _analyze(tmp_path, source):
    path = tmp_path / "service" / "mod.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    findings, _ = run_analysis(
        [tmp_path], checkers=[LockDisciplineChecker()], root=tmp_path
    )
    return findings


def _lines(source, fragment):
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), 1)
        if fragment in line
    ]


MIXED = (
    "import threading\n"
    "\n"
    "\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._entries = {}\n"
    "\n"
    "    def put(self, key, value):\n"
    "        with self._lock:\n"
    "            self._entries.update({key: value})\n"
    "\n"
    "    def drop(self, key):\n"
    "        self._entries.pop(key, None)\n"
)


def test_unguarded_mutation_is_flagged(tmp_path):
    findings = _analyze(tmp_path, MIXED)
    assert [f.checker for f in findings] == ["lock-discipline"]
    finding = findings[0]
    assert finding.line == _lines(MIXED, "self._entries.pop")[0]
    assert finding.symbol == "Cache.drop"
    assert "_entries" in finding.message
    assert "without a lock" in finding.message


CLEAN = (
    "import threading\n"
    "\n"
    "\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._entries = {}\n"
    "\n"
    "    def put(self, key, value):\n"
    "        with self._lock:\n"
    "            self._entries.update({key: value})\n"
    "\n"
    "    def drop(self, key):\n"
    "        with self._lock:\n"
    "            self._entries.pop(key, None)\n"
)


def test_consistently_guarded_class_is_clean(tmp_path):
    assert _analyze(tmp_path, CLEAN) == []


#: The helper mutates without taking the lock itself, but every caller
#: holds it — the intra-class fixpoint must infer that, not flag it.
HELPER = (
    "import threading\n"
    "\n"
    "\n"
    "class Cache:\n"
    "    def __init__(self):\n"
    "        self._lock = threading.Lock()\n"
    "        self._entries = {}\n"
    "\n"
    "    def put(self, key, value):\n"
    "        with self._lock:\n"
    "            self._store(key, value)\n"
    "\n"
    "    def replace(self, items):\n"
    "        with self._lock:\n"
    "            self._entries.clear()\n"
    "            for key, value in items.items():\n"
    "                self._store(key, value)\n"
    "\n"
    "    def _store(self, key, value):\n"
    "        self._entries.update({key: value})\n"
)


def test_helper_called_only_under_lock_is_clean(tmp_path):
    assert _analyze(tmp_path, HELPER) == []


CYCLE = (
    "import threading\n"
    "\n"
    "\n"
    "class Pair:\n"
    "    def __init__(self):\n"
    "        self._first = threading.Lock()\n"
    "        self._second = threading.Lock()\n"
    "\n"
    "    def forward(self):\n"
    "        with self._first:\n"
    "            with self._second:\n"
    "                return 1\n"
    "\n"
    "    def backward(self):\n"
    "        with self._second:\n"
    "            with self._first:\n"
    "                return 2\n"
)


def test_lock_order_cycle_is_flagged_on_both_edges(tmp_path):
    findings = _analyze(tmp_path, CYCLE)
    lines_by_symbol = {f.symbol: f.line for f in findings}
    assert set(lines_by_symbol) == {
        "Pair._first->Pair._second",
        "Pair._second->Pair._first",
    }
    assert all("lock-order cycle" in f.message for f in findings)
    # Each edge is reported at its inner acquisition.
    assert (
        lines_by_symbol["Pair._first->Pair._second"]
        == _lines(CYCLE, "with self._second:")[0]
    )
    assert (
        lines_by_symbol["Pair._second->Pair._first"]
        == _lines(CYCLE, "with self._first:")[1]
    )


NESTED_OK = (
    "import threading\n"
    "\n"
    "\n"
    "class Pair:\n"
    "    def __init__(self):\n"
    "        self._first = threading.Lock()\n"
    "        self._second = threading.Lock()\n"
    "\n"
    "    def forward(self):\n"
    "        with self._first:\n"
    "            with self._second:\n"
    "                return 1\n"
    "\n"
    "    def also_forward(self):\n"
    "        with self._first:\n"
    "            with self._second:\n"
    "                return 2\n"
)


def test_consistent_nesting_order_is_clean(tmp_path):
    assert _analyze(tmp_path, NESTED_OK) == []
