"""Epoch-safety checker: yield/re-check, Engine protocol surface, and
stale statistics carried across epochs."""

from repro.analysis.core import run_analysis
from repro.analysis.epoch_safety import EpochSafetyChecker


def _analyze(tmp_path, source, relpath="engines/mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    findings, _ = run_analysis(
        [tmp_path], checkers=[EpochSafetyChecker()], root=tmp_path
    )
    return findings


def _lines(source, fragment):
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), 1)
        if fragment in line
    ]


# ---------------------------------------------------------------------------
# Rule 1: epoch-state reads across yields
# ---------------------------------------------------------------------------
YIELD_BAD = (
    "class Scanner:\n"
    "    def stream(self):\n"
    "        for name in list(self.tables):\n"
    "            yield name\n"
    "            rows = self.tables[name]\n"
    "            yield len(rows)\n"
)


def test_read_after_yield_without_recheck_is_flagged(tmp_path):
    findings = _analyze(tmp_path, YIELD_BAD)
    assert [f.checker for f in findings] == ["epoch-safety"]
    finding = findings[0]
    assert finding.line == _lines(YIELD_BAD, "rows = self.tables")[0]
    assert finding.symbol == "Scanner.stream"
    assert "self.tables" in finding.message
    assert "data_version" in finding.message


YIELD_CLEAN = (
    "class Scanner:\n"
    "    def stream(self):\n"
    "        for name in list(self.tables):\n"
    "            yield name\n"
    "            self.check_data_version()\n"
    "            rows = self.tables[name]\n"
    "            yield len(rows)\n"
)


def test_recheck_between_yield_and_read_is_clean(tmp_path):
    assert _analyze(tmp_path, YIELD_CLEAN) == []


# ---------------------------------------------------------------------------
# Rule 2: Engine protocol surface
# ---------------------------------------------------------------------------
PROTOCOL = (
    "class Engine:\n"
    "    def decode(self, result):\n"
    "        return result\n"
    "\n"
    "    def decode_rows(self, rows):\n"
    "        return rows\n"
    "\n"
    "\n"
    "class RebuildOnly(Engine):\n"
    "    def _on_data_update(self):\n"
    "        self._build()\n"
    "\n"
    "\n"
    "class Incremental(Engine):\n"
    "    def _on_data_update(self):\n"
    "        self._build()\n"
    "\n"
    "    def apply_delta(self, delta):\n"
    "        return True\n"
    "\n"
    "\n"
    "class PartialDecoder(Engine):\n"
    "    def decode(self, result):\n"
    "        return []\n"
)


def test_protocol_surface_gaps_are_flagged(tmp_path):
    findings = _analyze(tmp_path, PROTOCOL)
    by_symbol = {f.symbol: f for f in findings}
    # Incremental pairs both hooks and stays clean.
    assert set(by_symbol) == {"RebuildOnly", "PartialDecoder"}
    rebuild = by_symbol["RebuildOnly"]
    assert rebuild.line == _lines(PROTOCOL, "class RebuildOnly")[0]
    assert "apply_delta" in rebuild.message
    decoder = by_symbol["PartialDecoder"]
    assert decoder.line == _lines(PROTOCOL, "class PartialDecoder")[0]
    assert "decode_rows" in decoder.message


# ---------------------------------------------------------------------------
# Rule 3: statistics carried across epochs
# ---------------------------------------------------------------------------
STALE = (
    "class Tracker:\n"
    "    def apply_delta(self, delta):\n"
    "        state = self._state\n"
    "        self._state = _State(state.triples, state.predicate_stats)\n"
    "\n"
    "    def estimate(self, key):\n"
    "        state = self._state\n"
    "        return state.triples.predicate_stats[key]\n"
)


def test_stats_read_through_carried_structure_is_flagged(tmp_path):
    findings = _analyze(tmp_path, STALE)
    assert [f.checker for f in findings] == ["epoch-safety"]
    finding = findings[0]
    assert finding.line == _lines(STALE, "state.triples.predicate_stats")[0]
    assert finding.symbol == "Tracker.estimate"
    assert "predicate_stats" in finding.message
    assert "apply_delta" in finding.message


FRESH = (
    "class Tracker:\n"
    "    def apply_delta(self, delta):\n"
    "        self._state = self._rebuild(delta)\n"
    "\n"
    "    def estimate(self, key):\n"
    "        state = self._state\n"
    "        return state.predicate_stats.get(key)\n"
)


def test_rebuilt_stats_are_clean(tmp_path):
    assert _analyze(tmp_path, FRESH) == []


def test_out_of_scope_paths_are_ignored(tmp_path):
    assert _analyze(tmp_path, YIELD_BAD, relpath="service/mod.py") == []


# ---------------------------------------------------------------------------
# Rule 4: sketch registries carried across epochs
# ---------------------------------------------------------------------------
STALE_SKETCH = (
    "class Engine:\n"
    "    def apply_delta(self, delta):\n"
    "        state = self._structures\n"
    "        self._structures = _Structures(\n"
    "            state.catalog.apply_delta(delta),\n"
    "            state.sketches,\n"
    "        )\n"
)


def test_sketches_carried_into_new_bundle_are_flagged(tmp_path):
    findings = _analyze(tmp_path, STALE_SKETCH)
    assert [f.checker for f in findings] == ["epoch-safety"]
    finding = findings[0]
    assert finding.line == _lines(STALE_SKETCH, "state.sketches")[0]
    assert finding.symbol == "Engine.apply_delta"
    assert "sketch registry 'sketches'" in finding.message
    assert "merge" in finding.message


def test_dict_copied_sketches_are_still_flagged(tmp_path):
    source = STALE_SKETCH.replace(
        "state.sketches", "dict(state.sketches)"
    )
    findings = _analyze(tmp_path, source)
    assert [f.symbol for f in findings] == ["Engine.apply_delta"]


def test_self_state_sketches_without_alias_are_flagged(tmp_path):
    source = (
        "class Engine:\n"
        "    def apply_delta(self, delta):\n"
        "        self._state = _State(self._state.sketches)\n"
    )
    findings = _analyze(tmp_path, source)
    assert [f.symbol for f in findings] == ["Engine.apply_delta"]


MERGED_SKETCH = (
    "class Engine:\n"
    "    def apply_delta(self, delta):\n"
    "        state = self._structures\n"
    "        self._structures = _Structures(\n"
    "            state.catalog.apply_delta(delta),\n"
    "            sketches_apply_delta(state.sketches, delta),\n"
    "        )\n"
)


def test_merged_sketches_are_clean(tmp_path):
    assert _analyze(tmp_path, MERGED_SKETCH) == []


def test_non_bundle_calls_do_not_trip_the_sketch_rule(tmp_path):
    source = (
        "class Engine:\n"
        "    def apply_delta(self, delta):\n"
        "        state = self._structures\n"
        "        self._log(state.sketches)\n"
        "        self._structures = self._rebuild(delta)\n"
    )
    assert _analyze(tmp_path, source) == []
