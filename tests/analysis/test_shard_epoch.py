"""Shard-epoch checker: cross-shard iteration must hold the epoch."""

from repro.analysis.core import run_analysis
from repro.analysis.shard_epoch import ShardEpochChecker


def _analyze(tmp_path, source, relpath="distributed/mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    findings, suppressed = run_analysis(
        [tmp_path], checkers=[ShardEpochChecker()], root=tmp_path
    )
    return findings, suppressed


def _lines(source, fragment):
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), 1)
        if fragment in line
    ]


# ---------------------------------------------------------------------------
# Unguarded iteration is flagged
# ---------------------------------------------------------------------------
BAD_FOR = (
    "class Facade:\n"
    "    def num_triples(self):\n"
    "        total = 0\n"
    "        for store in self.stores:\n"
    "            total += store.num_triples\n"
    "        return total\n"
)


def test_unguarded_for_over_shards_is_flagged(tmp_path):
    findings, _ = _analyze(tmp_path, BAD_FOR)
    assert [f.checker for f in findings] == ["shard-epoch"]
    finding = findings[0]
    assert finding.line == _lines(BAD_FOR, "for store in self.stores")[0]
    assert finding.symbol == "Facade.num_triples"
    assert "'stores'" in finding.message
    assert "read_epoch" in finding.message


BAD_COMPREHENSION = (
    "class Transport:\n"
    "    def stats(self):\n"
    "        return [pool.stats() for pool in self.pools]\n"
)


def test_unguarded_comprehension_over_pools_is_flagged(tmp_path):
    findings, _ = _analyze(tmp_path, BAD_COMPREHENSION)
    assert [f.checker for f in findings] == ["shard-epoch"]
    assert findings[0].symbol == "Transport.stats"
    assert "'pools'" in findings[0].message


BAD_CALL_WRAPPED = (
    "class Facade:\n"
    "    def route(self, batch):\n"
    "        for index, routed in enumerate(split(batch, self.stores)):\n"
    "            self.stores[index].add(routed)\n"
)


def test_shard_attr_inside_iter_call_is_flagged(tmp_path):
    findings, _ = _analyze(tmp_path, BAD_CALL_WRAPPED)
    assert [f.checker for f in findings] == ["shard-epoch"]
    assert findings[0].line == _lines(BAD_CALL_WRAPPED, "enumerate")[0]


# ---------------------------------------------------------------------------
# Guarded iteration, *_locked helpers, and suppressions are clean
# ---------------------------------------------------------------------------
GUARDED_READ = (
    "class Facade:\n"
    "    def num_triples(self):\n"
    "        with self._epoch.read():\n"
    "            return sum(s.num_triples for s in self.stores)\n"
)


def test_iteration_under_epoch_read_is_clean(tmp_path):
    findings, _ = _analyze(tmp_path, GUARDED_READ)
    assert findings == []


GUARDED_FACADE = (
    "class Engine:\n"
    "    def scatter(self):\n"
    "        with self.store.read_epoch():\n"
    "            for engine in self.engines:\n"
    "                engine.run()\n"
)


def test_iteration_under_read_epoch_facade_is_clean(tmp_path):
    findings, _ = _analyze(tmp_path, GUARDED_FACADE)
    assert findings == []


GUARDED_WRITE = (
    "class Facade:\n"
    "    def add(self, batch):\n"
    "        with self._epoch.write():\n"
    "            for store in self.stores:\n"
    "                store.add(batch)\n"
)


def test_iteration_under_epoch_write_is_clean(tmp_path):
    findings, _ = _analyze(tmp_path, GUARDED_WRITE)
    assert findings == []


LOCKED_HELPER = (
    "class Facade:\n"
    "    def _table_names_locked(self):\n"
    "        names = set()\n"
    "        for store in self.stores:\n"
    "            names.update(store.tables)\n"
    "        return names\n"
)


def test_locked_suffix_helper_is_exempt(tmp_path):
    findings, _ = _analyze(tmp_path, LOCKED_HELPER)
    assert findings == []


SUPPRESSED = (
    "class Transport:\n"
    "    def close(self):\n"
    "        # repro: allow[shard-epoch]\n"
    "        for pool in self.pools:\n"
    "            pool.close()\n"
)


def test_allow_comment_suppresses_finding(tmp_path):
    findings, suppressed = _analyze(tmp_path, SUPPRESSED)
    assert findings == []
    assert suppressed == 1


# ---------------------------------------------------------------------------
# Scope and non-shard iteration
# ---------------------------------------------------------------------------
def test_modules_outside_distributed_are_out_of_scope(tmp_path):
    findings, _ = _analyze(
        tmp_path, BAD_FOR, relpath="service/cluster/mod.py"
    )
    assert findings == []


PLAIN_ITERATION = (
    "class Facade:\n"
    "    def tally(self, rows):\n"
    "        for row in rows:\n"
    "            self.count += 1\n"
    "        return [r for r in self.items]\n"
)


def test_non_shard_iteration_is_clean(tmp_path):
    findings, _ = _analyze(tmp_path, PLAIN_ITERATION)
    assert findings == []


NESTED_DEF = (
    "class Engine:\n"
    "    def build(self):\n"
    "        with self.store.read_epoch():\n"
    "            def later():\n"
    "                for store in self.stores:\n"
    "                    store.touch()\n"
    "            return later\n"
)


def test_nested_def_does_not_inherit_guard(tmp_path):
    findings, _ = _analyze(tmp_path, NESTED_DEF)
    assert [f.checker for f in findings] == ["shard-epoch"]
    assert findings[0].symbol == "later"
