"""Numpy-hygiene checker: dtype-less stack/frombuffer and ambiguous
string dtypes in the packed-array storage scope."""

from repro.analysis.core import run_analysis
from repro.analysis.numpy_hygiene import NumpyHygieneChecker


def _analyze(tmp_path, source, relpath="storage/pack.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    findings, _ = run_analysis(
        [tmp_path], checkers=[NumpyHygieneChecker()], root=tmp_path
    )
    return findings


def _lines(source, fragment):
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), 1)
        if fragment in line
    ]


BAD = (
    "import numpy as np\n"
    "\n"
    "\n"
    "def pack(columns, buffer):\n"
    "    stacked = np.stack(columns)\n"
    "    words = np.frombuffer(buffer)\n"
    "    return stacked.astype('u4'), words\n"
    "\n"
    "\n"
    "def retag(values):\n"
    "    return values.view('uint64')\n"
)


def test_dtype_and_endianness_violations_are_flagged(tmp_path):
    findings = _analyze(tmp_path, BAD)
    assert [(f.line, f.checker) for f in findings] == [
        (_lines(BAD, "np.stack")[0], "numpy-hygiene"),
        (_lines(BAD, "np.frombuffer")[0], "numpy-hygiene"),
        (_lines(BAD, "astype('u4')")[0], "numpy-hygiene"),
        (_lines(BAD, "view('uint64')")[0], "numpy-hygiene"),
    ]
    assert "np.stack without an explicit dtype=" in findings[0].message
    assert "np.frombuffer without an explicit dtype=" in findings[1].message
    assert "'u4'" in findings[2].message
    assert "byte\norder" not in findings[2].message  # single line msg
    assert "'uint64'" in findings[3].message
    assert findings[0].symbol == "pack"
    assert findings[3].symbol == "retag"


CLEAN = (
    "import numpy as np\n"
    "\n"
    "\n"
    "def pack(columns, buffer):\n"
    "    stacked = np.stack(columns, dtype=np.int64)\n"
    "    words = np.frombuffer(buffer, dtype='<u8')\n"
    "    return stacked.astype('>u4'), words\n"
    "\n"
    "\n"
    "def native(values):\n"
    "    return values.astype(np.uint32).view('=u8')\n"
)


def test_explicit_dtypes_and_byte_orders_are_clean(tmp_path):
    assert _analyze(tmp_path, CLEAN) == []


def test_out_of_scope_paths_are_ignored(tmp_path):
    assert _analyze(tmp_path, BAD, relpath="service/mod.py") == []


def test_sets_and_nputil_are_in_scope(tmp_path):
    # Both files accumulate in tmp_path; count findings per file.
    for relpath in ("sets/layout.py", "nputil.py"):
        findings = _analyze(tmp_path, BAD, relpath=relpath)
        assert len([f for f in findings if f.path == relpath]) == 4
