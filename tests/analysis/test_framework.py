"""Analysis framework: suppressions, baseline, CLI exit-code contract."""

import json
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.core import (
    Finding,
    all_checkers,
    baseline_entry,
    run_analysis,
    split_by_baseline,
)

#: One minimal violation per checker, placed under a path its checker
#: scopes to.  The CLI must exit non-zero on each when run with
#: ``--check <id>`` (the acceptance gate for seeded violations).
SEEDED = {
    "lock-discipline": (
        "service/cache.py",
        "import threading\n"
        "\n"
        "\n"
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._entries = {}\n"
        "\n"
        "    def put(self, key, value):\n"
        "        with self._lock:\n"
        "            self._entries.update({key: value})\n"
        "\n"
        "    def drop(self, key):\n"
        "        self._entries.pop(key, None)\n",
    ),
    "epoch-safety": (
        "engines/scan.py",
        "class Scanner:\n"
        "    def stream(self):\n"
        "        for name in list(self.tables):\n"
        "            yield name\n"
        "            yield self.tables[name]\n",
    ),
    "error-taxonomy": (
        "service/handlers.py",
        "def parse(text):\n"
        "    if not text:\n"
        "        raise ValueError('empty query')\n"
        "    return text\n",
    ),
    "numpy-hygiene": (
        "storage/pack.py",
        "import numpy as np\n"
        "\n"
        "\n"
        "def pack(columns):\n"
        "    return np.stack(columns)\n",
    ),
}

BAD_STORAGE = SEEDED["numpy-hygiene"][1]


def _write(tmp_path, relpath, source):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def test_checker_registry_ids():
    assert [checker.id for checker in all_checkers()] == [
        "lock-discipline",
        "epoch-safety",
        "error-taxonomy",
        "numpy-hygiene",
        "shm-lifecycle",
        "shard-epoch",
    ]


def test_finding_render_and_fingerprint():
    finding = Finding("numpy-hygiene", "storage/p.py", 5, "pack", "msg")
    assert finding.render() == "storage/p.py:5: [numpy-hygiene] msg (pack)"
    assert finding.fingerprint() == (
        "numpy-hygiene",
        "storage/p.py",
        "pack",
        "msg",
    )


def test_suppression_on_line_and_line_above(tmp_path):
    _write(
        tmp_path,
        "storage/p.py",
        "import numpy as np\n"
        "\n"
        "def f(c):\n"
        "    return np.stack(c)  # repro: allow[numpy-hygiene]\n"
        "\n"
        "def g(c):\n"
        "    # repro: allow[numpy-hygiene]\n"
        "    return np.stack(c)\n"
        "\n"
        "def h(c):\n"
        "    # repro: allow[lock-discipline]\n"
        "    return np.stack(c)\n",
    )
    findings, hidden = run_analysis([tmp_path], root=tmp_path)
    # f and g are suppressed; h names the wrong checker and stays.
    assert hidden == 2
    assert [(f.line, f.checker) for f in findings] == [(12, "numpy-hygiene")]


def test_wildcard_suppression(tmp_path):
    _write(
        tmp_path,
        "storage/p.py",
        "import numpy as np\n"
        "\n"
        "def f(c):\n"
        "    return np.stack(c)  # repro: allow[*]\n",
    )
    findings, hidden = run_analysis([tmp_path], root=tmp_path)
    assert findings == [] and hidden == 1


def test_baseline_matches_without_line_numbers(tmp_path):
    _write(tmp_path, "storage/p.py", BAD_STORAGE)
    findings, _ = run_analysis([tmp_path], root=tmp_path)
    assert len(findings) == 1
    entries = [baseline_entry(findings[0], "known")]
    assert entries[0]["justification"] == "known"
    assert "line" not in entries[0]
    # Shift the code down: the line moves, the fingerprint does not.
    _write(tmp_path, "storage/p.py", "\n\n" + BAD_STORAGE)
    moved, _ = run_analysis([tmp_path], root=tmp_path)
    new, grandfathered = split_by_baseline(moved, entries)
    assert new == []
    assert len(grandfathered) == 1
    assert grandfathered[0].line != findings[0].line


@pytest.mark.parametrize("checker_id", sorted(SEEDED))
def test_cli_exits_nonzero_on_each_seeded_checker(
    tmp_path, capsys, checker_id
):
    relpath, source = SEEDED[checker_id]
    _write(tmp_path, relpath, source)
    rc = main(
        [
            str(tmp_path),
            "--check",
            checker_id,
            "--baseline",
            str(tmp_path / "baseline.json"),
        ]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert f"[{checker_id}]" in out


def test_cli_json_report_shape(tmp_path, capsys):
    _write(tmp_path, *SEEDED["numpy-hygiene"])
    rc = main(
        [
            str(tmp_path),
            "--format",
            "json",
            "--baseline",
            str(tmp_path / "baseline.json"),
        ]
    )
    report = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert report["checkers"] == [
        "epoch-safety",
        "error-taxonomy",
        "lock-discipline",
        "numpy-hygiene",
        "shard-epoch",
        "shm-lifecycle",
    ]
    assert len(report["new"]) == 1
    assert report["new"][0]["checker"] == "numpy-hygiene"
    assert report["baselined"] == [] and report["suppressed"] == 0


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    _write(tmp_path, *SEEDED["numpy-hygiene"])
    baseline = tmp_path / "baseline.json"
    assert (
        main([str(tmp_path), "--baseline", str(baseline), "--write-baseline"])
        == 0
    )
    assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "0 new finding(s), 1 baselined" in out


def test_cli_out_writes_report_file(tmp_path, capsys):
    _write(tmp_path, *SEEDED["numpy-hygiene"])
    out_file = tmp_path / "report.json"
    rc = main(
        [
            str(tmp_path),
            "--baseline",
            str(tmp_path / "baseline.json"),
            "--out",
            str(out_file),
        ]
    )
    capsys.readouterr()
    assert rc == 1
    report = json.loads(out_file.read_text(encoding="utf-8"))
    assert len(report["new"]) == 1


def test_cli_unknown_checker_is_usage_error(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([str(tmp_path), "--check", "nope"])
    capsys.readouterr()
    assert excinfo.value.code == 2


def test_real_tree_is_clean():
    """Dogfood gate: all four checkers over the actual src/ tree."""
    root = Path(__file__).resolve().parents[2]
    findings, _ = run_analysis([root / "src"], root=root)
    assert findings == [], "\n".join(f.render() for f in findings)
