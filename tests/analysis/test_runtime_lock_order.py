"""Runtime lock-order sanitizer: order-graph recording, inversion
detection, dedup, and the test-suite instrumentation wiring."""

import threading

from repro.analysis import runtime


def test_threading_factories_are_instrumented_in_tests():
    # The autouse conftest fixture monkeypatches threading.Lock/RLock.
    assert isinstance(threading.Lock(), runtime.OrderedLock)
    assert isinstance(threading.RLock(), runtime.OrderedLock)


def test_consistent_order_records_edges_without_violations():
    runtime.reset()
    outer = runtime.OrderedLock(name="repro/test:outer")
    inner = runtime.OrderedLock(name="repro/test:inner")
    for _ in range(3):
        with outer:
            with inner:
                pass
    assert runtime.violations() == []
    assert runtime.order_edges()["repro/test:outer"] == ["repro/test:inner"]
    runtime.reset()


def test_inverted_order_is_recorded_once():
    runtime.reset()
    first = runtime.OrderedLock(name="repro/test:first")
    second = runtime.OrderedLock(name="repro/test:second")
    try:
        with first:
            with second:
                pass
        with second:
            with first:  # inversion
                pass
        with second:
            with first:  # same inversion again: deduplicated
                pass
        found = runtime.violations()
        assert len(found) == 1
        violation = found[0]
        assert violation.holding == "repro/test:second"
        assert violation.acquiring == "repro/test:first"
        assert violation.cycle == [
            "repro/test:first",
            "repro/test:second",
            "repro/test:first",
        ]
        rendered = violation.render()
        assert "lock-order violation" in rendered
        assert "repro/test:first" in rendered
    finally:
        runtime.reset()


def test_cross_thread_inversion_is_detected():
    runtime.reset()
    a = runtime.OrderedLock(name="repro/test:a")
    b = runtime.OrderedLock(name="repro/test:b")
    try:
        with a:
            with b:
                pass

        def invert():
            with b:
                with a:
                    pass

        thread = threading.Thread(target=invert)
        thread.start()
        thread.join()
        assert len(runtime.violations()) == 1
    finally:
        runtime.reset()


def test_reentrant_acquisition_is_not_an_edge():
    runtime.reset()
    lock = runtime.OrderedLock(name="repro/test:re")
    with lock:
        with lock:
            pass
    assert runtime.violations() == []
    assert runtime.order_edges() == {}
    runtime.reset()


def test_locks_created_outside_the_project_are_untracked():
    runtime.reset()
    anonymous = runtime.OrderedLock()  # created in tests/, not src/repro
    named = runtime.OrderedLock(name="repro/test:n")
    with anonymous:
        with named:
            pass
    assert runtime.order_edges() == {}
    runtime.reset()


def test_factories_and_lock_protocol():
    lock = runtime.make_lock()
    rlock = runtime.make_rlock()
    assert isinstance(lock, runtime.OrderedLock)
    assert isinstance(rlock, runtime.OrderedLock)
    assert lock.acquire(False) is True
    assert lock.locked()
    lock.release()
    assert not lock.locked()
    with rlock:
        with rlock:  # reentrant
            pass
    # Condition interop: the wrapper delegates the private lock API.
    condition = threading.Condition(runtime.make_rlock())
    with condition:
        condition.notify_all()
