"""Shm-lifecycle checker: create/unlink + attach/close pairing, local
handle escape analysis, and refcounts-under-lock in cluster modules."""

from repro.analysis.core import run_analysis
from repro.analysis.shm_lifecycle import ShmLifecycleChecker


def _analyze(tmp_path, source, relpath="service/cluster/mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    findings, _ = run_analysis(
        [tmp_path], checkers=[ShmLifecycleChecker()], root=tmp_path
    )
    return findings


def _lines(source, fragment):
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), 1)
        if fragment in line
    ]


# ---------------------------------------------------------------------------
# Rule 1: module-level pairing
# ---------------------------------------------------------------------------
CREATE_NO_UNLINK = (
    "from multiprocessing.shared_memory import SharedMemory\n"
    "\n"
    "\n"
    "def publish(size):\n"
    "    segment = SharedMemory(create=True, size=size)\n"
    "    return segment\n"
)


def test_create_without_unlink_is_flagged(tmp_path):
    findings = _analyze(tmp_path, CREATE_NO_UNLINK)
    assert [f.checker for f in findings] == ["shm-lifecycle"]
    assert "never unlinks" in findings[0].message
    assert findings[0].line == _lines(CREATE_NO_UNLINK, "create=True")[0]


CREATE_WITH_UNLINK = (
    "from multiprocessing.shared_memory import SharedMemory\n"
    "\n"
    "\n"
    "def publish(size):\n"
    "    segment = SharedMemory(create=True, size=size)\n"
    "    return segment\n"
    "\n"
    "\n"
    "def retire(segment):\n"
    "    segment.close()\n"
    "    segment.unlink()\n"
)


def test_create_with_unlink_is_clean(tmp_path):
    assert _analyze(tmp_path, CREATE_WITH_UNLINK) == []


ATTACH_NO_CLOSE = (
    "from repro.service.cluster.shm import attach_shared_memory\n"
    "\n"
    "\n"
    "def reader(name):\n"
    "    segment = attach_shared_memory(name)\n"
    "    return segment\n"
)


def test_attach_without_close_is_flagged(tmp_path):
    findings = _analyze(tmp_path, ATTACH_NO_CLOSE)
    assert [f.checker for f in findings] == ["shm-lifecycle"]
    assert "never closes" in findings[0].message


ATTACH_WITH_DETACH = (
    "from repro.service.cluster.shm import attach_snapshot, detach\n"
    "\n"
    "\n"
    "def reader(name):\n"
    "    snapshot, segment = attach_snapshot(name)\n"
    "    try:\n"
    "        return snapshot.num_triples\n"
    "    finally:\n"
    "        detach(segment)\n"
)


def test_attach_with_detach_is_clean(tmp_path):
    assert _analyze(tmp_path, ATTACH_WITH_DETACH) == []


# ---------------------------------------------------------------------------
# Rule 1b: function-local handle escape analysis
# ---------------------------------------------------------------------------
DROPPED_HANDLE = (
    "from repro.service.cluster.shm import (\n"
    "    attach_shared_memory,\n"
    "    detach,\n"
    ")\n"
    "\n"
    "\n"
    "def peek(name):\n"
    "    segment = attach_shared_memory(name)\n"
    "    return name\n"
    "\n"
    "\n"
    "def proper(name):\n"
    "    segment = attach_shared_memory(name)\n"
    "    detach(segment)\n"
)


def test_dropped_local_handle_is_flagged(tmp_path):
    findings = _analyze(tmp_path, DROPPED_HANDLE)
    assert [f.checker for f in findings] == ["shm-lifecycle"]
    finding = findings[0]
    assert finding.symbol == "peek"
    assert "'segment'" in finding.message
    assert finding.line == _lines(DROPPED_HANDLE, "def peek")[0] + 1


STORED_HANDLE = (
    "from repro.service.cluster.shm import attach_shared_memory, detach\n"
    "\n"
    "\n"
    "class Cache:\n"
    "    def adopt(self, name):\n"
    "        segment = attach_shared_memory(name)\n"
    "        self.segment = segment\n"
    "\n"
    "    def drop(self):\n"
    "        detach(self.segment)\n"
)


def test_handle_stored_on_self_is_clean(tmp_path):
    assert _analyze(tmp_path, STORED_HANDLE) == []


# ---------------------------------------------------------------------------
# Rule 2: refcounts only under a lock (cluster modules only)
# ---------------------------------------------------------------------------
REFCOUNT_UNLOCKED = (
    "class Epoch:\n"
    "    def acquire(self):\n"
    "        self.refs += 1\n"
)


def test_refcount_outside_lock_is_flagged(tmp_path):
    findings = _analyze(tmp_path, REFCOUNT_UNLOCKED)
    assert [f.checker for f in findings] == ["shm-lifecycle"]
    finding = findings[0]
    assert finding.symbol == "Epoch.acquire"
    assert "outside" in finding.message
    assert finding.line == _lines(REFCOUNT_UNLOCKED, "self.refs")[0]


REFCOUNT_LOCKED = (
    "class Epoch:\n"
    "    def acquire(self):\n"
    "        with self._lock:\n"
    "            self.refs += 1\n"
)


def test_refcount_under_lock_is_clean(tmp_path):
    assert _analyze(tmp_path, REFCOUNT_LOCKED) == []


def test_refcount_rule_scoped_to_cluster_paths(tmp_path):
    # The same mutation outside service/cluster/ is not this checker's
    # business (generic lock discipline covers those).
    assert (
        _analyze(tmp_path, REFCOUNT_UNLOCKED, relpath="storage/mod.py")
        == []
    )


SUPPRESSED = (
    "class Epoch:\n"
    "    def acquire(self):\n"
    "        self.refs += 1  # repro: allow[shm-lifecycle]\n"
)


def test_allow_comment_suppresses(tmp_path):
    assert _analyze(tmp_path, SUPPRESSED) == []


# ---------------------------------------------------------------------------
# The installed tree passes its own checker
# ---------------------------------------------------------------------------
def test_repo_cluster_tier_is_clean():
    import pathlib

    import repro

    package_root = pathlib.Path(repro.__file__).parent
    findings, _ = run_analysis(
        [package_root],
        checkers=[ShmLifecycleChecker()],
        root=package_root.parent,
    )
    assert findings == []
