"""Error-taxonomy checker: raises on serving paths must be registered
ReproError subclasses (taxonomy resolved from the installed
``repro.errors`` when the analyzed tree has no errors.py)."""

from repro.analysis.core import run_analysis
from repro.analysis.error_taxonomy import ErrorTaxonomyChecker


def _analyze(tmp_path, source, relpath="service/mod.py"):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    findings, _ = run_analysis(
        [tmp_path], checkers=[ErrorTaxonomyChecker()], root=tmp_path
    )
    return findings


def _lines(source, fragment):
    return [
        lineno
        for lineno, line in enumerate(source.splitlines(), 1)
        if fragment in line
    ]


FOREIGN = (
    "class LocalError(Exception):\n"
    "    pass\n"
    "\n"
    "\n"
    "def parse(text):\n"
    "    if not text:\n"
    "        raise ValueError('empty query')\n"
    "    return text\n"
    "\n"
    "\n"
    "def wrap(text):\n"
    "    raise LocalError(text)\n"
)


def test_non_taxonomy_raises_are_flagged(tmp_path):
    findings = _analyze(tmp_path, FOREIGN)
    assert [(f.line, f.symbol) for f in findings] == [
        (_lines(FOREIGN, "raise ValueError")[0], "parse"),
        (_lines(FOREIGN, "raise LocalError")[0], "wrap"),
    ]
    assert all(f.checker == "error-taxonomy" for f in findings)
    assert "'ValueError'" in findings[0].message
    assert "not a ReproError subclass" in findings[0].message
    assert "'LocalError'" in findings[1].message


UNREGISTERED = (
    "from repro.errors import ReproError\n"
    "\n"
    "\n"
    "class VendorError(ReproError):\n"
    "    code = 'vendor_specific'\n"
    "\n"
    "\n"
    "def fail():\n"
    "    raise VendorError('nope')\n"
)


def test_unregistered_code_is_flagged(tmp_path):
    findings = _analyze(tmp_path, UNREGISTERED)
    assert [f.line for f in findings] == [
        _lines(UNREGISTERED, "raise VendorError")[0]
    ]
    assert "'vendor_specific'" in findings[0].message
    assert "not\nregistered" not in findings[0].message  # single line msg
    assert "registered in ERROR_CODES" in findings[0].message


CLEAN = (
    "from repro.errors import ParseError\n"
    "\n"
    "\n"
    "def parse(text):\n"
    "    if not text:\n"
    "        raise ParseError('empty query')\n"
    "    return text\n"
    "\n"
    "\n"
    "def passthrough(fn):\n"
    "    try:\n"
    "        return fn()\n"
    "    except ParseError as exc:\n"
    "        raise exc\n"
    "\n"
    "\n"
    "def reraise(fn):\n"
    "    try:\n"
    "        return fn()\n"
    "    except ParseError:\n"
    "        raise\n"
)


def test_taxonomy_raises_and_reraises_are_clean(tmp_path):
    assert _analyze(tmp_path, CLEAN) == []


def test_out_of_scope_paths_are_ignored(tmp_path):
    assert _analyze(tmp_path, FOREIGN, relpath="engines/mod.py") == []
