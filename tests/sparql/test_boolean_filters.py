"""Boolean FILTER connectives: grammar, translation, and semantics."""

import pytest

from repro.core.query import Comparison, Conjunction, Disjunction
from repro.engines import ALL_ENGINES
from repro.errors import ParseError
from repro.sparql.ast import FilterAnd, FilterComparison, FilterOr
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query
from repro.storage.vertical import vertically_partition

EX = "http://ex/"


def test_parse_and_chain():
    parsed = parse_sparql(
        "SELECT ?x WHERE { ?x <http://p> ?a FILTER(?a > 1 && ?a < 5) }"
    )
    (expr,) = parsed.filters
    assert isinstance(expr, FilterAnd)
    assert all(isinstance(p, FilterComparison) for p in expr.parts)


def test_parse_or_of_nested_and():
    parsed = parse_sparql(
        "SELECT ?x WHERE { ?x <http://p> ?a "
        'FILTER(?a = "q" || (?a > 1 && ?a < 5)) }'
    )
    (expr,) = parsed.filters
    assert isinstance(expr, FilterOr)
    assert isinstance(expr.parts[0], FilterComparison)
    assert isinstance(expr.parts[1], FilterAnd)


def test_precedence_and_binds_tighter_than_or():
    parsed = parse_sparql(
        "SELECT ?x WHERE { ?x <http://p> ?a "
        "FILTER(?a = 1 || ?a = 2 && ?a = 3) }"
    )
    (expr,) = parsed.filters
    assert isinstance(expr, FilterOr)
    assert isinstance(expr.parts[1], FilterAnd)


def test_dangling_connective_is_rejected():
    with pytest.raises(ParseError):
        parse_sparql(
            "SELECT ?x WHERE { ?x <http://p> ?a FILTER(?a > 1 &&) }"
        )


def test_translation_flattens_top_level_and():
    query = sparql_to_query(
        parse_sparql(
            "SELECT ?x ?a WHERE { ?x <http://ex/p> ?a "
            "FILTER(?a > 1 && ?a < 5) }"
        )
    )
    assert len(query.filters) == 2
    assert all(isinstance(f, Comparison) for f in query.filters)


def test_translation_keeps_disjunction_structure():
    query = sparql_to_query(
        parse_sparql(
            "SELECT ?x ?a WHERE { ?x <http://ex/p> ?a "
            "FILTER(?a = 1 || (?a > 3 && ?a < 5)) }"
        )
    )
    (expr,) = query.filters
    assert isinstance(expr, Disjunction)
    assert isinstance(expr.parts[1], Conjunction)


@pytest.fixture()
def store():
    return vertically_partition(
        [
            (f"<{EX}a>", f"<{EX}age>", '"15"'),
            (f"<{EX}b>", f"<{EX}age>", '"25"'),
            (f"<{EX}c>", f"<{EX}age>", '"35"'),
            (f"<{EX}d>", f"<{EX}age>", '"42"'),
            (f"<{EX}e>", f"<{EX}age>", '"word"'),
            (f"<{EX}a>", f"<{EX}likes>", f"<{EX}b>"),
        ]
    )


def _rows(engine, text):
    return sorted(engine.decode(engine.execute_sparql(text)))


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_connective_semantics_across_engines(engine_cls, store):
    engine = engine_cls(store)
    q_or = (
        f"SELECT ?x WHERE {{ ?x <{EX}age> ?a "
        "FILTER(?a < 20 || ?a > 30) }"
    )
    assert _rows(engine, q_or) == [
        (f"<{EX}a>",),
        (f"<{EX}c>",),
        (f"<{EX}d>",),
    ]
    q_and_or = (
        f"SELECT ?x WHERE {{ ?x <{EX}age> ?a "
        "FILTER(?a < 20 || (?a > 30 && ?a != 42)) }"
    )
    assert _rows(engine, q_and_or) == [(f"<{EX}a>",), (f"<{EX}c>",)]
    # A type-erroring arm (string vs number) doesn't block the other arm.
    q_error_arm = (
        f"SELECT ?x WHERE {{ ?x <{EX}age> ?a "
        'FILTER(?a > 30 || ?a = "word") }'
    )
    assert _rows(engine, q_error_arm) == [
        (f"<{EX}c>",),
        (f"<{EX}d>",),
        (f"<{EX}e>",),
    ]


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_disjunction_over_optional_unbound_is_per_arm(engine_cls, store):
    """An unbound (OPTIONAL-padded) operand errors only its own arm."""
    engine = engine_cls(store)
    text = (
        f"SELECT ?x ?y WHERE {{ ?x <{EX}age> ?a . "
        f"OPTIONAL {{ ?x <{EX}likes> ?y }} "
        f"FILTER(?y = <{EX}b> || ?a > 40) }}"
    )
    assert _rows(engine, text) == [
        (f"<{EX}a>", f"<{EX}b>"),
        (f"<{EX}d>", None),
    ]


@pytest.mark.parametrize("engine_cls", ALL_ENGINES, ids=lambda c: c.name)
def test_disjunction_referencing_sibling_branch_variable(engine_cls, store):
    """An arm over a variable this branch never binds errors per-arm."""
    engine = engine_cls(store)
    text = (
        f"SELECT ?x WHERE {{ "
        f"{{ ?x <{EX}age> ?a FILTER(?b = <{EX}b> || ?a > 40) }} UNION "
        f"{{ ?x <{EX}likes> ?b }} }}"
    )
    assert _rows(engine, text) == [(f"<{EX}a>",), (f"<{EX}d>",)]
