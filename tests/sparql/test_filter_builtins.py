"""FILTER builtins ``str()``, ``lang()``, and ``!`` negation.

Parser → AST → translate → three-valued evaluation, end to end on every
engine. SPARQL's error semantics are the interesting part: ``!error``
stays an error (the row is excluded), ``lang()`` of an IRI errors,
``str()`` never errors on bound terms, and negation over connectives
follows the spec's truth table.
"""

import numpy as np
import pytest

from repro.core.modifiers import apply_term_func, filter_masks
from repro.core.query import (
    BoundTest,
    Comparison,
    Conjunction,
    Constant,
    Disjunction,
    Negation,
    TermFunc,
    Variable,
)
from repro.engines import ALL_ENGINES
from repro.errors import ParseError
from repro.sparql.ast import FilterNegation, SparqlFunctionCall
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query
from repro.storage.relation import NULL_KEY, Relation
from repro.storage.vertical import vertically_partition

EX = "http://ex/"

TRIPLES = [
    (f"<{EX}s1>", f"<{EX}p>", '"chat"@fr'),
    (f"<{EX}s2>", f"<{EX}p>", '"cat"@en-GB'),
    (f"<{EX}s3>", f"<{EX}p>", '"42"'),
    (f"<{EX}s4>", f"<{EX}p>", f"<{EX}o1>"),
    (f"<{EX}s5>", f"<{EX}p>", '"plain"'),
    (f"<{EX}s1>", f"<{EX}q>", '"extra"'),
]


def _rows(engine, text):
    return sorted(engine.decode(engine.execute_sparql(text)))


def _all_engines_agree(store, text):
    rows = None
    for cls in ALL_ENGINES:
        engine = cls(store)
        got = _rows(engine, text)
        if rows is None:
            rows = got
        assert got == rows, (cls.name, text)
    return rows


# ---------------------------------------------------------------------------
# Parser and AST
# ---------------------------------------------------------------------------
def test_parse_str_and_lang_operands():
    parsed = parse_sparql(
        'SELECT ?x WHERE { ?x <http://p> ?y . '
        'FILTER(str(?y) = "a" && lang(?y) != "en") }'
    )
    conj = parsed.filters[0]
    left, right = conj.parts
    assert left.lhs == SparqlFunctionCall("str", "y")
    assert right.lhs == SparqlFunctionCall("lang", "y")


def test_parse_negation_nesting():
    parsed = parse_sparql(
        "SELECT ?x WHERE { ?x <http://p> ?y . FILTER(!!bound(?y)) }"
    )
    outer = parsed.filters[0]
    assert isinstance(outer, FilterNegation)
    assert isinstance(outer.part, FilterNegation)


def test_parse_rejects_function_on_constant():
    with pytest.raises(ParseError):
        parse_sparql(
            'SELECT ?x WHERE { ?x <http://p> ?y . FILTER(str("a") = "a") }'
        )


def test_translate_builds_termfunc_and_negation():
    parsed = parse_sparql(
        "SELECT ?x WHERE { ?x <http://p> ?y . "
        'FILTER(!(lang(?y) = "en")) }'
    )
    query = sparql_to_query(parsed)
    negation = query.filters[0]
    assert isinstance(negation, Negation)
    comparison = negation.part
    assert comparison.lhs == TermFunc("lang", Variable("y"))
    assert comparison.variables() == (Variable("y"),)


def test_filter_variable_validation_sees_through_functions():
    parsed = parse_sparql(
        'SELECT ?x WHERE { ?x <http://p> ?y . FILTER(str(?z) = "a") }'
    )
    with pytest.raises(ParseError):
        sparql_to_query(parsed)


# ---------------------------------------------------------------------------
# Term-function semantics
# ---------------------------------------------------------------------------
def test_apply_term_func_str():
    assert apply_term_func("str", "<http://ex/a>") == '"http://ex/a"'
    assert apply_term_func("str", '"chat"@fr') == '"chat"'
    assert apply_term_func("str", '"5"^^<http://int>') == '"5"'


def test_apply_term_func_lang():
    assert apply_term_func("lang", '"chat"@fr') == '"fr"'
    assert apply_term_func("lang", '"cat"@en-GB') == '"en-gb"'
    assert apply_term_func("lang", '"plain"') == '""'
    assert apply_term_func("lang", "<http://ex/a>") is None  # type error


# ---------------------------------------------------------------------------
# Three-valued masks
# ---------------------------------------------------------------------------
class _Dict:
    def __init__(self, terms):
        self.terms = terms

    def decode(self, key):
        return self.terms[key]

    def lookup(self, lexical):
        try:
            return self.terms.index(lexical)
        except ValueError:
            return None


def _relation(keys):
    return Relation("r", ["x"], [np.asarray(keys, dtype=np.uint32)])


def test_negation_preserves_error():
    # x binds: a number, a non-numeric literal (type error vs number),
    # and an unbound row.
    dictionary = _Dict(['"5"', '"word"'])
    relation = _relation([0, 1, NULL_KEY])
    comparison = Comparison(Variable("x"), ">", Constant(3.0))
    true, error = filter_masks(relation, comparison, dictionary)
    assert true.tolist() == [True, False, False]
    assert error.tolist() == [False, True, True]
    negated_true, negated_error = filter_masks(
        relation, Negation(comparison), dictionary
    )
    # !true = false; !error = error (row still excluded); never "kept
    # because the inner comparison errored".
    assert negated_true.tolist() == [False, False, False]
    assert negated_error.tolist() == [False, True, True]


def test_not_bound_is_true_on_unbound():
    dictionary = _Dict(['"5"'])
    relation = _relation([0, NULL_KEY])
    expr = Negation(BoundTest(Variable("x")))
    true, error = filter_masks(relation, expr, dictionary)
    assert true.tolist() == [False, True]
    assert error.tolist() == [False, False]


def test_connective_error_propagation():
    # A && B: false wins over error; A || B: true wins over error.
    dictionary = _Dict(['"word"'])
    relation = _relation([0])
    erroring = Comparison(Variable("x"), ">", Constant(3.0))  # type error
    false = Comparison(Variable("x"), "=", Constant('"other"'))
    true = Comparison(Variable("x"), "=", Constant('"word"'))

    t, e = filter_masks(relation, Conjunction((erroring, false)), dictionary)
    assert (t.tolist(), e.tolist()) == ([False], [False])  # definite false
    t, e = filter_masks(relation, Conjunction((erroring, true)), dictionary)
    assert (t.tolist(), e.tolist()) == ([False], [True])  # error
    t, e = filter_masks(relation, Disjunction((erroring, true)), dictionary)
    assert (t.tolist(), e.tolist()) == ([True], [False])  # definite true
    t, e = filter_masks(relation, Disjunction((erroring, false)), dictionary)
    assert (t.tolist(), e.tolist()) == ([False], [True])  # error

    # De-Morgan-style spot check: !(error && false) is !false = true.
    t, e = filter_masks(
        relation, Negation(Conjunction((erroring, false))), dictionary
    )
    assert (t.tolist(), e.tolist()) == ([True], [False])


# ---------------------------------------------------------------------------
# End to end, all engines
# ---------------------------------------------------------------------------
def test_lang_filter_selects_tagged_literals():
    store = vertically_partition(TRIPLES)
    rows = _all_engines_agree(
        store,
        f'SELECT ?s WHERE {{ ?s <{EX}p> ?o . FILTER(lang(?o) = "fr") }}',
    )
    assert rows == [(f"<{EX}s1>",)]


def test_lang_of_untagged_literal_is_empty_string():
    store = vertically_partition(TRIPLES)
    rows = _all_engines_agree(
        store,
        f'SELECT ?s WHERE {{ ?s <{EX}p> ?o . FILTER(lang(?o) = "") }}',
    )
    assert rows == [(f"<{EX}s3>",), (f"<{EX}s5>",)]


def test_str_matches_iri_content():
    store = vertically_partition(TRIPLES)
    rows = _all_engines_agree(
        store,
        f"SELECT ?s WHERE {{ ?s <{EX}p> ?o . "
        f'FILTER(str(?o) = "{EX}o1") }}',
    )
    assert rows == [(f"<{EX}s4>",)]


def test_str_numeric_content_compares_by_value():
    store = vertically_partition(TRIPLES + [(f"<{EX}s6>", f"<{EX}p>", '"42.0"')])
    rows = _all_engines_agree(
        store,
        f'SELECT ?s WHERE {{ ?s <{EX}p> ?o . FILTER(str(?o) = "42") }}',
    )
    assert rows == [(f"<{EX}s3>",), (f"<{EX}s6>",)]


def test_negated_lang_excludes_iri_rows():
    # lang(<iri>) errors; !error stays an error, so the IRI row is
    # excluded from the negation too.
    store = vertically_partition(TRIPLES)
    rows = _all_engines_agree(
        store,
        f"SELECT ?s WHERE {{ ?s <{EX}p> ?o . "
        f'FILTER(!(lang(?o) = "fr")) }}',
    )
    assert rows == [(f"<{EX}s2>",), (f"<{EX}s3>",), (f"<{EX}s5>",)]


def test_not_bound_over_optional():
    store = vertically_partition(TRIPLES)
    rows = _all_engines_agree(
        store,
        f"SELECT ?s WHERE {{ ?s <{EX}p> ?o . "
        f"OPTIONAL {{ ?s <{EX}q> ?x }} FILTER(!bound(?x)) }}",
    )
    assert rows == [
        (f"<{EX}s2>",),
        (f"<{EX}s3>",),
        (f"<{EX}s4>",),
        (f"<{EX}s5>",),
    ]


def test_negation_inside_union_branch_with_absent_variable():
    # ?x is bound only in the second branch; in the first branch
    # bound(?x) is plain false, so !bound(?x) keeps those rows.
    store = vertically_partition(TRIPLES)
    rows = _all_engines_agree(
        store,
        f"SELECT ?s WHERE {{ "
        f"{{ ?s <{EX}p> ?o }} UNION {{ ?s <{EX}q> ?x }} "
        f"FILTER(!bound(?x)) }}",
    )
    assert rows == [
        (f"<{EX}s1>",),
        (f"<{EX}s2>",),
        (f"<{EX}s3>",),
        (f"<{EX}s4>",),
        (f"<{EX}s5>",),
    ]
