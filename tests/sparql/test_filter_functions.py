"""FILTER functions bound() and regex(): parser, translation, semantics."""

import pytest

from repro.core.query import BoundTest, Conjunction, Disjunction, RegexTest, Variable
from repro.engines import ALL_ENGINES
from repro.errors import ParseError
from repro.sparql.ast import FilterBound, FilterRegex
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query
from repro.storage.vertical import vertically_partition

EX = "http://ex/"

GRAPH = [
    (f"<{EX}a>", f"<{EX}name>", '"alpha"'),
    (f"<{EX}b>", f"<{EX}name>", '"Beta"@en'),
    (f"<{EX}c>", f"<{EX}name>", '"42"^^<http://www.w3.org/2001/XMLSchema#integer>'),
    (f"<{EX}d>", f"<{EX}name>", f"<{EX}iri-object>"),
    (f"<{EX}a>", f"<{EX}knows>", f"<{EX}b>"),
    (f"<{EX}e>", f"<{EX}knows>", f"<{EX}a>"),
]


def _rows(text):
    store = vertically_partition(GRAPH)
    reference = None
    for engine_cls in ALL_ENGINES:
        engine = engine_cls(store)
        decoded = sorted(engine.decode(engine.execute_sparql(text)))
        if reference is None:
            reference = decoded
        assert decoded == reference, engine_cls.name
    return reference


# ---------------------------------------------------------------------------
# Parsing and translation
# ---------------------------------------------------------------------------
def test_parse_bound_with_and_without_outer_parens():
    for text in (
        "SELECT ?x WHERE { ?x <p:n> ?n . FILTER bound(?n) }",
        "SELECT ?x WHERE { ?x <p:n> ?n . FILTER(bound(?n)) }",
        "SELECT ?x WHERE { ?x <p:n> ?n . FILTER BOUND(?n) }",
    ):
        parsed = parse_sparql(text)
        assert parsed.filters == (FilterBound("n"),)


def test_parse_regex_with_flags_and_escapes():
    parsed = parse_sparql(
        'SELECT ?x WHERE { ?x <p:n> ?n . FILTER regex(?n, "a\\"b", "i") }'
    )
    assert parsed.filters == (FilterRegex("n", 'a"b', "i"),)
    parsed = parse_sparql(
        'SELECT ?x WHERE { ?x <p:n> ?n . FILTER(regex(?n, "^al") && ?n != "q") }'
    )
    assert isinstance(parsed.filters[0].parts[0], FilterRegex)


def test_parse_rejects_bad_builtin_arguments():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p:n> ?n . FILTER bound(<p:n>) }")
    with pytest.raises(ParseError):
        parse_sparql(
            "SELECT ?x WHERE { ?x <p:n> ?n . FILTER regex(?n, 42) }"
        )
    with pytest.raises(ParseError):
        parse_sparql(
            'SELECT ?x WHERE { ?x <p:n> ?n . FILTER regex(?n, "a", "x") }'
        )
    # An invalid pattern is a parse error, not a mid-execution re.error.
    with pytest.raises(ParseError, match="invalid regex"):
        parse_sparql(
            'SELECT ?x WHERE { ?x <p:n> ?n . FILTER regex(?n, "[") }'
        )


def test_translate_builds_core_filter_leaves():
    query = sparql_to_query(
        parse_sparql(
            "SELECT ?x WHERE { ?x <p:n> ?n . "
            'FILTER(bound(?n) || regex(?n, "a", "i")) }'
        )
    )
    (disjunction,) = query.filters
    assert isinstance(disjunction, Disjunction)
    assert disjunction.parts == (
        BoundTest(Variable("n")),
        RegexTest(Variable("n"), "a", "i"),
    )


def test_translate_rejects_unknown_filter_variable():
    with pytest.raises(ParseError):
        sparql_to_query(
            parse_sparql("SELECT ?x WHERE { ?x <p:n> ?n . FILTER bound(?zz) }")
        )


# ---------------------------------------------------------------------------
# Evaluation semantics (all five engines must agree)
# ---------------------------------------------------------------------------
def test_regex_matches_literal_content_only():
    rows = _rows(
        "SELECT ?x WHERE { ?x <http://ex/name> ?n . FILTER regex(?n, \"a\") }"
    )
    # "alpha" and "Beta"@en match; the IRI object is a type error; the
    # typed literal "42" has no "a" in its content.
    assert rows == [(f"<{EX}a>",), (f"<{EX}b>",)]


def test_regex_case_insensitive_flag():
    assert _rows(
        'SELECT ?x WHERE { ?x <http://ex/name> ?n . FILTER regex(?n, "BETA", "i") }'
    ) == [(f"<{EX}b>",)]
    assert _rows(
        'SELECT ?x WHERE { ?x <http://ex/name> ?n . FILTER regex(?n, "BETA") }'
    ) == []


def test_regex_applies_to_typed_literal_content():
    assert _rows(
        'SELECT ?x WHERE { ?x <http://ex/name> ?n . FILTER regex(?n, "^42$") }'
    ) == [(f"<{EX}c>",)]


def test_bound_filters_optional_padding():
    rows = _rows(
        "SELECT ?x ?n WHERE { ?x <http://ex/knows> ?y . "
        "OPTIONAL { ?y <http://ex/name> ?n } FILTER bound(?n) }"
    )
    assert rows == [(f"<{EX}a>", '"Beta"@en'), (f"<{EX}e>", '"alpha"')]


def test_bound_in_disjunction_keeps_rows_an_arm_saves():
    rows = _rows(
        "SELECT ?x WHERE { ?x <http://ex/knows> ?y . "
        "OPTIONAL { ?y <http://ex/name> ?n } "
        'FILTER(bound(?n) || ?x = "never") }'
    )
    assert rows == [(f"<{EX}a>",), (f"<{EX}e>",)]


def test_regex_on_unbound_is_a_type_error():
    rows = _rows(
        "SELECT ?x WHERE { ?x <http://ex/knows> ?y . "
        "OPTIONAL { ?y <http://ex/name> ?n } "
        'FILTER regex(?n, ".") }'
    )
    # Only rows that bound ?n to a literal can match.
    assert rows == [(f"<{EX}a>",), (f"<{EX}e>",)]


def test_bound_conjunction_with_comparison():
    rows = _rows(
        "SELECT ?x WHERE { ?x <http://ex/knows> ?y . "
        "OPTIONAL { ?y <http://ex/name> ?n } "
        'FILTER(bound(?n) && regex(?n, "alph")) }'
    )
    assert rows == [(f"<{EX}e>",)]
