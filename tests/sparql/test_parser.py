"""SPARQL subset parser."""

import pytest

from repro.errors import ParseError
from repro.sparql.ast import SparqlTerm, SparqlVariable
from repro.sparql.parser import parse_sparql


def test_basic_select():
    q = parse_sparql("SELECT ?x WHERE { ?x <http://p> <http://o> }")
    assert q.variables == ("x",)
    assert len(q.patterns) == 1
    assert q.patterns[0].subject == SparqlVariable("x")
    assert q.patterns[0].predicate == SparqlTerm("<http://p>")


def test_prefix_expansion():
    q = parse_sparql(
        """
        PREFIX ub: <http://example.org/ub#>
        SELECT ?x WHERE { ?x ub:memberOf ?y }
        """
    )
    assert q.prefixes["ub"] == "http://example.org/ub#"
    assert q.patterns[0].predicate == SparqlTerm("<http://example.org/ub#memberOf>")


def test_unknown_prefix_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x nope:p ?y }")


def test_multiple_patterns_dot_separated():
    q = parse_sparql(
        "SELECT ?x ?y WHERE { ?x <p:a> ?y . ?y <p:b> ?x . }"
    )
    assert len(q.patterns) == 2


def test_trailing_dot_optional():
    q1 = parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y }")
    q2 = parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y . }")
    assert q1.patterns == q2.patterns


def test_where_keyword_optional():
    q = parse_sparql("SELECT ?x { ?x <p:a> ?y }")
    assert len(q.patterns) == 1


def test_select_star():
    q = parse_sparql("SELECT * WHERE { ?a <p:x> ?b }")
    assert q.select_all
    assert q.variables == ()


def test_distinct_flag():
    q = parse_sparql("SELECT DISTINCT ?x WHERE { ?x <p:a> ?y }")
    assert q.distinct


def test_literal_object():
    q = parse_sparql('SELECT ?x WHERE { ?x <p:name> "Alice" }')
    assert q.patterns[0].object == SparqlTerm('"Alice"')


def test_comments_ignored():
    q = parse_sparql(
        """
        # leading comment
        SELECT ?x WHERE {
          ?x <p:a> ?y  # trailing comment
        }
        """
    )
    assert len(q.patterns) == 1


def test_empty_select_list_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT WHERE { ?x <p:a> ?y }")


def test_empty_where_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { }")


def test_unterminated_where_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y")


def test_trailing_tokens_raise():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y } garbage")


def test_missing_select_raises():
    with pytest.raises(ParseError):
        parse_sparql("PREFIX x: <http://x#>")


def test_bad_character_reports_offset():
    with pytest.raises(ParseError) as excinfo:
        parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y } @@@")
    assert excinfo.value.position is not None


def test_incomplete_pattern_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p:a> }")


def test_paper_query_2_parses():
    from repro.lubm.queries import lubm_query

    q = parse_sparql(lubm_query(2))
    assert len(q.patterns) == 6
    assert q.variables == ("X", "Y", "Z")


# ---------------------------------------------------------------------------
# Expanded grammar: numeric literals, ';'/',' lists, 'a', FILTER, modifiers
# ---------------------------------------------------------------------------
def test_numeric_literal_object_regression():
    """Regression: `?x <p> 42` used to raise "unexpected character '4'"."""
    from repro.sparql.ast import SparqlNumber

    q = parse_sparql("SELECT ?x WHERE { ?x <p> 42 }")
    assert q.patterns[0].object == SparqlNumber("42")


def test_decimal_and_negative_numbers():
    from repro.sparql.ast import SparqlNumber

    q = parse_sparql("SELECT ?x WHERE { ?x <p> -3.25 }")
    assert q.patterns[0].object == SparqlNumber("-3.25")
    assert q.patterns[0].object.value == -3.25


def test_predicate_object_list_semicolon_regression():
    """Regression: the ';' shorthand used to raise
    "unexpected character ';'"."""
    q = parse_sparql("SELECT ?x WHERE { ?x <p> ?y ; <q> ?z . }")
    assert len(q.patterns) == 2
    assert q.patterns[0].subject == q.patterns[1].subject
    assert q.patterns[0].predicate == SparqlTerm("<p>")
    assert q.patterns[1].predicate == SparqlTerm("<q>")


def test_object_list_comma():
    q = parse_sparql("SELECT ?x WHERE { ?x <p> ?y , ?z , <o> }")
    assert len(q.patterns) == 3
    assert all(p.predicate == SparqlTerm("<p>") for p in q.patterns)
    assert q.patterns[2].object == SparqlTerm("<o>")


def test_combined_semicolon_and_comma_lists():
    q = parse_sparql(
        "SELECT ?s WHERE { ?s <p> ?a , ?b ; <q> ?c . ?t <r> ?d }"
    )
    assert [
        (p.predicate.lexical, getattr(p.object, "name", None))
        for p in q.patterns
    ] == [("<p>", "a"), ("<p>", "b"), ("<q>", "c"), ("<r>", "d")]


def test_trailing_semicolon_is_legal():
    q1 = parse_sparql("SELECT ?x WHERE { ?x <p> ?y ; . }")
    q2 = parse_sparql("SELECT ?x WHERE { ?x <p> ?y ; }")
    assert q1.patterns == q2.patterns


def test_a_shorthand_is_rdf_type():
    from repro.rdf.vocabulary import RDF_TYPE

    q = parse_sparql("SELECT ?x WHERE { ?x a <http://ns#Student> }")
    assert q.patterns[0].predicate == SparqlTerm(RDF_TYPE)


def test_language_tagged_literal():
    q = parse_sparql('SELECT ?x WHERE { ?x <p> "chat"@fr }')
    assert q.patterns[0].object == SparqlTerm('"chat"@fr')


def test_datatyped_literal():
    q = parse_sparql(
        'SELECT ?x WHERE { ?x <p> "5"^^<http://www.w3.org/2001/XMLSchema#int> }'
    )
    assert q.patterns[0].object == SparqlTerm(
        '"5"^^<http://www.w3.org/2001/XMLSchema#int>'
    )


def test_filter_comparison_parses():
    from repro.sparql.ast import FilterComparison, SparqlNumber, SparqlVariable

    q = parse_sparql("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y > 3) }")
    assert q.filters == (
        FilterComparison(SparqlVariable("y"), ">", SparqlNumber("3")),
    )


@pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
def test_all_comparison_operators(op):
    q = parse_sparql(
        f"SELECT ?x WHERE {{ ?x <p> ?y . FILTER(?y {op} 7) }}"
    )
    assert q.filters[0].op == op


def test_filter_requires_parentheses():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p> ?y . FILTER ?y > 3 }")


def test_filter_requires_comparison_operator():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y ?z) }")


def test_limit_and_offset():
    q = parse_sparql("SELECT ?x WHERE { ?x <p> ?y } LIMIT 10 OFFSET 3")
    assert q.limit == 10
    assert q.offset == 3


def test_offset_before_limit():
    q = parse_sparql("SELECT ?x WHERE { ?x <p> ?y } OFFSET 3 LIMIT 10")
    assert (q.limit, q.offset) == (10, 3)


def test_limit_rejects_non_integer():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p> ?y } LIMIT 2.5")
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p> ?y } LIMIT -1")


def test_order_by_keys():
    from repro.sparql.ast import OrderCondition

    q = parse_sparql(
        "SELECT ?x ?y WHERE { ?x <p> ?y } ORDER BY DESC(?y) ?x LIMIT 4"
    )
    assert q.order_by == (
        OrderCondition("y", descending=True),
        OrderCondition("x", descending=False),
    )
    assert q.limit == 4


def test_order_by_without_keys_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p> ?y } ORDER BY LIMIT 2")


def test_filter_between_patterns():
    q = parse_sparql(
        "SELECT ?x WHERE { ?x <p> ?y . FILTER(?y != 0) . ?y <q> ?z }"
    )
    assert len(q.patterns) == 2
    assert len(q.filters) == 1


def test_prefixed_datatype_is_expanded():
    q = parse_sparql(
        """
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        SELECT ?x WHERE { ?x <p> "5"^^xsd:int }
        """
    )
    assert q.patterns[0].object == SparqlTerm(
        '"5"^^<http://www.w3.org/2001/XMLSchema#int>'
    )


def test_prefixed_datatype_unknown_prefix_raises():
    with pytest.raises(ParseError):
        parse_sparql('SELECT ?x WHERE { ?x <p> "5"^^nope:int }')


def test_carets_inside_literal_body_are_not_a_datatype():
    q = parse_sparql('SELECT ?x WHERE { ?x <p> "a^^b" }')
    assert q.patterns[0].object == SparqlTerm('"a^^b"')
