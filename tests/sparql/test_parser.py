"""SPARQL subset parser."""

import pytest

from repro.errors import ParseError
from repro.sparql.ast import SparqlTerm, SparqlVariable
from repro.sparql.parser import parse_sparql


def test_basic_select():
    q = parse_sparql("SELECT ?x WHERE { ?x <http://p> <http://o> }")
    assert q.variables == ("x",)
    assert len(q.patterns) == 1
    assert q.patterns[0].subject == SparqlVariable("x")
    assert q.patterns[0].predicate == SparqlTerm("<http://p>")


def test_prefix_expansion():
    q = parse_sparql(
        """
        PREFIX ub: <http://example.org/ub#>
        SELECT ?x WHERE { ?x ub:memberOf ?y }
        """
    )
    assert q.prefixes["ub"] == "http://example.org/ub#"
    assert q.patterns[0].predicate == SparqlTerm("<http://example.org/ub#memberOf>")


def test_unknown_prefix_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x nope:p ?y }")


def test_multiple_patterns_dot_separated():
    q = parse_sparql(
        "SELECT ?x ?y WHERE { ?x <p:a> ?y . ?y <p:b> ?x . }"
    )
    assert len(q.patterns) == 2


def test_trailing_dot_optional():
    q1 = parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y }")
    q2 = parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y . }")
    assert q1.patterns == q2.patterns


def test_where_keyword_optional():
    q = parse_sparql("SELECT ?x { ?x <p:a> ?y }")
    assert len(q.patterns) == 1


def test_select_star():
    q = parse_sparql("SELECT * WHERE { ?a <p:x> ?b }")
    assert q.select_all
    assert q.variables == ()


def test_distinct_flag():
    q = parse_sparql("SELECT DISTINCT ?x WHERE { ?x <p:a> ?y }")
    assert q.distinct


def test_literal_object():
    q = parse_sparql('SELECT ?x WHERE { ?x <p:name> "Alice" }')
    assert q.patterns[0].object == SparqlTerm('"Alice"')


def test_comments_ignored():
    q = parse_sparql(
        """
        # leading comment
        SELECT ?x WHERE {
          ?x <p:a> ?y  # trailing comment
        }
        """
    )
    assert len(q.patterns) == 1


def test_empty_select_list_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT WHERE { ?x <p:a> ?y }")


def test_empty_where_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { }")


def test_unterminated_where_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y")


def test_trailing_tokens_raise():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y } garbage")


def test_missing_select_raises():
    with pytest.raises(ParseError):
        parse_sparql("PREFIX x: <http://x#>")


def test_bad_character_reports_offset():
    with pytest.raises(ParseError) as excinfo:
        parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y } @@@")
    assert excinfo.value.position is not None


def test_incomplete_pattern_raises():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { ?x <p:a> }")


def test_paper_query_2_parses():
    from repro.lubm.queries import lubm_query

    q = parse_sparql(lubm_query(2))
    assert len(q.patterns) == 6
    assert q.variables == ("X", "Y", "Z")
