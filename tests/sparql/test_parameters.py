"""$name placeholders: parsing, translation, and late binding."""

import pytest

from repro.core.query import (
    Atom,
    Constant,
    NumericLiteral,
    Parameter,
    Variable,
    normalize,
    query_parameters,
    substitute_parameters,
)
from repro.errors import ParseError, PlanningError
from repro.sparql.ast import SparqlParameter
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query
from repro.storage.vertical import TRIPLES_RELATION


def _query(text):
    return sparql_to_query(parse_sparql(text))


def test_parameter_parses_in_every_pattern_position():
    parsed = parse_sparql("SELECT ?x WHERE { $s <http://p> ?x . ?x $p $o }")
    (first, second) = parsed.patterns
    assert first.subject == SparqlParameter("s")
    assert second.predicate == SparqlParameter("p")
    assert second.object == SparqlParameter("o")


def test_subject_and_object_parameters_translate_to_parameter_terms():
    query = _query("SELECT ?x WHERE { $s <http://ex/p> ?x }")
    assert query.atoms[0].terms[0] == Parameter("s")
    assert query.atoms[0].parameters == (Parameter("s"),)


def test_predicate_parameter_targets_the_triples_view():
    query = _query("SELECT ?x ?y WHERE { ?x $p ?y }")
    atom = query.atoms[0]
    assert atom.relation == TRIPLES_RELATION
    assert atom.terms == (Variable("x"), Parameter("p"), Variable("y"))


def test_parameter_in_filter_operand():
    query = _query(
        "SELECT ?x WHERE { ?x <http://ex/age> ?a FILTER(?a > $min) }"
    )
    assert query.filters[0].rhs == Parameter("min")
    assert query_parameters(query) == frozenset({"min"})


def test_query_parameters_collects_across_union_and_optional():
    query = _query(
        "SELECT ?x WHERE { { ?x <http://ex/p> $a } UNION "
        "{ ?x <http://ex/q> $b . OPTIONAL { ?x <http://ex/r> ?y "
        "FILTER(?y > $c) } } }"
    )
    assert query_parameters(query) == frozenset({"a", "b", "c"})


def test_substitute_string_and_numeric_values():
    query = _query(
        "SELECT ?x WHERE { ?x <http://ex/p> $v . ?x <http://ex/n> $k }"
    )
    concrete = substitute_parameters(
        query, {"v": "<http://ex/o>", "k": 42}
    )
    assert concrete.atoms[0].terms[1] == Constant("<http://ex/o>")
    assert concrete.atoms[1].terms[1] == Constant(NumericLiteral("42"))
    assert query_parameters(concrete) == frozenset()


def test_substitute_rejects_missing_and_unknown_values():
    query = _query("SELECT ?x WHERE { ?x <http://ex/p> $v }")
    with pytest.raises(PlanningError, match="missing: v"):
        substitute_parameters(query, {})
    with pytest.raises(PlanningError, match="unknown: w"):
        substitute_parameters(query, {"v": "<http://ex/o>", "w": "x"})


def test_substitute_rejects_non_term_values():
    query = _query("SELECT ?x WHERE { ?x <http://ex/p> $v }")
    with pytest.raises(PlanningError, match="values must be"):
        substitute_parameters(query, {"v": ["not", "a", "term"]})


def test_unsubstituted_parameter_cannot_normalize():
    query = _query("SELECT ?x WHERE { ?x <http://ex/p> $v }")
    with pytest.raises(PlanningError, match="unsubstituted"):
        normalize(query)


def test_parameter_cannot_be_projected():
    with pytest.raises(ParseError):
        parse_sparql("SELECT $x WHERE { ?y <http://ex/p> $x }")


def test_substitution_is_pure():
    """The template is reusable: substitution never mutates it."""
    query = _query("SELECT ?x WHERE { ?x <http://ex/p> $v }")
    first = substitute_parameters(query, {"v": "<http://ex/a>"})
    second = substitute_parameters(query, {"v": "<http://ex/b>"})
    assert first.atoms[0].terms[1] == Constant("<http://ex/a>")
    assert second.atoms[0].terms[1] == Constant("<http://ex/b>")
    assert query.atoms[0].terms[1] == Parameter("v")


def test_atom_requires_terms_still_enforced():
    with pytest.raises(PlanningError):
        Atom("p", ())
