"""BGP -> conjunctive-query translation over the VP schema."""

import pytest

from repro.core.query import Constant, Variable
from repro.errors import ParseError
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query


def _translate(text):
    return sparql_to_query(parse_sparql(text))


def test_pattern_becomes_atom():
    q = _translate("SELECT ?x WHERE { ?x <http://ns#memberOf> ?y }")
    assert len(q.atoms) == 1
    atom = q.atoms[0]
    assert atom.relation == "memberOf"
    assert atom.terms == (Variable("x"), Variable("y"))


def test_constants_become_constant_terms():
    q = _translate(
        'SELECT ?x WHERE { ?x <http://ns#worksFor> <http://www.Dept0.edu> }'
    )
    assert q.atoms[0].terms[1] == Constant("<http://www.Dept0.edu>")


def test_rdf_type_maps_to_type_relation():
    q = _translate(
        """
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?x WHERE { ?x rdf:type <http://ns#Student> }
        """
    )
    assert q.atoms[0].relation == "type"


def test_projection_follows_select_list():
    q = _translate(
        "SELECT ?b ?a WHERE { ?a <http://ns#p> ?b }"
    )
    assert q.projection == (Variable("b"), Variable("a"))


def test_select_star_projects_in_appearance_order():
    q = _translate("SELECT * WHERE { ?b <http://ns#p> ?a . ?a <http://ns#q> ?c }")
    assert q.projection == (Variable("b"), Variable("a"), Variable("c"))


def test_variable_predicate_rejected():
    with pytest.raises(ParseError):
        _translate("SELECT ?x WHERE { ?x ?p ?y }")


def test_unknown_projection_variable_rejected():
    with pytest.raises(ParseError):
        _translate("SELECT ?z WHERE { ?x <http://ns#p> ?y }")


def test_literal_subject_constant():
    q = _translate('SELECT ?x WHERE { <http://me> <http://ns#says> ?x }')
    assert q.atoms[0].terms[0] == Constant("<http://me>")


def test_paper_query_2_shape():
    from repro.lubm.queries import lubm_query

    q = sparql_to_query(parse_sparql(lubm_query(2)))
    assert len(q.atoms) == 6
    relations = sorted(a.relation for a in q.atoms)
    assert relations == [
        "memberOf",
        "subOrganizationOf",
        "type",
        "type",
        "type",
        "undergraduateDegreeFrom",
    ]
