"""BGP -> conjunctive-query translation over the VP schema."""

import pytest

from repro.core.query import Constant, NumericLiteral, Variable
from repro.errors import ParseError
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query
from repro.storage.vertical import TRIPLES_RELATION


def _translate(text):
    return sparql_to_query(parse_sparql(text))


def test_pattern_becomes_atom():
    q = _translate("SELECT ?x WHERE { ?x <http://ns#memberOf> ?y }")
    assert len(q.atoms) == 1
    atom = q.atoms[0]
    assert atom.relation == "memberOf"
    assert atom.terms == (Variable("x"), Variable("y"))


def test_constants_become_constant_terms():
    q = _translate(
        'SELECT ?x WHERE { ?x <http://ns#worksFor> <http://www.Dept0.edu> }'
    )
    assert q.atoms[0].terms[1] == Constant("<http://www.Dept0.edu>")


def test_rdf_type_maps_to_type_relation():
    q = _translate(
        """
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?x WHERE { ?x rdf:type <http://ns#Student> }
        """
    )
    assert q.atoms[0].relation == "type"


def test_projection_follows_select_list():
    q = _translate(
        "SELECT ?b ?a WHERE { ?a <http://ns#p> ?b }"
    )
    assert q.projection == (Variable("b"), Variable("a"))


def test_select_star_projects_in_appearance_order():
    q = _translate("SELECT * WHERE { ?b <http://ns#p> ?a . ?a <http://ns#q> ?c }")
    assert q.projection == (Variable("b"), Variable("a"), Variable("c"))


def test_variable_predicate_scans_triples_view():
    q = _translate("SELECT ?x WHERE { ?x ?p ?y }")
    assert len(q.atoms) == 1
    atom = q.atoms[0]
    assert atom.relation == TRIPLES_RELATION
    assert atom.terms == (Variable("x"), Variable("p"), Variable("y"))


def test_unknown_projection_variable_rejected():
    with pytest.raises(ParseError):
        _translate("SELECT ?z WHERE { ?x <http://ns#p> ?y }")


def test_literal_subject_constant():
    q = _translate('SELECT ?x WHERE { <http://me> <http://ns#says> ?x }')
    assert q.atoms[0].terms[0] == Constant("<http://me>")


def test_paper_query_2_shape():
    from repro.lubm.queries import lubm_query

    q = sparql_to_query(parse_sparql(lubm_query(2)))
    assert len(q.atoms) == 6
    relations = sorted(a.relation for a in q.atoms)
    assert relations == [
        "memberOf",
        "subOrganizationOf",
        "type",
        "type",
        "type",
        "undergraduateDegreeFrom",
    ]


# ---------------------------------------------------------------------------
# Expanded constructs: numbers, filters + pushdown, modifiers
# ---------------------------------------------------------------------------
def test_numeric_pattern_literal_matches_all_stored_forms():
    """`?x <p> 42` matches `"42"` and `"42"^^xsd:integer` at bind time."""
    q = _translate("SELECT ?x WHERE { ?x <http://ns#age> 42 }")
    term = q.atoms[0].terms[1]
    assert term == Constant(NumericLiteral("42"))
    assert term.value.candidate_forms() == (
        '"42"',
        '"42"^^<http://www.w3.org/2001/XMLSchema#integer>',
    )


def test_shorthand_lists_share_subject():
    q = _translate(
        "SELECT ?n WHERE { ?x a <http://ns#T> ; <http://ns#name> ?n . }"
    )
    assert [a.relation for a in q.atoms] == ["type", "name"]
    assert q.atoms[0].terms[0] == q.atoms[1].terms[0] == Variable("x")


def test_equality_filter_pushed_down_to_selection():
    q = _translate(
        "SELECT ?x WHERE { ?x <http://ns#p> ?y . FILTER(?y = <http://o>) }"
    )
    assert q.filters == ()
    assert q.atoms[0].terms[1] == Constant("<http://o>")


def test_equality_filter_pushdown_reversed_operands():
    q = _translate(
        'SELECT ?x WHERE { ?x <http://ns#p> ?y . FILTER("v" = ?y) }'
    )
    assert q.filters == ()
    assert q.atoms[0].terms[1] == Constant('"v"')


def test_projected_equality_filter_stays_post_join():
    q = _translate(
        "SELECT ?x ?y WHERE { ?x <http://ns#p> ?y . "
        "FILTER(?y = <http://o>) }"
    )
    assert len(q.filters) == 1
    assert q.atoms[0].terms[1] == Variable("y")


def test_numeric_equality_filter_stays_post_join():
    """Numeric = compares by value (42 matches "42.0"), never by key."""
    q = _translate(
        "SELECT ?x WHERE { ?x <http://ns#p> ?y . FILTER(?y = 42) }"
    )
    assert len(q.filters) == 1
    assert q.atoms[0].terms[1] == Variable("y")


def test_filter_variable_must_occur_in_where():
    with pytest.raises(ParseError):
        _translate(
            "SELECT ?x WHERE { ?x <http://ns#p> ?y . FILTER(?zz > 1) }"
        )


def test_order_by_variable_must_be_projected():
    with pytest.raises(ParseError):
        _translate(
            "SELECT ?x WHERE { ?x <http://ns#p> ?y } ORDER BY ?y"
        )


def test_numeric_predicate_rejected():
    with pytest.raises(ParseError):
        _translate("SELECT ?x WHERE { ?x 5 ?y }")


def test_modifiers_carry_through():
    q = _translate(
        "SELECT ?x WHERE { ?x <http://ns#p> ?y } "
        "ORDER BY DESC(?x) LIMIT 7 OFFSET 2"
    )
    assert q.limit == 7
    assert q.offset == 2
    assert q.order_by[0].variable == Variable("x")
    assert q.order_by[0].descending
