"""Parsing and translation of UNION, OPTIONAL, and variable predicates."""

import pytest

from repro.core.query import (
    Atom,
    ConjunctiveQuery,
    Constant,
    UnionQuery,
    Variable,
)
from repro.errors import ParseError
from repro.sparql.ast import GroupGraphPattern, UnionGraphPattern
from repro.sparql.parser import parse_sparql
from repro.sparql.translate import sparql_to_query
from repro.storage.vertical import TRIPLES_RELATION


def _translate(text):
    return sparql_to_query(parse_sparql(text))


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def test_parse_union_two_branches():
    q = parse_sparql(
        "SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?y } }"
    )
    assert q.patterns == ()
    assert len(q.unions) == 1
    assert isinstance(q.unions[0], UnionGraphPattern)
    assert len(q.unions[0].branches) == 2


def test_parse_union_three_branches():
    q = parse_sparql(
        "SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?y } "
        "UNION { ?x <p:c> ?y } }"
    )
    assert len(q.unions[0].branches) == 3


def test_parse_optional():
    q = parse_sparql(
        "SELECT ?x ?n WHERE { ?x <p:a> ?y . OPTIONAL { ?x <p:n> ?n } }"
    )
    assert len(q.patterns) == 1
    assert len(q.optionals) == 1
    assert isinstance(q.optionals[0], GroupGraphPattern)
    assert len(q.optionals[0].patterns) == 1


def test_parse_optional_with_filter():
    q = parse_sparql(
        "SELECT ?x WHERE { ?x <p:a> ?y . "
        "OPTIONAL { ?x <p:n> ?n . FILTER(?n > 3) } }"
    )
    assert len(q.optionals[0].filters) == 1


def test_parse_lone_braced_group_merges_into_parent():
    q1 = parse_sparql("SELECT ?x WHERE { { ?x <p:a> ?y } ?y <p:b> ?z }")
    q2 = parse_sparql("SELECT ?x WHERE { ?x <p:a> ?y . ?y <p:b> ?z }")
    assert q1.patterns == q2.patterns
    assert q1.unions == ()


def test_parse_variable_predicate():
    q = parse_sparql("SELECT ?p WHERE { ?x ?p ?y }")
    assert q.patterns[0].predicate.name == "p"


def test_parse_unterminated_union_branch():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?y }")


def test_parse_union_without_second_branch():
    with pytest.raises(ParseError):
        parse_sparql("SELECT ?x WHERE { { ?x <p:a> ?y } UNION }")


# ---------------------------------------------------------------------------
# Translation: UNION
# ---------------------------------------------------------------------------
def test_union_translates_to_two_blocks():
    q = _translate(
        "SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?y } }"
    )
    assert isinstance(q, UnionQuery)
    assert len(q.blocks) == 2
    assert [block.atoms[0].relation for block in q.blocks] == ["a", "b"]


def test_union_distributes_shared_patterns():
    q = _translate(
        "SELECT ?x WHERE { ?x <p:t> ?t . "
        "{ ?x <p:a> ?y } UNION { ?x <p:b> ?y } }"
    )
    assert isinstance(q, UnionQuery)
    assert len(q.blocks) == 2
    for block in q.blocks:
        assert block.atoms[0].relation == "t"
        assert len(block.atoms) == 2


def test_nested_unions_expand_cartesian():
    q = _translate(
        "SELECT ?x WHERE {"
        " { ?x <p:a> ?y } UNION { ?x <p:b> ?y } ."
        " { ?x <p:c> ?z } UNION { ?x <p:d> ?z } }"
    )
    assert isinstance(q, UnionQuery)
    relations = sorted(
        tuple(atom.relation for atom in block.atoms) for block in q.blocks
    )
    assert relations == [("a", "c"), ("a", "d"), ("b", "c"), ("b", "d")]


def test_union_branch_variable_is_projectable():
    q = _translate(
        "SELECT ?y ?z WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?z } }"
    )
    assert isinstance(q, UnionQuery)
    assert q.projection == (Variable("y"), Variable("z"))


def test_union_select_star_spans_branches():
    q = _translate(
        "SELECT * WHERE { { ?a <p:a> ?b } UNION { ?c <p:b> ?d } }"
    )
    assert q.projection == tuple(Variable(v) for v in "abcd")


def test_empty_union_branch_rejected():
    with pytest.raises(ParseError):
        _translate("SELECT ?x WHERE { { ?x <p:a> ?y } UNION { } }")


# ---------------------------------------------------------------------------
# Translation: OPTIONAL
# ---------------------------------------------------------------------------
def test_optional_translates_to_optional_block():
    q = _translate(
        "SELECT ?x ?n WHERE { ?x <p:a> ?y . OPTIONAL { ?x <p:n> ?n } }"
    )
    assert isinstance(q, UnionQuery)
    assert len(q.blocks) == 1
    block = q.blocks[0]
    assert len(block.optionals) == 1
    assert block.optionals[0].atoms[0].relation == "n"


def test_optional_only_variable_is_projectable():
    q = _translate(
        "SELECT ?n WHERE { ?x <p:a> ?y . OPTIONAL { ?x <p:n> ?n } }"
    )
    assert q.projection == (Variable("n"),)


def test_optional_without_required_pattern_rejected():
    with pytest.raises(ParseError):
        _translate("SELECT ?n WHERE { OPTIONAL { ?x <p:n> ?n } }")


def test_nested_optional_rejected():
    with pytest.raises(ParseError):
        _translate(
            "SELECT ?x WHERE { ?x <p:a> ?y . "
            "OPTIONAL { OPTIONAL { ?x <p:n> ?n } } }"
        )


def test_union_inside_optional_rejected():
    with pytest.raises(ParseError):
        _translate(
            "SELECT ?x WHERE { ?x <p:a> ?y . "
            "OPTIONAL { { ?x <p:n> ?n } UNION { ?x <p:m> ?n } } }"
        )


def test_optionals_sharing_unrequired_variable_accepted():
    # A variable two OPTIONALs share without a required binding gets
    # SPARQL's full compatibility-join semantics at execution time (see
    # repro.core.blocks.left_outer_extend); translation accepts it.
    q = _translate(
        "SELECT ?x WHERE { ?x <p:a> ?y . "
        "OPTIONAL { ?x <p:n> ?n } OPTIONAL { ?n <p:m> ?z } }"
    )
    (block,) = q.blocks
    assert len(block.optionals) == 2


def test_optional_filter_variable_must_be_in_scope():
    with pytest.raises(ParseError):
        _translate(
            "SELECT ?x WHERE { ?x <p:a> ?y . "
            "OPTIONAL { ?x <p:n> ?n . FILTER(?zz > 3) } }"
        )


def test_union_with_optional_in_branch():
    q = _translate(
        "SELECT ?x WHERE {"
        " { ?x <p:a> ?y . OPTIONAL { ?x <p:n> ?n } }"
        " UNION { ?x <p:b> ?y } }"
    )
    assert isinstance(q, UnionQuery)
    assert len(q.blocks) == 2
    assert len(q.blocks[0].optionals) == 1
    assert q.blocks[1].optionals == ()


# ---------------------------------------------------------------------------
# Translation: variable predicates
# ---------------------------------------------------------------------------
def test_variable_predicate_with_constant_subject():
    q = _translate("SELECT ?p ?o WHERE { <http://me> ?p ?o }")
    assert isinstance(q, ConjunctiveQuery)
    atom = q.atoms[0]
    assert atom.relation == TRIPLES_RELATION
    assert atom.terms == (
        Constant("<http://me>"),
        Variable("p"),
        Variable("o"),
    )


def test_variable_predicate_mixes_with_concrete_predicates():
    q = _translate("SELECT ?x ?p WHERE { ?x <p:t> ?y . ?y ?p ?z }")
    assert [a.relation for a in q.atoms] == ["t", TRIPLES_RELATION]


def test_repeated_variable_predicate_joins_across_patterns():
    q = _translate("SELECT ?p WHERE { ?x ?p ?y . ?y ?p ?z }")
    assert isinstance(q, ConjunctiveQuery)
    assert q.atoms[0].terms[1] == q.atoms[1].terms[1] == Variable("p")


def test_predicate_equality_filter_pushes_into_triples_atom():
    q = _translate(
        "SELECT ?x WHERE { ?x ?p ?y . FILTER(?p = <http://only>) }"
    )
    assert isinstance(q, ConjunctiveQuery)
    assert q.filters == ()
    assert q.atoms[0].terms[1] == Constant("<http://only>")


# ---------------------------------------------------------------------------
# Interaction with modifiers and pushdown
# ---------------------------------------------------------------------------
def test_union_keeps_modifiers():
    q = _translate(
        "SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?y } } "
        "ORDER BY DESC(?x) LIMIT 4 OFFSET 1"
    )
    assert isinstance(q, UnionQuery)
    assert q.limit == 4
    assert q.offset == 1
    assert q.order_by[0].descending


def test_filter_distributes_into_every_block():
    q = _translate(
        "SELECT ?x ?y WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?y } "
        "FILTER(?y > 3) }"
    )
    assert isinstance(q, UnionQuery)
    for block in q.blocks:
        assert len(block.filters) == 1


def test_filter_variable_from_sibling_branch_is_allowed():
    """A filter var bound in only one branch empties the other branch at
    runtime (unbound comparison = type error), it is not a parse error."""
    q = _translate(
        "SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?z } "
        "FILTER(?y > 3) }"
    )
    assert isinstance(q, UnionQuery)


def test_filter_variable_unknown_everywhere_rejected():
    with pytest.raises(ParseError):
        _translate(
            "SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?z } "
            "FILTER(?zz > 3) }"
        )


def test_pushdown_blocked_by_optional_use():
    """An equality on a variable an OPTIONAL joins on must stay a filter
    (pushing it down would change the left-outer join keys)."""
    q = _translate(
        "SELECT ?x WHERE { ?x <p:a> ?y . OPTIONAL { ?y <p:n> ?n } "
        "FILTER(?y = <http://o>) }"
    )
    assert isinstance(q, UnionQuery)
    assert len(q.blocks[0].filters) == 1
    assert q.blocks[0].atoms[0].terms[1] == Variable("y")


def test_pushdown_applies_per_union_block():
    q = _translate(
        "SELECT ?x WHERE { { ?x <p:a> ?y } UNION { ?x <p:b> ?y } "
        'FILTER(?y = "v") }'
    )
    assert isinstance(q, UnionQuery)
    for block in q.blocks:
        assert block.filters == ()
        assert block.atoms[0].terms[1] == Constant('"v"')


def test_single_block_without_optional_stays_conjunctive():
    q = _translate("SELECT ?x WHERE { ?x <p:a> ?y }")
    assert isinstance(q, ConjunctiveQuery)
