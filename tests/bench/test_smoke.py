"""The benchmark smoke gate: exercised by tier-1, no timing assertions."""

from repro.bench.cli import main
from repro.bench.smoke import (
    GOLDEN_COUNTS_U1_SEED0,
    GOLDEN_PROBE_COUNTS_U1_SEED0,
    run_smoke,
)


def test_run_smoke_passes_on_reference_dataset(dataset):
    report = run_smoke(dataset=dataset)
    assert report.ok, report.failures
    assert report.counts == GOLDEN_COUNTS_U1_SEED0
    assert report.probe_counts == GOLDEN_PROBE_COUNTS_U1_SEED0
    assert report.warmed_tries > 0
    assert report.service_speedup > 0  # reported, never gated
    rendered = report.render()
    assert "smoke: OK" in rendered
    assert "speedup" in rendered


def test_probes_cover_multiblock_constructs():
    """The golden probes lock UNION, OPTIONAL, and variable predicates."""
    from repro.bench.smoke import CONSTRUCT_PROBES

    texts = " ".join(CONSTRUCT_PROBES.values())
    assert "UNION" in texts
    assert "OPTIONAL" in texts
    assert "?x ?p" in texts or "?p <" in texts  # a variable predicate
    assert set(GOLDEN_PROBE_COUNTS_U1_SEED0) == set(CONSTRUCT_PROBES)


def test_run_smoke_detects_count_regression(dataset, monkeypatch):
    import repro.bench.smoke as smoke

    monkeypatch.setitem(smoke.GOLDEN_COUNTS_U1_SEED0, 1, 999)
    report = smoke.run_smoke(dataset=dataset)
    assert not report.ok
    assert any("regression" in failure for failure in report.failures)
    assert "FAILURES" in report.render()


def test_run_smoke_detects_probe_count_regression(dataset, monkeypatch):
    import repro.bench.smoke as smoke

    monkeypatch.setitem(
        smoke.GOLDEN_PROBE_COUNTS_U1_SEED0, "union-professors", 999
    )
    report = smoke.run_smoke(dataset=dataset)
    assert not report.ok
    assert any("union-professors" in failure for failure in report.failures)


def test_scale_knob_multiplies_universities_and_skips_golden_gate(dataset):
    """--scale grows the instance; golden counts gate only the default
    size, so a scaled run over the u1 dataset still passes on agreement."""
    report = run_smoke(dataset=dataset, scale=2)
    assert report.universities == 2
    assert report.ok, report.failures


def test_smoke_cli_subcommand(capsys):
    main(["smoke"])
    out = capsys.readouterr().out
    assert "smoke: OK" in out
    assert "union-professors" in out
