"""The benchmark smoke gate: exercised by tier-1, no timing assertions."""

from repro.bench.cli import main
from repro.bench.smoke import GOLDEN_COUNTS_U1_SEED0, run_smoke


def test_run_smoke_passes_on_reference_dataset(dataset):
    report = run_smoke(dataset=dataset)
    assert report.ok, report.failures
    assert report.counts == GOLDEN_COUNTS_U1_SEED0
    assert report.probe_counts  # the expanded-grammar probes ran
    assert report.warmed_tries > 0
    assert report.service_speedup > 0  # reported, never gated
    rendered = report.render()
    assert "smoke: OK" in rendered
    assert "speedup" in rendered


def test_run_smoke_detects_count_regression(dataset, monkeypatch):
    import repro.bench.smoke as smoke

    monkeypatch.setitem(smoke.GOLDEN_COUNTS_U1_SEED0, 1, 999)
    report = smoke.run_smoke(dataset=dataset)
    assert not report.ok
    assert any("regression" in failure for failure in report.failures)
    assert "FAILURES" in report.render()


def test_smoke_cli_subcommand(capsys):
    main(["smoke"])
    out = capsys.readouterr().out
    assert "smoke: OK" in out
