"""The cluster-tier benchmark gate and its JSON report."""

import json

import pytest

from repro.bench.cluster_bench import render, run_cluster_bench, write_report
from repro.service.cluster.shm import shm_supported

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="shared memory unavailable in this sandbox"
)


@pytest.fixture(scope="module")
def report():
    # Tiny family/rounds: the timing gates adapt to the host's core
    # count; correctness (byte-identical vs single-process, update
    # visibility, shm hygiene) is what the test gates.
    return run_cluster_bench(
        universities=1, seed=0, family=4, rounds=1, workers=2, clients=2,
        p99_target_ms=10_000.0,
    )


def test_cluster_bench_gates(report):
    assert report["byte_identical"]
    assert report["update"]["ok"], report["update"]
    assert report["shm"]["ok"], report["shm"]
    assert report["scaling_ok"]
    assert report["ok"], report


def test_cluster_bench_legs(report):
    workers = [leg["workers"] for leg in report["legs"]]
    assert workers == sorted(set(workers)) and workers[-1] == 2
    for leg in report["legs"]:
        assert leg["failures"] == 0
        assert leg["requests"] > 0
        assert leg["throughput_rps"] > 0
        assert leg["p99_ms"] >= leg["p50_ms"] >= 0
        assert leg["byte_identical"]
    final = report["legs"][-1]
    assert final["worker_stats"]["respawns"] == 0
    assert final["worker_stats"]["max_epoch_lag"] == 0


def test_cluster_bench_report_round_trip(report, tmp_path):
    out = tmp_path / "BENCH_cluster.json"
    write_report(report, str(out))
    parsed = json.loads(out.read_text())
    assert parsed["bench"] == "cluster"
    assert parsed["config"]["workers"] == 2
    assert parsed["ok"] == report["ok"]

    text = render(report)
    assert "cluster bench" in text
    assert "shm clean after shutdown: True" in text
