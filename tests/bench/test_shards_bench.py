"""The sharded-execution benchmark target and its JSON report.

Tier-1 runs restrict the identity leg to a query subset and disable
the timing gate (``min_speedup=0``); byte-for-byte identity and the
update round are asserted at any scale. The pooled scaling leg needs
worker processes over shared memory, so it is exercised only where
``shm_supported()``.
"""

import json

import pytest

from repro.bench.shards_bench import (
    SCATTER_FAMILY,
    render,
    run_shards_bench,
    write_report,
)
from repro.service.cluster.shm import shm_supported

SMOKE_QUERIES = (1, 2, 4, 9)


def test_identity_leg_report_shape(tmp_path):
    report = run_shards_bench(
        shards=3, skip_scaling=True, query_ids=SMOKE_QUERIES
    )
    assert report["ok"], report
    identity = report["identity"]
    assert identity["mismatches"] == []
    assert identity["shard_counts"] == [2, 3]
    assert identity["queries"] == sorted(SMOKE_QUERIES)
    assert len(identity["engines"]) == 5
    # 5 engines x 4 queries x 2 shard counts x 2 stages (load + update)
    assert identity["checked"] == 80
    update = identity["update"]
    assert update["counts_agree"]
    assert update["added"] > 0 and update["removed"] > 0
    assert report["scaling"] == {"skipped": True, "ok": True}
    assert "identity" in render(report)

    out = tmp_path / "BENCH_shards.json"
    write_report(report, str(out))
    parsed = json.loads(out.read_text())
    assert parsed["bench"] == "shards"
    assert parsed["identity"]["checked"] == 80


@pytest.mark.skipif(
    not shm_supported(), reason="shared memory unavailable in this sandbox"
)
def test_scaling_leg_runs_pooled_curve():
    report = run_shards_bench(
        shards=2,
        rounds=1,
        clients=2,
        min_speedup=0.0,
        query_ids=(1,),
    )
    assert report["ok"], report
    scaling = report["scaling"]
    assert [leg["shards"] for leg in scaling["legs"]] == [1, 2]
    assert scaling["rows_agree"]
    assert scaling["family"] == sorted(SCATTER_FAMILY)
    assert all(leg["queries_per_s"] > 0 for leg in scaling["legs"])
    rendered = render(report)
    assert "scaling speedup" in rendered


def test_shards_bench_rejects_single_shard():
    with pytest.raises(ValueError):
        run_shards_bench(shards=1)


def test_cli_shards_target(tmp_path, capsys, monkeypatch):
    from repro.bench import cli as bench_cli
    from repro.bench.cli import main

    calls = {}

    def fake_run(**kwargs):
        calls.update(kwargs)
        return {
            "bench": "shards",
            "config": {
                "triples": 1,
                "universities": 1,
                "seed": 0,
            },
            "identity": {
                "shard_counts": [2, 3],
                "engines": ["emptyheaded"],
                "queries": [1],
                "checked": 2,
                "mismatches": [],
                "update": {
                    "added": 1,
                    "removed": 1,
                    "counts_agree": True,
                },
                "ok": True,
            },
            "scaling": {"skipped": True, "ok": True},
            "ok": True,
        }

    import repro.bench.shards_bench as shards_bench

    monkeypatch.setattr(shards_bench, "run_shards_bench", fake_run)
    out = tmp_path / "BENCH_shards.json"
    main(["shards", "--shards", "3", "--out", str(out)])
    captured = capsys.readouterr().out
    assert "shards bench" in captured
    assert out.exists()
    assert calls["shards"] == 3
    assert calls["universities"] == 1
