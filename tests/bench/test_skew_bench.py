"""The skew benchmark target and its JSON report.

The tier-1 runs use a scaled-down store and gate only on correctness
(``min_speedup=0``): timing thresholds belong to the CI bench job, not
the unit suite. The plan-disposition counters and cross-leg row
agreement are asserted at any scale.
"""

import json

from repro.bench.skew_bench import TEMPLATE, run_skew_bench, write_report


def test_skew_bench_report_shape(tmp_path):
    report = run_skew_bench(
        hot_rows=400,
        cold_values=6,
        fanout=2,
        flags=5,
        requests=60,
        seed=0,
        min_speedup=0.0,
    )
    assert report["ok"], report
    assert report["agrees"]
    assert report["both_paths_fired"]
    on = report["reoptimize_on"]
    off = report["reoptimize_off"]
    assert on["requests"] == off["requests"] == 60
    assert on["plans_reoptimized"] > 0
    assert on["plans_retained"] > 0
    assert off["plans_reoptimized"] == 0
    assert on["hot_p50_ms"] >= 0 and off["hot_p50_ms"] >= 0
    assert 0 < report["config"]["hot_requests"] < on["requests"]
    assert on["plans_reoptimized"] == report["config"]["hot_requests"]
    assert "$v" in report["template"] and "$v" in TEMPLATE

    out = tmp_path / "BENCH_skew.json"
    write_report(report, str(out))
    parsed = json.loads(out.read_text())
    assert parsed["bench"] == "skew"
    assert parsed["config"]["hot_rows"] == 400


def test_cli_skew_target(tmp_path, capsys):
    from repro.bench.cli import main

    out = tmp_path / "BENCH_skew.json"
    main(
        [
            "skew",
            "--hot-rows",
            "400",
            "--cold-values",
            "6",
            "--fanout",
            "2",
            "--requests",
            "60",
            "--min-speedup",
            "0",
            "--out",
            str(out),
        ]
    )
    printed = capsys.readouterr().out
    assert "hot-value p50 speedup" in printed
    assert json.loads(out.read_text())["ok"] is True
