"""The paper's seven-run measurement protocol."""

import pytest

from repro.bench.harness import BenchmarkResult, measure, run_paper_protocol
from repro.bench.report import format_relative, format_speedup, format_table


def test_measure_runs_n_times():
    calls = []
    result = measure(lambda: calls.append(1), repetitions=7)
    assert len(calls) == 7
    assert len(result.runs) == 7


def test_paper_average_discards_best_and_worst():
    result = BenchmarkResult("q", runs=[5.0, 1.0, 2.0, 3.0, 100.0])
    # Discard 1.0 and 100.0; mean of 2, 3, 5.
    assert result.paper_average == pytest.approx(10.0 / 3)
    assert result.best == 1.0
    assert result.milliseconds == pytest.approx(10.0 / 3 * 1e3)


def test_paper_average_small_sample():
    assert BenchmarkResult("q", runs=[2.0]).paper_average == 2.0
    assert BenchmarkResult("q", runs=[2.0, 4.0]).paper_average == 2.0


def test_measure_captures_output_rows():
    class FakeResult:
        num_rows = 42

    result = measure(lambda: FakeResult(), repetitions=3)
    assert result.output_rows == 42


def test_run_paper_protocol_shape():
    class FakeEngine:
        def execute_sparql(self, text):
            class R:
                num_rows = 1
            return R()

    cells = run_paper_protocol(
        {"e1": FakeEngine(), "e2": FakeEngine()},
        {1: "SELECT", 2: "SELECT"},
        repetitions=3,
    )
    assert set(cells) == {("e1", 1), ("e1", 2), ("e2", 1), ("e2", 2)}
    assert all(len(c.runs) == 3 for c in cells.values())


def test_format_table_aligned():
    text = format_table(
        ["Query", "EH"], [["Q1", "1.00x"], ["Q14", "325.02x"]], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "Query" in lines[1]
    assert len(lines) == 5


def test_format_helpers():
    assert format_relative(1.0) == "1.00x"
    assert format_speedup(None) == "-"
    assert format_speedup(234.49) == "234.49x"
