"""The serving-layer benchmark target and its JSON report."""

import json

from repro.bench.service_bench import (
    TEMPLATE,
    run_service_bench,
    write_report,
)


def test_service_bench_report_shape(tmp_path):
    report = run_service_bench(
        universities=1, seed=0, family=8, rounds=2, workers=2
    )
    assert report["ok"], report
    assert report["agrees"]
    assert report["concurrent"]["matches_serial"]
    assert report["update"]["safe"]
    for leg in ("reparse", "prepared", "prepared_no_result_cache"):
        assert report[leg]["requests"] == 16
        assert report[leg]["p50_ms"] >= 0
        assert report[leg]["p95_ms"] >= report[leg]["p50_ms"]
    assert report["template_vs_reparse_speedup"] > 0
    assert report["late_binding_speedup"] > 0
    assert report["cache"]["bind_misses"] >= 8
    assert "$prof" in report["template"] and "$prof" in TEMPLATE

    out = tmp_path / "BENCH_service.json"
    write_report(report, str(out))
    parsed = json.loads(out.read_text())
    assert parsed["bench"] == "service"
    assert parsed["config"]["family"] == 8


def test_cli_service_target(tmp_path, capsys):
    from repro.bench.cli import main

    out = tmp_path / "BENCH_service.json"
    main(
        [
            "service",
            "--family",
            "5",
            "--rounds",
            "2",
            "--workers",
            "2",
            "--out",
            str(out),
        ]
    )
    printed = capsys.readouterr().out
    assert "speedup" in printed
    assert json.loads(out.read_text())["ok"] is True
