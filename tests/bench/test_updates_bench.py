"""Smoke test of the update-path benchmark (tiny instance, no timing
assertions — wall-clock gates are exactly what the test suite avoids)."""

from repro.bench.updates_bench import render, run_updates_bench


def test_updates_bench_runs_and_gates_correctness():
    report = run_updates_bench(universities=1, seed=0, batches=2, batch_size=20)
    assert report["ok"]
    assert report["agrees"]
    assert report["touched_probe_grew"]
    assert report["config"]["batch_triples"] == 40
    assert report["delta"]["steps"] == report["rebuild"]["steps"] == 4
    assert report["update_query_speedup"] > 0
    assert "monetdb-like" not in report["config"]["timed_engines"]
    assert "monetdb-like" in report["config"]["engines"]
    text = render(report)
    assert "updates bench" in text and "speedup" in text
