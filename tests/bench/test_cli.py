"""The repro-lubm command-line interface."""

import pytest

from repro.bench.cli import main


def test_generate_writes_ntriples(tmp_path, capsys):
    out = tmp_path / "tiny.nt"
    main(["generate", "--universities", "1", "--seed", "2", "--out", str(out)])
    captured = capsys.readouterr().out
    assert "wrote" in captured
    lines = out.read_text(encoding="utf-8").splitlines()
    assert len(lines) > 50_000
    assert lines[0].endswith(" .")


def test_query_subcommand_runs(capsys):
    main(["query", "--query", "11", "--show", "3"])
    captured = capsys.readouterr().out
    assert "0 rows" in captured  # Q11 is empty without inference


def test_query_with_explain(capsys):
    main(["query", "--query", "14", "--explain"])
    captured = capsys.readouterr().out
    assert "global order" in captured


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])
