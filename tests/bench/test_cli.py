"""The repro-lubm command-line interface."""

import pytest

from repro.bench.cli import main


def test_generate_writes_ntriples(tmp_path, capsys):
    out = tmp_path / "tiny.nt"
    main(["generate", "--universities", "1", "--seed", "2", "--out", str(out)])
    captured = capsys.readouterr().out
    assert "wrote" in captured
    lines = out.read_text(encoding="utf-8").splitlines()
    assert len(lines) > 50_000
    assert lines[0].endswith(" .")


def test_query_subcommand_runs(capsys):
    main(["query", "--query", "11", "--show", "3"])
    captured = capsys.readouterr().out
    assert "0 rows" in captured  # Q11 is empty without inference


def test_query_with_explain(capsys):
    main(["query", "--query", "14", "--explain"])
    captured = capsys.readouterr().out
    assert "global order" in captured


def test_topk_subcommand_gates_and_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_topk.json"
    main(["topk", "--repeats", "1", "--out", str(out)])
    captured = capsys.readouterr().out
    assert "top-k streaming bench" in captured
    assert "\nok\n" in captured  # every gate passed
    import json

    report = json.loads(out.read_text(encoding="utf-8"))
    assert report["ok"] is True
    by_check = {c["check"] for c in report["checks"]}
    assert by_check == {
        "rows_identical",
        "slice_bound",
        "scale_independent_enumeration",
        "wall_clock_win",
    }
    # The headline claim, machine-checkable from the artifact: streamed
    # enumeration identical across store scales, materialized growing.
    for leg in report["legs"].values():
        small, large = (leg[str(u)] for u in report["universities"])
        assert large["streamed_enumerated"] <= 1.5 * max(
            small["streamed_enumerated"], 1
        )
        assert large["materialized_enumerated"] > (
            small["materialized_enumerated"]
        )


def test_missing_subcommand_errors():
    with pytest.raises(SystemExit):
        main([])
