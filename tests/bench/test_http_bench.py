"""The live-server HTTP benchmark target and its JSON report."""

import json

import pytest

from repro.bench.http_bench import run_http_bench, write_report


@pytest.fixture(scope="module")
def report():
    # A generous overhead gate: timing ratios are environment noise at
    # this tiny scale; the correctness checks are what the test gates.
    return run_http_bench(
        universities=1, seed=0, family=8, rounds=2, workers=2,
        max_overhead=100.0,
    )


def test_http_bench_correctness_gates(report):
    assert report["agrees"], report["rows_crosschecked"]
    assert report["rows_crosschecked"] == {"json": True, "binary": True}
    assert report["concurrent"]["matches_serial"]
    assert report["smoke"]["ok"], report["smoke"]


def test_http_bench_report_shape(report, tmp_path):
    for leg in ("inproc", "inproc_cached", "http_json", "http_binary"):
        assert report[leg]["requests"] == 16
        assert report[leg]["p50_ms"] >= 0
        assert report[leg]["p95_ms"] >= report[leg]["p50_ms"]
    assert report["json_p50_overhead"] > 0
    assert report["binary_p50_overhead"] > 0
    assert report["serialize_json"]["total_bytes"] > 0
    assert report["serialize_binary"]["total_bytes"] > 0

    out = tmp_path / "BENCH_http.json"
    write_report(report, str(out))
    parsed = json.loads(out.read_text())
    assert parsed["bench"] == "http"
    assert parsed["config"]["family"] == 8
    assert parsed["ok"] == report["ok"]


def test_http_bench_smoke_probe_inventory(report):
    probes = report["smoke"]
    for name in (
        "malformed_query_400_parse_error",
        "unknown_format_406",
        "missing_parameter_400",
        "stats_ok",
        "stats_http_keepalive",
        "explain_ok",
        "explain_missing_parameter_400",
        "update_applied",
        "update_visible_and_restored",
    ):
        assert probes[name], name
