"""Shared fixtures: one generated LUBM dataset per test session."""

from __future__ import annotations

import pytest

from repro import (
    ColumnStoreEngine,
    EmptyHeadedEngine,
    LogicBloxLikeEngine,
    RDF3XLikeEngine,
    TripleBitLikeEngine,
    generate_dataset,
    lubm_queries,
)


@pytest.fixture(scope="session")
def dataset():
    """LUBM(1), fixed seed — about 120k triples."""
    return generate_dataset(universities=1, seed=0)


@pytest.fixture(scope="session")
def queries(dataset):
    """The twelve benchmark queries, parameterized for this dataset."""
    return lubm_queries(dataset.config)


@pytest.fixture(scope="session")
def emptyheaded(dataset):
    return EmptyHeadedEngine(dataset.store)


@pytest.fixture(scope="session")
def logicblox(dataset):
    return LogicBloxLikeEngine(dataset.store)


@pytest.fixture(scope="session")
def monetdb(dataset):
    return ColumnStoreEngine(dataset.store)


@pytest.fixture(scope="session")
def rdf3x(dataset):
    return RDF3XLikeEngine(dataset.store)


@pytest.fixture(scope="session")
def triplebit(dataset):
    return TripleBitLikeEngine(dataset.store)


@pytest.fixture(scope="session")
def all_engines(emptyheaded, logicblox, monetdb, rdf3x, triplebit):
    return {
        "emptyheaded": emptyheaded,
        "logicblox": logicblox,
        "monetdb": monetdb,
        "rdf3x": rdf3x,
        "triplebit": triplebit,
    }
