"""Shared fixtures: one generated LUBM dataset per test session, plus
the runtime lock-order sanitizer threaded under every test."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import runtime

from repro import (
    ColumnStoreEngine,
    EmptyHeadedEngine,
    LogicBloxLikeEngine,
    RDF3XLikeEngine,
    TripleBitLikeEngine,
    generate_dataset,
    lubm_queries,
)


@pytest.fixture(autouse=True)
def lock_order_sanitizer(monkeypatch):
    """Route every project lock through :class:`runtime.OrderedLock`.

    Locks created while a test runs (engines, stores, HTTP servers)
    record their acquisition order into a global graph; an acquisition
    that inverts a previously seen order is recorded — not raised — and
    fails the test here at teardown.  This turns the whole suite into a
    lock-order regression harness for free.
    """
    monkeypatch.setattr(threading, "Lock", runtime.make_lock)
    monkeypatch.setattr(threading, "RLock", runtime.make_rlock)
    runtime.reset()
    yield
    found = runtime.violations()
    if found:
        pytest.fail(
            "runtime lock-order sanitizer recorded violation(s):\n\n"
            + "\n\n".join(violation.render() for violation in found),
            pytrace=False,
        )


@pytest.fixture(scope="session")
def dataset():
    """LUBM(1), fixed seed — about 120k triples."""
    return generate_dataset(universities=1, seed=0)


@pytest.fixture(scope="session")
def queries(dataset):
    """The twelve benchmark queries, parameterized for this dataset."""
    return lubm_queries(dataset.config)


@pytest.fixture(scope="session")
def emptyheaded(dataset):
    return EmptyHeadedEngine(dataset.store)


@pytest.fixture(scope="session")
def logicblox(dataset):
    return LogicBloxLikeEngine(dataset.store)


@pytest.fixture(scope="session")
def monetdb(dataset):
    return ColumnStoreEngine(dataset.store)


@pytest.fixture(scope="session")
def rdf3x(dataset):
    return RDF3XLikeEngine(dataset.store)


@pytest.fixture(scope="session")
def triplebit(dataset):
    return TripleBitLikeEngine(dataset.store)


@pytest.fixture(scope="session")
def all_engines(emptyheaded, logicblox, monetdb, rdf3x, triplebit):
    return {
        "emptyheaded": emptyheaded,
        "logicblox": logicblox,
        "monetdb": monetdb,
        "rdf3x": rdf3x,
        "triplebit": triplebit,
    }
