"""N-Triples loading into engines."""

from repro.engines.emptyheaded import EmptyHeadedEngine
from repro.rdf.loader import load_ntriples, load_ntriples_text

DOC = """\
<http://x/a> <http://ns#knows> <http://x/b> .
<http://x/b> <http://ns#knows> <http://x/a> .
# a comment
<http://x/a> <http://ns#name> "Alice" .
"""


def test_load_from_text():
    store = load_ntriples_text(DOC)
    assert store.num_triples == 3
    assert set(store.tables) == {"knows", "name"}


def test_load_from_file(tmp_path):
    path = tmp_path / "doc.nt"
    path.write_text(DOC, encoding="utf-8")
    store = load_ntriples(str(path))
    assert store.num_triples == 3


def test_loaded_store_is_queryable():
    store = load_ntriples_text(DOC)
    engine = EmptyHeadedEngine(store)
    result = engine.execute_sparql(
        "SELECT ?n WHERE { ?x <http://ns#knows> <http://x/b> . "
        "?x <http://ns#name> ?n }"
    )
    assert engine.decode(result) == [('"Alice"',)]


def test_generator_roundtrip_through_ntriples(tmp_path):
    """repro-lubm generate output loads back to an identical store."""
    from repro.lubm.generator import GeneratorConfig, generate_triples
    from repro.rdf.ntriples import to_ntriples

    config = GeneratorConfig(universities=1, seed=5)
    triples = list(generate_triples(config))[:5000]
    text = to_ntriples(triples)
    store = load_ntriples_text(text)
    assert store.num_triples == 5000
