"""N-Triples reader/writer."""

import pytest

from repro.errors import ParseError
from repro.rdf.model import Triple
from repro.rdf.ntriples import parse_ntriples, to_ntriples


def test_parse_basic_triple():
    [t] = parse_ntriples(['<http://s> <http://p> <http://o> .'])
    assert t == Triple("<http://s>", "<http://p>", "<http://o>")


def test_parse_literal_object():
    [t] = parse_ntriples(['<http://s> <http://p> "hello world" .'])
    assert t.object == '"hello world"'


def test_parse_escaped_literal():
    [t] = parse_ntriples(['<http://s> <http://p> "say \\"hi\\"" .'])
    assert t.object == '"say \\"hi\\""'


def test_parse_language_tag_kept_verbatim():
    [t] = parse_ntriples(['<http://s> <http://p> "bonjour"@fr .'])
    assert t.object == '"bonjour"@fr'


def test_parse_typed_literal_kept_verbatim():
    line = '<http://s> <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#int> .'
    [t] = parse_ntriples([line])
    assert t.object.startswith('"5"^^<')


def test_parse_blank_node():
    [t] = parse_ntriples(["_:b1 <http://p> _:b2 ."])
    assert t.subject == "_:b1"
    assert t.object == "_:b2"


def test_skips_comments_and_blanks():
    lines = ["# comment", "", "<a> <b> <c> ."]
    assert len(list(parse_ntriples(lines))) == 1


def test_unterminated_iri_raises():
    with pytest.raises(ParseError):
        list(parse_ntriples(["<http://s <http://p> <http://o> ."]))


def test_unterminated_literal_raises():
    with pytest.raises(ParseError):
        list(parse_ntriples(['<s> <p> "oops .']))


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        list(parse_ntriples(["<s> <p> <o> . extra"]))


def test_error_reports_line_number():
    with pytest.raises(ParseError) as excinfo:
        list(parse_ntriples(["<a> <b> <c> .", "junk line here"]))
    assert "line 2" in str(excinfo.value)


def test_serialize_roundtrip():
    triples = [
        Triple("<s>", "<p>", "<o>"),
        Triple("<s>", "<p>", '"lit"'),
    ]
    text = to_ntriples(triples)
    assert list(parse_ntriples(text.splitlines())) == triples
