"""RDF term helpers."""

from repro.rdf.model import iri, is_iri, is_literal, literal, strip_iri


def test_iri_wraps():
    assert iri("http://x") == "<http://x>"
    assert iri("<http://x>") == "<http://x>"  # idempotent


def test_strip_iri():
    assert strip_iri("<http://x>") == "http://x"
    assert strip_iri("http://x") == "http://x"


def test_literal_wraps_and_escapes():
    assert literal("hi") == '"hi"'
    assert literal('say "hi"') == '"say \\"hi\\""'
    assert literal("line\nbreak") == '"line\\nbreak"'
    assert literal('"done"') == '"done"'  # idempotent


def test_is_iri_is_literal():
    assert is_iri("<http://x>")
    assert not is_iri('"x"')
    assert is_literal('"x"')
    assert not is_literal("<http://x>")
