"""Quickstart: generate LUBM data, run a SPARQL query, inspect the plan.

Run with::

    python examples/quickstart.py
"""

from repro import EmptyHeadedEngine, generate_dataset, lubm_query


def main() -> None:
    # 1. Generate a LUBM dataset (1 university ~ 120k triples) and
    #    vertically partition it into per-predicate tables.
    dataset = generate_dataset(universities=1, seed=0)
    print(
        f"generated {dataset.num_triples} triples across "
        f"{len(dataset.store.tables)} predicate tables"
    )

    # 2. Build the worst-case optimal engine over the store.
    engine = EmptyHeadedEngine(dataset.store)

    # 3. Run LUBM query 2 — the cyclic triangle query: graduate students
    #    whose current department belongs to the university that granted
    #    their undergraduate degree.
    text = lubm_query(2, dataset.config)
    result = engine.execute_sparql(text)
    print(f"\nLUBM query 2 returned {result.num_rows} rows; first three:")
    for row in list(engine.decode(result))[:3]:
        print("  ", " | ".join(row))

    # 4. Inspect the compiled plan: the GHD with the triangle at the
    #    root and the three type selections as children (Figure 2 of
    #    the paper), plus the global attribute order.
    print("\nplan:")
    print(engine.explain_sparql(text))

    # 5. Ad-hoc SPARQL works too.
    adhoc = engine.execute_sparql(
        """
        PREFIX ub: <http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#>
        SELECT ?prof WHERE {
          ?prof ub:worksFor <http://www.Department0.University0.edu> .
          ?prof ub:emailAddress ?email
        }
        """
    )
    print(f"\nDepartment0 has {adhoc.num_rows} faculty with email addresses")


if __name__ == "__main__":
    main()
