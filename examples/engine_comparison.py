"""Mini Table II: run the whole LUBM workload on all five engines.

This is the example version of ``python -m repro.bench.table2`` with a
short protocol; use the module for the full seven-run methodology.

Run with::

    python examples/engine_comparison.py [universities]
"""

import sys

from repro.bench.table2 import build_engines, generate_table2


def main() -> None:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    table, _ = generate_table2(universities=universities, runs=5)
    print(table)
    print()
    print("Reading guide (paper, Table II at 133M triples):")
    print(" * Q2/Q9 are the cyclic queries: the WCOJ engines")
    print("   (EH, LogicBlox) should lead; MonetDB should trail badly.")
    print(" * On selective acyclic queries (Q1, Q3, Q5, Q11, Q13) EH")
    print("   stays within a small factor of the specialized engines")
    print("   while LogicBlox falls behind by orders of magnitude.")
    print(" * Q14 is a scan: the column store shines; EH stays close.")


if __name__ == "__main__":
    main()
