"""A tour of the three classic optimizations (Section III of the paper).

For each of the paper's Table I queries this script shows:

* the plan difference the optimization makes (attribute order, GHD
  shape, pipelined pair), and
* the measured speedup of the full engine versus the engine with that
  optimization disabled.

Run with::

    python examples/optimization_tour.py
"""

from repro import EmptyHeadedEngine, OptimizationConfig, generate_dataset, lubm_query
from repro.bench.harness import measure


def timed(engine, text) -> float:
    engine.warm(text)
    return measure(lambda: engine.execute_sparql(text)).paper_average


def main() -> None:
    dataset = generate_dataset(universities=1, seed=0)
    store = dataset.store

    full = EmptyHeadedEngine(store)

    # ------------------------------------------------------------------
    # +Attribute — Example 1 of the paper, on LUBM query 14.
    # ------------------------------------------------------------------
    q14 = lubm_query(14, dataset.config)
    no_attribute = EmptyHeadedEngine(
        store, OptimizationConfig.all_on().but(reorder_selections=False)
    )
    print("=== +Attribute (selections first in the trie order) ===")
    print("with the optimization, query 14's order starts with the")
    print("selection attribute — one probe, then the answer set:")
    print(full.explain_sparql(q14))
    print("\nwithout it, the engine walks every subject and probes the")
    print("second trie level each time:")
    print(no_attribute.explain_sparql(q14))
    speedup = timed(no_attribute, q14) / timed(full, q14)
    print(f"\nmeasured speedup on Q14: {speedup:.2f}x\n")

    # ------------------------------------------------------------------
    # +GHD — Figure 3 of the paper, on LUBM query 4.
    # ------------------------------------------------------------------
    q4 = lubm_query(4, dataset.config)
    no_ghd = EmptyHeadedEngine(
        store, OptimizationConfig.all_on().but(ghd_selection_pushdown=False)
    )
    print("=== +GHD (push selections across GHD nodes) ===")
    print("with pushdown, the selective worksFor/type atoms sit at the")
    print("bottom of the plan and filter everything above them:")
    print(full.explain_sparql(q4))
    speedup = timed(no_ghd, q4) / timed(full, q4)
    print(f"\nmeasured speedup on Q4: {speedup:.2f}x\n")

    # ------------------------------------------------------------------
    # +Pipelining — Example 3 of the paper, on LUBM query 8.
    # ------------------------------------------------------------------
    q8 = lubm_query(8, dataset.config)
    no_pipe = EmptyHeadedEngine(
        store, OptimizationConfig.all_on().but(pipelining=False)
    )
    print("=== +Pipelining (fuse the root with one child) ===")
    print(full.explain_sparql(q8))
    speedup = timed(no_pipe, q8) / timed(full, q8)
    print(f"\nmeasured speedup on Q8: {speedup:.2f}x\n")

    # ------------------------------------------------------------------
    # +Layout — mixed set layouts (Section II-A2).
    # ------------------------------------------------------------------
    q2 = lubm_query(2, dataset.config)
    uint_only = EmptyHeadedEngine(
        store, OptimizationConfig.all_on().but(mixed_layouts=False)
    )
    print("=== +Layout (bitsets for dense sets) ===")
    speedup = timed(uint_only, q2) / timed(full, q2)
    print(f"measured speedup on Q2 (intersection-heavy): {speedup:.2f}x")


if __name__ == "__main__":
    main()
