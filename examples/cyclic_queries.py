"""The paper's headline: worst-case optimal joins win on cyclic queries.

Runs the two cyclic LUBM queries (2 and 9, both containing a triangle)
and a synthetic triangle-listing workload on all five engines, then
prints the relative runtimes. Pairwise engines must materialize an
intermediate pairwise join that is asymptotically larger than the
triangle output; the WCOJ engines never do.

Run with::

    python examples/cyclic_queries.py [universities]
"""

import sys

import numpy as np

from repro import (
    ColumnStoreEngine,
    EmptyHeadedEngine,
    LogicBloxLikeEngine,
    RDF3XLikeEngine,
    TripleBitLikeEngine,
    generate_dataset,
    lubm_query,
)
from repro.bench.harness import measure
from repro.bench.report import format_table
from repro.storage.vertical import vertically_partition

TRIANGLE = """
SELECT ?x ?y ?z WHERE {
  ?x <e:follows> ?y . ?y <e:follows> ?z . ?z <e:follows> ?x
}
"""


def hub_graph(n_edges: int):
    """A social-graph-like edge set with hubs: hard for pairwise plans."""
    rng = np.random.default_rng(3)
    hubs = max(2, int(np.sqrt(n_edges) / 2))
    sources = rng.integers(0, hubs, size=n_edges)
    targets = rng.integers(0, n_edges // 4 + hubs, size=n_edges)
    triples = [
        (f"<n{int(s)}>", "<e:follows>", f"<n{int(t)}>")
        for s, t in zip(sources, targets)
    ]
    for i in range(hubs - 1):
        triples.append((f"<n{i}>", "<e:follows>", f"<n{i + 1}>"))
        triples.append((f"<n{i + 1}>", "<e:follows>", f"<n{i}>"))
    return vertically_partition(triples)


def compare(engines: dict, text: str, label: str) -> list[str]:
    times = {}
    rows = 0
    for name, engine in engines.items():
        engine.warm(text)
        cell = measure(lambda e=engine: e.execute_sparql(text), label=name)
        times[name] = cell.paper_average
        rows = cell.output_rows
    best = min(times.values())
    return [label, str(rows), f"{best * 1e3:.2f}"] + [
        f"{times[name] / best:.2f}x" for name in engines
    ]


def build_engines(store):
    return {
        "EH": EmptyHeadedEngine(store),
        "LogicBlox": LogicBloxLikeEngine(store),
        "MonetDB": ColumnStoreEngine(store),
        "RDF-3X": RDF3XLikeEngine(store),
        "TripleBit": TripleBitLikeEngine(store),
    }


def main() -> None:
    universities = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    dataset = generate_dataset(universities=universities, seed=0)
    engines = build_engines(dataset.store)
    rows = [
        compare(engines, lubm_query(2, dataset.config), "LUBM Q2"),
        compare(engines, lubm_query(9, dataset.config), "LUBM Q9"),
    ]

    graph = hub_graph(20_000)
    graph_engines = build_engines(graph)
    rows.append(compare(graph_engines, TRIANGLE, "triangles"))

    print(
        format_table(
            ["Workload", "Rows", "Best(ms)"] + list(engines),
            rows,
            title=(
                f"Cyclic queries on LUBM({universities}) "
                f"({dataset.num_triples} triples) + synthetic hub graph"
            ),
        )
    )
    print(
        "\nThe WCOJ engines (EH, LogicBlox) run the triangle in one "
        "multiway join bounded by the AGM bound; pairwise engines "
        "materialize a quadratic intermediate first."
    )


if __name__ == "__main__":
    main()
