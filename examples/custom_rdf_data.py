"""Using the engines on your own RDF data (not LUBM).

Builds a small social-network RDF graph by hand, loads it through the
same vertical-partitioning path, and runs SPARQL over it — including a
cyclic "mutual collaboration triangle" query where the WCOJ engine's
plan differs structurally from a pairwise engine's.

Run with::

    python examples/custom_rdf_data.py
"""

from repro import ColumnStoreEngine, EmptyHeadedEngine
from repro.rdf.model import Triple, iri, literal
from repro.rdf.ntriples import parse_ntriples, to_ntriples
from repro.storage.vertical import vertically_partition

PEOPLE = ["alice", "bob", "carol", "dan", "erin"]
COLLABS = [
    ("alice", "bob"), ("bob", "alice"),
    ("bob", "carol"), ("carol", "bob"),
    ("carol", "alice"), ("alice", "carol"),
    ("dan", "erin"), ("erin", "dan"),
    ("dan", "alice"),
]


def build_triples() -> list[Triple]:
    triples = []
    for name in PEOPLE:
        person = iri(f"http://example.org/{name}")
        triples.append(
            Triple(person, iri("http://example.org/ns#name"), literal(name))
        )
    for a, b in COLLABS:
        triples.append(
            Triple(
                iri(f"http://example.org/{a}"),
                iri("http://example.org/ns#collaboratesWith"),
                iri(f"http://example.org/{b}"),
            )
        )
    return triples


def main() -> None:
    triples = build_triples()

    # Round-trip through N-Triples to show the IO path.
    serialized = to_ntriples(triples)
    parsed = list(parse_ntriples(serialized.splitlines()))
    store = vertically_partition(parsed)
    print(
        f"loaded {store.num_triples} triples into tables "
        f"{sorted(store.tables)}"
    )

    engine = EmptyHeadedEngine(store)
    baseline = ColumnStoreEngine(store)

    triangle = """
    PREFIX ns: <http://example.org/ns#>
    SELECT ?a ?b ?c WHERE {
      ?a ns:collaboratesWith ?b .
      ?b ns:collaboratesWith ?c .
      ?c ns:collaboratesWith ?a
    }
    """
    result = engine.execute_sparql(triangle)
    check = baseline.execute_sparql(triangle)
    assert result.to_set() == check.to_set()
    print(f"\ncollaboration triangles ({result.num_rows} bindings):")
    for row in engine.decode(result):
        print("  ", " -> ".join(r.rsplit("/", 1)[1].rstrip(">") for r in row))

    names = engine.execute_sparql(
        """
        PREFIX ns: <http://example.org/ns#>
        SELECT ?who ?n WHERE {
          ?who ns:collaboratesWith <http://example.org/alice> .
          ?who ns:name ?n
        }
        """
    )
    print("\npeople collaborating with alice:")
    for _, name in engine.decode(names):
        print("  ", name)


if __name__ == "__main__":
    main()
